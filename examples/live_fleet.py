"""Live fleet serving: boot a faulty 30-node fleet, curl its own health.

The modern ops loop over the paper's workflow: a persistent simulated
testbed served over HTTP, a Prometheus scrape, the traffic-light health
endpoint localising an injected fault, and the SSE event stream — all
against one in-process `ServeApp` on an ephemeral port, driven
deterministically (the example advances the sim itself, so its output
is stable run to run).

Run with::

    python examples/live_fleet.py [seed]
"""

import asyncio
import json
import sys

from repro.serve import ServeApp, build_fleet

def fault_plan(link):
    """80 dB of extra path loss on ``link``, injected mid-run via the
    HTTP fault endpoint — the canonical-JSON form a curl would POST."""
    return {
        "enabled": True,
        "specs": [
            {"kind": "link_degrade", "link": list(link),
             "loss_db": 80.0, "at": 0.0},
        ],
    }


async def http_get(port, path):
    """A minimal 'curl' against our own server (status, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), body


async def http_post_json(port, path, payload):
    body = json.dumps(payload).encode()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((f"POST {path} HTTP/1.1\r\nHost: demo\r\n"
                  f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, reply = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), reply


async def demo(seed):
    fleet = build_fleet("field", seed=seed, assess_every=25.0,
                        warm_up=15.0)
    app = ServeApp([fleet])
    await app.start(port=0, auto_tick=False)  # ephemeral port
    print(f"fleet {fleet.name!r}: {len(fleet.testbed)} nodes on "
          f"http://127.0.0.1:{app.port}")
    print(f"watching {len(fleet.assessor.watched_links)} "
          "nearest-neighbor links\n")

    try:
        # -- 1. the baseline: advance past one assessment -------------
        # A realistic shadowed field is rarely all-green: expect a
        # marginal (yellow) link or two.  What matters is the *delta*
        # once we break a link outright.
        fleet.advance(30.0)
        status, body = await http_get(app.port,
                                      f"/fleets/{fleet.name}/health")
        health = json.loads(body)
        print(f"baseline health: {health['status']} "
              f"({health['counts']})")

        # -- 2. a Prometheus scrape -----------------------------------
        status, body = await http_get(app.port, "/metrics")
        lines = body.decode().splitlines()
        samples = [l for l in lines if l and not l.startswith("#")]
        print(f"/metrics: {len(samples)} samples, e.g.")
        for line in samples:
            if line.startswith(("mac_sent_frames", "serve_fleet_sim")):
                print(f"    {line}")

        # -- 3. break a watched link over HTTP ------------------------
        victim = fleet.assessor.watched_links[0]
        status, reply = await http_post_json(
            app.port, f"/fleets/{fleet.name}/faults",
            fault_plan(victim))
        print(f"\nPOST /faults -> {status} "
              f"(link {victim[0]}-{victim[1]} +80 dB)")

        # -- 4. within one assessment period: red + what to do --------
        fleet.advance(25.0)
        status, body = await http_get(app.port,
                                      f"/fleets/{fleet.name}/health")
        health = json.loads(body)
        print(f"health after fault: {health['status']} "
              f"({health['counts']})")
        for key, entry in sorted(health["links"].items()):
            if entry["status"] != "green":
                print(f"    link {key}: {entry['status']} "
                      f"[{entry.get('kind', '?')}] — "
                      f"{entry.get('summary', '')}")
        for advice in health["recommendations"]:
            print(f"    recommendation: {advice}")
    finally:
        await app.stop()


def main(seed=17):
    asyncio.run(demo(seed))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 17)
