"""An interactive LiteView shell over a simulated testbed.

Drops you into the LiteOS-shell-like command interpreter on a live
simulated deployment: a jittered 30-node field plus a management
workstation.  Type ``help`` for the command list; ``cd <node>`` to log
into a node (the workstation "walks" there); ``quit`` to leave.

Commands include everything the paper's toolkit offers —
``ping``/``traceroute`` (``port=10`` routes multi-hop), ``power`` /
``channel`` / ``scan``, ``group radio|power|channel``,
``neighborsetup``/``list``/``blacklist``/``update``, and the kernel
``events`` log.

When stdin is not a terminal (CI), a canned session is replayed instead.

Run with::

    python examples/interactive_shell.py [seed]
"""

import sys

from repro.core.deploy import deploy_liteview
from repro.errors import ReproError
from repro.workloads import thirty_node_field

CANNED_SESSION = [
    "ls",
    "cd 192.168.0.1",
    "pwd",
    "ping 192.168.0.2 round=1 length=32",
    "traceroute 192.168.0.7 round=1 port=10",
    "neighborsetup",
    "list",
    "exit",
    "scan first=15 count=4 samples=3",
    "events",
    "quit",
]


def main(seed: int = 3) -> None:
    print("building a 30-node testbed (seed %d) ..." % seed)
    testbed = thirty_node_field(seed=seed)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    interpreter = deployment.interpreter
    interactive = sys.stdin.isatty()
    print("LiteView shell — `help` lists commands, `cd <node>` logs in, "
          "`quit` exits.\n")

    canned = iter(CANNED_SESSION)
    while True:
        prompt = "$ "
        if interactive:
            try:
                line = input(prompt)
            except EOFError:
                break
        else:
            line = next(canned, None)
            if line is None:
                break
            print(f"{prompt}{line}")
        line = line.strip()
        if line in ("quit", "q"):
            break
        if line.startswith("cd ") and line.split()[1] in testbed:
            # Logging into a node includes walking the workstation there.
            deployment.workstation.attach_near(line.split()[1])
        try:
            output = interpreter.execute(line)
        except ReproError as exc:
            output = f"error: {exc}"
        if output:
            print(output)
    print(f"\n(simulated time: {testbed.env.now:.1f} s)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
