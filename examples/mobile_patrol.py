"""Mobile patrol: link churn from motion is not a link fault.

A surveyor node walks past a line of stationary beacons.  As it moves,
beacons enter and leave its radio range — from the surveyor's point of
view, links appear and die continuously.  A naive diagnoser watching
loss on those transient links would file them as ``broken_link`` or
``lossy_link`` faults; the point of this example is that the engine
probes the *static* beacon-to-beacon links mid-patrol and reports no
link-kind finding at all, because geometry-driven churn never touched
them.

The workflow:

1. build a quiet 6-beacon chain (60 m apart, radio range ~100 m) and
   add a surveyor 45 m off the line;
2. install a :class:`~repro.radio.MobilityPlan` walking the surveyor
   past the whole line at 10 m/s;
3. sample the surveyor's in-range beacon set as it patrols, printing
   every change (the churn);
4. mid-patrol, hand the deployment to the
   :class:`~repro.diag.DiagnosisEngine` to probe the static beacon
   links, and score the findings against an *empty* fault plan — any
   finding would be a mobility-induced false positive.

Run with::

    python examples/mobile_patrol.py [seed]
"""

import sys

from repro.core.deploy import deploy_liteview
from repro.diag import DiagnosisEngine, ProbePlan, score_findings
from repro.faults import FaultPlan
from repro.radio import MobilityPlan, MobilitySpec, install_mobility
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

#: Quiet-propagation deliveries die out just past this distance.
RANGE_M = 100.0


def in_range(testbed, surveyor_id, beacon_ids):
    medium = testbed.medium
    return tuple(b for b in beacon_ids
                 if medium.distance(surveyor_id, b) <= RANGE_M)


def show(t, heard, joined, left):
    tags = []
    if joined:
        tags.append("+" + ",".join(str(b) for b in joined))
    if left:
        tags.append("-" + ",".join(str(b) for b in left))
    names = ",".join(str(b) for b in heard) or "(none)"
    print(f"  t={t:5.1f}s  beacons in range: {names:<12} {' '.join(tags)}")


def sample_churn(testbed, surveyor_id, beacon_ids, times, state):
    """Advance through ``times``, printing every in-range set change."""
    for t in times:
        if testbed.env.now < t:
            testbed.run(until=t)
        heard = in_range(testbed, surveyor_id, beacon_ids)
        joined = [b for b in heard if b not in state["heard"]]
        left = [b for b in state["heard"] if b not in heard]
        if joined or left:
            show(testbed.env.now, heard, joined, left)
            state["joins"] += len(joined)
            state["leaves"] += len(left)
            state["heard"] = heard
    return state


def main(seed: int = 3) -> None:
    testbed = build_chain(6, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    beacon_ids = tuple(range(1, 7))
    surveyor = testbed.add_node("surveyor", (-90.0, 45.0)).id

    # 480 m past the whole line at 10 m/s, starting after warm-up.
    install_mobility(testbed, MobilityPlan(name="patrol", specs=(
        MobilitySpec(kind="waypoint", at=5.0, nodes=(surveyor,),
                     waypoints=((48.0, 390.0, 45.0),)),
    )))
    deployment = deploy_liteview(testbed, warm_up=5.0)

    print("beacon field: 6 beacons 60 m apart, radio range ~100 m")
    print(f"surveyor (node {surveyor}) patrols (-90,45) -> (390,45) "
          "at 10 m/s\n")
    print("link churn seen by the surveyor:")
    state = {"heard": (), "joins": 0, "leaves": 0}
    half = [5.0 + 2.0 * k for k in range(13)]          # t=5..29
    sample_churn(testbed, surveyor, beacon_ids, half, state)

    # -- mid-patrol: diagnose the *static* beacon links ----------------------
    diag_start = testbed.env.now
    pairs = tuple((b, b + 1) for b in beacon_ids[:-1])
    report = DiagnosisEngine(deployment).run(
        ProbePlan(links=pairs, rounds=6, length=16))
    score = score_findings(report.findings, FaultPlan(enabled=False),
                           at=diag_start)

    rest = [29.0 + 2.0 * k for k in range(1, 15)]      # t=31..57
    sample_churn(testbed, surveyor, beacon_ids, rest, state)
    print(f"\ntotal churn over the patrol: {state['joins']} joins, "
          f"{state['leaves']} leaves")
    print(f"geometry updates: "
          f"{testbed.monitor.counter('mobility.updates')} mobility ticks, "
          f"{testbed.monitor.counter('medium.repositions')} repositions\n")

    link_kinds = ("broken_link", "lossy_link", "asymmetric_link")
    link_findings = [f for f in report.findings if f.kind in link_kinds]
    print("mid-patrol diagnosis of the static beacon links:")
    print(f"  {len(link_findings)} link-degrade findings "
          "(broken/lossy/asymmetric)")
    print(f"  false positives vs empty fault plan: {score['fp']}")
    for finding in report.findings:
        print(f"  {finding.render()}")
    if not link_findings:
        print("  -> the engine did not mistake mobility churn for "
              "link faults")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
