"""Regenerate all three of the paper's evaluation figures in one run.

Produces the data behind Figure 5 (traceroute response delay per hop),
Figure 6 (RSSI readings at power levels 10 and 25) and Figure 7
(traceroute control-packet overhead vs hops), printed as ASCII tables.

Each figure is a :mod:`repro.campaign`: the grid (power levels, hop
counts) expands to independent seeded runs, sharded across however many
cores the machine offers, with results cached under ``.repro-cache/`` —
re-running this script recomputes only what changed.  The benchmark
suite runs the same scenario cells with shape assertions; this example
is the human-readable tour.

Run with::

    python examples/figure_reproduction.py [seed]
"""

import sys

from repro.analysis import render_series, render_table
from repro.campaign import Campaign, default_workers, run_campaign

#: Shared on-disk cache: re-runs only execute changed or missing cells.
CACHE_DIR = ".repro-cache"


def progress(done, total, result):
    source = "cache" if result.cached else f"{result.wall_s:.2f}s"
    state = "ok" if result.ok else "FAILED"
    print(f"  [{done}/{total}] {result.spec.label()} {state} ({source})",
          file=sys.stderr)


def run(campaign):
    return run_campaign(campaign, workers=default_workers(),
                        cache=CACHE_DIR, progress=progress)


def figure5(seed):
    out = run(Campaign(name="fig5", scenario="fig5_traceroute", seed=seed))
    (result,) = out.ok
    print(render_series(
        "Figure 5 — traceroute response delay (8-hop chain)",
        [(h, round(d, 1)) for h, d in result.values["series"]],
        x_label="hop", y_label="delay_ms",
    ))
    print()


def figure6(seed):
    out = run(Campaign(name="fig6", scenario="fig6_rssi_sweep", seed=seed,
                       grid={"power": [10, 25]}))
    readings = {
        r.spec.params_dict["power"]: {
            hop: (fwd, bwd) for hop, fwd, bwd in r.values["readings"]}
        for r in out.ok
    }
    at_10, at_25 = readings[10], readings[25]
    print(render_table(
        ["hop", "fwd@10", "bwd@10", "fwd@25", "bwd@25"],
        [[h, at_10[h][0], at_10[h][1], at_25[h][0], at_25[h][1]]
         for h in sorted(at_10)],
        title="Figure 6 — RSSI readings at power levels 10 and 25",
    ))
    print()


def figure7(seed):
    out = run(Campaign(name="fig7", scenario="fig7_overhead", seed=seed,
                       grid={"hops": list(range(1, 9))}))
    rows = [[r.spec.params_dict["hops"], r.values["median_packets"]]
            for r in out.ok]
    print(render_series(
        "Figure 7 — traceroute control packets vs hops (median of 3)",
        rows, x_label="hops", y_label="packets",
    ))


def main(seed: int = 9) -> None:
    figure5(seed)
    figure6(max(seed - 4, 1))
    figure7(seed)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
