"""Regenerate all three of the paper's evaluation figures in one run.

Produces the data behind Figure 5 (traceroute response delay per hop),
Figure 6 (RSSI readings at power levels 10 and 25) and Figure 7
(traceroute control-packet overhead vs hops), printed as ASCII tables.
The benchmark suite runs the same experiments with shape assertions;
this example is the human-readable tour.

Run with::

    python examples/figure_reproduction.py [seed]
"""

import sys

from repro.analysis import packets_between, render_series, render_table
from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain, corridor_chain, eight_hop_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def figure5(seed):
    testbed = eight_hop_chain(seed=seed)
    dep = deploy_liteview(testbed, warm_up=15.0)
    service = dep.traceroute_services[1]
    for _ in range(6):  # first run whose eight reports all arrive
        proc = testbed.env.process(
            service.traceroute(9, rounds=1, length=32, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        if len(result.arrival_series_ms()) == 8:
            break
    print(render_series(
        "Figure 5 — traceroute response delay (8-hop chain)",
        [(h, round(d, 1)) for h, d in result.arrival_series_ms()],
        x_label="hop", y_label="delay_ms",
    ))
    print()


def figure6(seed):
    testbed = corridor_chain(9, seed=seed)
    dep = deploy_liteview(testbed, warm_up=15.0)
    service = dep.traceroute_services[1]

    def sweep(power):
        for node in testbed.nodes():
            node.radio.set_power_level(power)
        for _ in range(8):
            proc = testbed.env.process(
                service.traceroute(9, rounds=1, length=32,
                                   routing_port=10)
            )
            result = testbed.env.run(until=proc)
            readings = {
                h.hop_index: (h.link.rssi_forward, h.link.rssi_backward)
                for h in result.hops
            }
            if len(readings) == 8:
                return readings
        raise RuntimeError(f"no complete sweep at power {power}")

    at_25 = sweep(25)
    at_10 = sweep(10)
    print(render_table(
        ["hop", "fwd@10", "bwd@10", "fwd@25", "bwd@25"],
        [[h, at_10[h][0], at_10[h][1], at_25[h][0], at_25[h][1]]
         for h in range(1, 9)],
        title="Figure 6 — RSSI readings at power levels 10 and 25",
    ))
    print()


def figure7(seed):
    rows = []
    for hops in range(1, 9):
        testbed = build_chain(hops + 1, spacing=60.0, seed=seed,
                              propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(testbed, warm_up=15.0)
        service = dep.traceroute_services[1]
        costs = []
        while len(costs) < 3:
            start = testbed.env.now
            proc = testbed.env.process(
                service.traceroute(hops + 1, rounds=1, length=32,
                                   routing_port=10)
            )
            result = testbed.env.run(until=proc)
            if result.reached_target:
                costs.append(len(packets_between(
                    testbed.monitor, start, testbed.env.now)))
        rows.append([hops, sorted(costs)[1]])
    print(render_series(
        "Figure 7 — traceroute control packets vs hops (median of 3)",
        rows, x_label="hops", y_label="packets",
    ))


def main(seed: int = 9) -> None:
    figure5(seed)
    figure6(max(seed - 4, 1))
    figure7(seed)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
