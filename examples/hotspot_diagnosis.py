"""Hotspot diagnosis: find the congested relay with traceroute RTTs.

The abstract's claim in action: "identify traffic hotspots by collecting
round-trip delays of arbitrary pairs of nodes".  The workflow is the
interactive one the paper advocates — probe the idle network, start the
application, probe again, and compare:

1. build a dense indoor chain (carrier sense covers adjacent links, so
   congestion shows up as backoff/queueing delay);
2. traceroute the path while the network is idle → per-hop baseline;
3. start two application flows that cross in the middle of the chain;
4. hand the loaded network to the :class:`~repro.diag.DiagnosisEngine`,
   which re-probes the path and reduces the evidence to named
   ``hotspot`` findings with confidences.

Run with::

    python examples/hotspot_diagnosis.py [seed] [--raw]

``--raw`` keeps the pre-engine workflow: the legacy
``find_hotspots`` wrapper and its raw per-hop RTT tables.
"""

import statistics
import sys

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import find_hotspots, probe_path
from repro.diag import DiagnosisEngine, ProbePlan, Thresholds
from repro.workloads import Flow, TrafficGenerator, corridor_chain


def hop_means(result):
    by_hop = {}
    for hop in result.hops:
        by_hop.setdefault(hop.hop_index, []).append(hop.rtt_ms)
    return {hop: statistics.fmean(values)
            for hop, values in sorted(by_hop.items())}


def diagnose_with_engine(deployment, baseline: float) -> None:
    """The first-class workflow: one plan in, named verdicts out."""
    engine = DiagnosisEngine(deployment,
                             thresholds=Thresholds(hotspot_score=1.5))
    report = engine.run(ProbePlan(paths=((1, 5),), path_rounds=4,
                                  baseline_rtt_ms=baseline))
    hotspots = report.of_kind("hotspot")
    if hotspots:
        print("hotspots flagged (RTT vs idle baseline):")
        for finding in hotspots:
            print(f"  {finding.render()}")
    else:
        print("no hotspots above threshold (try a heavier load)")
    print("\nengine report:")
    print(report.explain())


def diagnose_raw(deployment, baseline: float) -> None:
    """The legacy wrapper workflow (pre-``repro.diag``), kept verbatim."""
    loaded = probe_path(deployment, 1, 5, rounds=4)
    print("loaded network, per-hop RTT (ms):")
    for hop, rtt in hop_means(loaded).items():
        marker = "  <-- inflated" if rtt > 1.5 * baseline else ""
        print(f"  hop {hop}: {rtt:6.1f}{marker}")
    print()

    hotspots = find_hotspots(deployment, [(1, 5)], rounds=4,
                             score_threshold=1.5,
                             baseline_rtt_ms=baseline)
    if hotspots:
        print("hotspots flagged (RTT vs idle baseline):")
        for h in hotspots:
            print(f"  node {h.node_id}: mean inbound hop RTT "
                  f"{h.mean_hop_rtt_ms:.1f} ms "
                  f"({h.score:.1f}x baseline), "
                  f"max queue {h.max_queue}")
    else:
        print("no hotspots above threshold (try a heavier load)")


def main(seed: int = 12, raw: bool = False) -> None:
    testbed = corridor_chain(5, seed=seed)
    deployment = deploy_liteview(testbed, warm_up=15.0)

    # -- step 1: idle baseline ---------------------------------------------
    quiet = probe_path(deployment, 1, 5, rounds=3)
    baseline = statistics.fmean(h.rtt_ms for h in quiet.hops)
    print("idle network, per-hop RTT (ms):")
    for hop, rtt in hop_means(quiet).items():
        print(f"  hop {hop}: {rtt:6.1f}")
    print(f"  baseline mean: {baseline:.1f} ms\n")

    # -- step 2: the application starts -------------------------------------
    generator = TrafficGenerator(testbed, [
        Flow(src=2, dst=5, interval=0.03, payload_bytes=48),
        Flow(src=4, dst=1, interval=0.03, payload_bytes=48),
    ])
    generator.start()
    testbed.warm_up(3.0)
    print("two application flows started (2->5 and 4->1, ~33 pkt/s "
          "each), crossing in the middle of the chain\n")

    # -- step 3: probe under load and compare -------------------------------
    if raw:
        diagnose_raw(deployment, baseline)
    else:
        diagnose_with_engine(deployment, baseline)
    generator.stop()

    print(f"\nbackground flow delivery ratio under load: "
          f"{generator.delivery_ratio:.0%}")


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:] if a != "--raw"]
    main(int(argv[0]) if argv else 12, raw="--raw" in sys.argv[1:])
