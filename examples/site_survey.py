"""Site survey: find broken and asymmetric links, then fix them.

The deployment-phase loop the paper motivates: an engineer walks a
30-node field with the LiteView workstation, pings every chain of
interest, classifies links, and applies a fix — here, raising transmit
power on the nodes at the two ends of a weak link — then re-surveys to
confirm the improvement "and observe their immediate effects".

Faults injected into the (otherwise healthy) field:

* the link between nodes 7 and 8 is dead in both directions
  (a crushed antenna);
* node 13's transmissions are 6 dB weaker than its receptions
  (a detuned antenna → asymmetric links around node 13).

Run with::

    python examples/site_survey.py [seed]
"""

import sys

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import classify_link, survey_links
from repro.workloads import thirty_node_field


def neighbor_pairs(testbed, max_distance=60.0):
    """Directed node pairs close enough to be expected neighbors."""
    nodes = testbed.nodes()
    pairs = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            dx = a.position[0] - b.position[0]
            dy = a.position[1] - b.position[1]
            if (dx * dx + dy * dy) ** 0.5 <= max_distance:
                pairs.append((a.id, b.id))
    return pairs


def print_survey(tag, reports):
    print(f"--- {tag} ---")
    counts = {}
    for r in reports:
        label = classify_link(r)
        counts[label] = counts.get(label, 0) + 1
        if label != "healthy":
            lqi = ("-" if r.lqi_forward is None
                   else f"{r.lqi_forward:.0f}/{r.lqi_backward:.0f}")
            print(f"  link {r.src:>2} -> {r.dst:>2}: {label:<11} "
                  f"(replies {r.received}/{r.sent}, LQI fwd/bwd {lqi})")
    print("  totals:", ", ".join(
        f"{v} {k}" for k, v in sorted(counts.items())))
    print()
    return counts


def main(seed: int = 3) -> None:
    testbed = thirty_node_field(seed=seed, realistic=False)

    # -- inject the deployment faults --------------------------------------
    testbed.propagation.set_link_shadowing_db(7, 8, 80.0)
    testbed.propagation.set_link_shadowing_db(8, 7, 80.0)
    for other in testbed.namespace.ids():
        if other != 13:
            base = testbed.propagation.link_shadowing_db(13, other)
            testbed.propagation.set_link_shadowing_db(13, other, base + 6.0)

    deployment = deploy_liteview(testbed, warm_up=15.0)

    # Survey a manageable subset: links around the faulty region.
    suspects = [(a, b) for a, b in neighbor_pairs(testbed)
                if {a, b} & {7, 8, 13, 12, 14}]
    print(f"surveying {len(suspects)} links around the suspect nodes "
          "(10 pings each)\n")
    before = print_survey(
        "initial survey", survey_links(deployment, suspects, rounds=10)
    )

    # -- the fix: crank up power around the weak spots ----------------------
    print("fix: raising node 13's transmit power to compensate the "
          "detuned antenna\n")
    deployment.login(13)
    deployment.run("power 31")  # it already is 31 — show the check
    # A weak transmitter cannot be fixed from software alone; the paper's
    # remedy for such links is physical (reposition/antenna).  Model the
    # antenna being reseated:
    for other in testbed.namespace.ids():
        if other != 13:
            base = testbed.propagation.link_shadowing_db(13, other)
            testbed.propagation.set_link_shadowing_db(13, other, base - 6.0)
    print("fix: reseating node 13's antenna (6 dB recovered) and "
          "re-running the survey\n")

    after = print_survey(
        "post-fix survey", survey_links(deployment, suspects, rounds=10)
    )

    healthy_gain = after.get("healthy", 0) - before.get("healthy", 0)
    print(f"healthy links: {before.get('healthy', 0)} -> "
          f"{after.get('healthy', 0)} (+{healthy_gain}); the 7-8 link "
          "remains broken and needs a site visit.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
