"""Protocol comparison: one ping command, three routing protocols.

Demonstrates the paper's protocol-independence design (§IV-A.1): the
ping and traceroute executables never change; the ``port=`` parameter
selects which of the co-installed routing protocols carries the probes.
"Users may install each protocol sequentially, and measure the protocol
performance" — here all three are installed side by side and measured
back to back.

Run with::

    python examples/protocol_comparison.py [seed]
"""

import sys

from repro.analysis import packets_between, render_table
from repro.core.deploy import deploy_liteview
from repro.net import (
    DsdvRouting,
    FloodingProtocol,
    GeographicForwarding,
    WellKnownPorts,
)
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def main(seed: int = 4) -> None:
    testbed = build_chain(5, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    for node in testbed.nodes():
        node.install_protocol(GeographicForwarding)
        node.install_protocol(DsdvRouting)
        node.install_protocol(FloodingProtocol)
    deployment = deploy_liteview(testbed, protocol=None, warm_up=40.0)
    deployment.login("192.168.0.1")

    rows = []
    for name, port in [
        ("geographic forwarding", WellKnownPorts.GEOGRAPHIC),
        ("dsdv", WellKnownPorts.DSDV),
        ("flooding", WellKnownPorts.FLOODING),
    ]:
        start = testbed.env.now
        deployment.run(
            f"ping 192.168.0.5 round=8 length=16 port={port}"
        )
        result = deployment.interpreter.last_result
        packets = packets_between(testbed.monitor, start, testbed.env.now,
                                  exclude_kinds=("beacon", "control"))
        rtt = ("-" if result.mean_rtt_ms is None
               else f"{result.mean_rtt_ms:.1f}")
        rows.append([name, port, f"{result.received}/{result.sent}",
                     rtt, len(packets)])

    print(render_table(
        ["protocol", "port", "delivered", "mean_rtt_ms", "radio_packets"],
        rows,
        title=("multi-hop ping 192.168.0.1 -> 192.168.0.5 "
               "(same command, port= selects the protocol)"),
    ))
    print("\nsame ping binary every time — only the port parameter "
          "changed; no recompilation, exactly the paper's design goal.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
