"""Protocol comparison: one ping command, three routing protocols.

Demonstrates the paper's protocol-independence design (§IV-A.1): the
ping and traceroute executables never change; the ``port=`` parameter
selects which of the co-installed routing protocols carries the probes.
"Users may install each protocol sequentially, and measure the protocol
performance" — here all protocols are installed side by side and the
measurements run as a :mod:`repro.campaign` grid: one seeded cell per
protocol, sharded across cores, merged back into one table.

Run with::

    python examples/protocol_comparison.py [seed]
"""

import sys

from repro.analysis import render_table
from repro.campaign import Campaign, default_workers, run_campaign

PROTOCOLS = ["geographic forwarding", "dsdv", "flooding"]
CELL_NAMES = {"geographic forwarding": "geographic", "dsdv": "dsdv",
              "flooding": "flooding"}


def main(seed: int = 4) -> None:
    campaign = Campaign(
        name="protocol-comparison", scenario="protocol_ping", seed=seed,
        grid={"protocol": [CELL_NAMES[p] for p in PROTOCOLS]},
    )
    out = run_campaign(campaign, workers=default_workers())
    by_cell = {r.spec.params_dict["protocol"]: r.values for r in out.ok}

    rows = []
    for name in PROTOCOLS:
        v = by_cell[CELL_NAMES[name]]
        rtt = ("-" if v["mean_rtt_ms"] is None
               else f"{v['mean_rtt_ms']:.1f}")
        rows.append([name, f"{v['received']}/{v['rounds']}", rtt,
                     v["packets"]])

    print(render_table(
        ["protocol", "delivered", "mean_rtt_ms", "radio_packets"],
        rows,
        title=("multi-hop ping 192.168.0.1 -> 192.168.0.5 "
               "(same command, port= selects the protocol; one campaign "
               "cell per protocol)"),
    ))
    print("\nsame ping binary every time — only the port parameter "
          "changed; no recompilation, exactly the paper's design goal.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
