"""Quickstart: deploy LiteView on a small chain and run the paper's
sample session.

Builds a four-node chain testbed (three hops end to end), installs the
full toolkit — routing, ping, traceroute, runtime controllers, a
management workstation — and then drives the same shell commands the
paper's §III-B sample outputs show.

Run with::

    python examples/quickstart.py [seed]
"""

import sys

from repro import Testbed, deploy_liteview


def main(seed: int = 2) -> None:
    # -- build the testbed -------------------------------------------------
    testbed = Testbed(seed=seed, propagation_kwargs={
        "shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0,
    })
    for i in range(4):
        testbed.add_node(f"192.168.0.{i + 1}", (i * 60.0, 0.0))

    # -- deploy LiteView and let beacons settle ----------------------------
    deployment = deploy_liteview(testbed, warm_up=15.0)

    # -- log into the first node and run the paper's session ---------------
    deployment.login("192.168.0.1")
    print(deployment.interpreter.session([
        "pwd",
        "ping 192.168.0.2 round=1 length=32",
        "traceroute 192.168.0.4 round=1 length=32 port=10",
        "power",
        "neighborsetup",
        "list",
        "blacklist add 192.168.0.2",
        "list",
        "blacklist remove 192.168.0.2",
        "update freq=1000",
        "exit",
    ]))

    # -- structured results are available programmatically too ------------
    result = deployment.interpreter.last_result
    print()
    print(f"(simulated time elapsed: {testbed.env.now:.1f} s; "
          f"{testbed.monitor.counter('medium.transmissions')} frames "
          "on the air)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
