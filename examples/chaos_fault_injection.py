"""Chaos fault injection: break a live network, then diagnose it.

A declarative `FaultPlan` injures an 8-node chain in two acts:

1. a *transient* storm while commands are running — packet corruption,
   an interference burst on the active channel, one node rebooting —
   through which every command still returns;
2. a *standing* injury — 80 dB of extra path loss on the 4-5 hop —
   which the paper's diagnosis workflow then has to localise.

The plan is pure data: the same seed and plan replay bit-for-bit, and
the plan can be handed to `Campaign(fault_plan=...)` to sweep chaos
across a whole grid.  See `docs/FAULTS.md`.

Run with::

    python examples/chaos_fault_injection.py [seed]
"""

import sys

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import (
    LinkClass,
    classify_link,
    probe_path,
    survey_links,
)
from repro.errors import CommandTimeout
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

INJURED = (4, 5)

PLAN = FaultPlan(name="two-act-chaos", specs=(
    # Act 1 — transient storm (t = 15..25 s):
    FaultSpec(kind="packet_corrupt", at=15.0, duration=10.0,
              probability=0.15),
    FaultSpec(kind="interference_burst", at=18.0, duration=1.5,
              channel=17, loss_db=25.0),
    FaultSpec(kind="node_reboot", at=16.0, nodes=(7,)),
    # Act 2 — the standing injury (t >= 30 s, never lifted):
    FaultSpec(kind="link_degrade", at=30.0, link=INJURED, loss_db=80.0),
))


def main(seed: int = 21) -> None:
    testbed = build_chain(8, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    injector = install_faults(testbed, PLAN)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    deployment.login("192.168.0.1")

    print("--- act 1: ping through the transient storm ---")
    print(deployment.run("ping 192.168.0.8 round=3 length=16"))

    # Let the transients expire; the standing injury lands at t=30.
    if testbed.env.now < 35.0:
        testbed.warm_up(35.0 - testbed.env.now)

    print("--- act 2: the path to node 8 is now severed at hop "
          f"{INJURED[0]}->{INJURED[1]} ---")
    print(deployment.run("ping 192.168.0.8 round=3 length=16"))
    try:
        trace = probe_path(deployment, 1, 8)
        last = max(h.probed_node_id for h in trace.hops)
        print(f"traceroute stalls at node {last} "
              f"(reached target: {trace.reached_target})\n")
    except CommandTimeout:
        print("traceroute timed out before the break\n")

    print("--- diagnosis: survey every hop of the chain ---")
    reports = survey_links(deployment,
                           [(i, i + 1) for i in range(1, 8)],
                           rounds=6, length=16)
    for report in reports:
        label = classify_link(report)
        marker = "  <-- the injury" if label == LinkClass.BROKEN else ""
        print(f"  link {report.src} -> {report.dst}: "
              f"replies {report.received}/{report.sent}, "
              f"{label}{marker}")

    print(f"\nfault activations: {dict(injector.activations)}")
    print(f"simulated time: {testbed.env.now:.1f} s — every command "
          "returned; nothing hung.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 21)
