"""LiteView proper: the paper's contribution, built on the substrates.

* :mod:`repro.core.commands` — ping (Fig. 3) and traceroute (Fig. 4)
* :mod:`repro.core.reliable` — the one-hop reliable exchange (§IV-B)
* :mod:`repro.core.controller` — the node-side runtime controller
* :mod:`repro.core.workstation` / :mod:`repro.core.interpreter` — the
  client side: base-station mote and shell-style command interpreter
* :mod:`repro.core.deploy` — one-call toolkit deployment
* :mod:`repro.core.diagnosis` — broken/asymmetric-link and hotspot
  workflows from the abstract (back-compat wrappers over
  :mod:`repro.diag`, the first-class diagnosis subsystem)
"""

from repro.core.commands.ping import PingService, install_ping
from repro.core.commands.traceroute import (
    TracerouteService,
    install_traceroute,
)
from repro.core.controller import (
    RuntimeController,
    Status,
    install_controller,
)
from repro.core.deploy import LiteViewDeployment, deploy_liteview
from repro.core.diagnosis import (
    Hotspot,
    LinkClass,
    LinkReport,
    classify_link,
    classify_links,
    find_hotspots,
    probe_path,
    survey_link,
    survey_links,
)
from repro.core.interpreter import CommandInterpreter
from repro.core.reliable import ReliableEndpoint
from repro.core.results import (
    LinkObservation,
    NeighborView,
    PingResult,
    PingRound,
    TracerouteHop,
    TracerouteResult,
)
from repro.core.wire import MsgType
from repro.core.workstation import Reply, Workstation

__all__ = [
    "PingService",
    "install_ping",
    "TracerouteService",
    "install_traceroute",
    "RuntimeController",
    "install_controller",
    "Status",
    "ReliableEndpoint",
    "Workstation",
    "Reply",
    "CommandInterpreter",
    "LiteViewDeployment",
    "deploy_liteview",
    "MsgType",
    "PingResult",
    "PingRound",
    "TracerouteResult",
    "TracerouteHop",
    "LinkObservation",
    "NeighborView",
    "LinkReport",
    "LinkClass",
    "Hotspot",
    "survey_link",
    "survey_links",
    "classify_link",
    "classify_links",
    "probe_path",
    "find_hotspots",
]
