"""End-user diagnosis built on the LiteView commands (legacy surface).

The paper's abstract promises that the toolkit "allows users to identify
broken links or asymmetric links, which are likely to become traffic
bottlenecks" and "to identify traffic hotspots by collecting round-trip
delays of arbitrary pairs of nodes".  These entry points package those
workflows and keep their original signatures, but the machinery now
lives in :mod:`repro.diag`: every function here is a thin wrapper over
the probe pipeline (:mod:`repro.diag.probe`) and the diagnosis engine
(:mod:`repro.diag.engine`), which add named :class:`~repro.diag.
findings.Finding` verdicts, confidence, and campaign scoring on top.

Everything still works through the workstation (walk to a node, run its
commands over the reliable protocol) — no simulator internals are read,
so these diagnostics exercise the full toolkit path.
"""

from __future__ import annotations

import typing as _t

from repro.diag.observations import Hotspot, LinkReport

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.deploy import LiteViewDeployment

__all__ = [
    "LinkReport",
    "LinkClass",
    "Hotspot",
    "survey_link",
    "survey_links",
    "classify_link",
    "classify_links",
    "probe_path",
    "find_hotspots",
]


class LinkClass:
    """Diagnosis labels for a probed link."""

    HEALTHY = "healthy"
    BROKEN = "broken"
    ASYMMETRIC = "asymmetric"
    LOSSY = "lossy"
    #: The probe command never ran (node down, request rejected): the
    #: report carries no evidence about the link either way.
    NO_DATA = "no_data"


def survey_link(deployment: "LiteViewDeployment", src: int, dst: int, *,
                rounds: int = 10, length: int = 32) -> LinkReport:
    """Probe the one-hop link ``src → dst`` with repeated pings.

    A run whose command fails outright (timeout, unreachable node,
    rejected request) reports ``sent=rounds, received=0`` — note that
    :attr:`LinkReport.loss_ratio` also returns its 1.0 sentinel for
    ``sent == 0`` reports, which mean *no data*, not loss; see
    :attr:`LinkReport.has_data`.
    """
    from repro.diag.probe import LinkProbe, ProbeExecutor
    probe = LinkProbe(src=src, dst=dst, rounds=rounds,
                      length=length, port=0)
    outcome = ProbeExecutor(deployment).run(probe)
    if outcome.ok:
        return outcome.value
    return probe.failure_observation()


def survey_links(deployment: "LiteViewDeployment",
                 pairs: _t.Iterable[tuple[int, int]], *,
                 rounds: int = 10, length: int = 32) -> list[LinkReport]:
    """Probe several directed links (the site-survey walk)."""
    return [survey_link(deployment, a, b, rounds=rounds, length=length)
            for a, b in pairs]


def classify_link(report: LinkReport, *,
                  broken_loss: float = 0.9,
                  lossy_loss: float = 0.25,
                  asym_lqi: float = 12.0,
                  asym_rssi: float = 8.0) -> str:
    """Label one link report.

    * ``no_data`` — ``sent == 0``: the probe never ran, so the report
      says nothing about the link (despite ``loss_ratio``'s historical
      1.0 sentinel for that case — "no data" is not "broken").
    * ``broken`` — essentially no probe completes.
    * ``asymmetric`` — both directions observable but forward/backward
      LQI or RSSI differ beyond the thresholds (the links "likely to
      become traffic bottlenecks").
    * ``lossy`` — round-trip loss above ``lossy_loss``.
    * ``healthy`` — everything else.

    Thin wrapper over :func:`repro.diag.engine.reduce_link_finding`,
    which additionally yields evidence and confidence.
    """
    if not report.has_data:
        return LinkClass.NO_DATA
    from repro.diag.engine import Thresholds, reduce_link_finding
    finding = reduce_link_finding(report, Thresholds(
        broken_loss=broken_loss, lossy_loss=lossy_loss,
        asym_lqi=asym_lqi, asym_rssi=asym_rssi,
    ))
    if finding is None:
        return LinkClass.HEALTHY
    return {
        "broken_link": LinkClass.BROKEN,
        "asymmetric_link": LinkClass.ASYMMETRIC,
        "lossy_link": LinkClass.LOSSY,
    }[finding.kind]


def classify_links(reports: _t.Iterable[LinkReport],
                   **thresholds: float) -> dict[str, list[LinkReport]]:
    """Group link reports by diagnosis label (``no_data`` included)."""
    groups: dict[str, list[LinkReport]] = {
        LinkClass.HEALTHY: [], LinkClass.BROKEN: [],
        LinkClass.ASYMMETRIC: [], LinkClass.LOSSY: [],
        LinkClass.NO_DATA: [],
    }
    for report in reports:
        groups[classify_link(report, **thresholds)].append(report)
    return groups


def probe_path(deployment: "LiteViewDeployment", src: int, dst: int, *,
               rounds: int = 1, length: int = 32, port: int = 10):
    """Traceroute ``src → dst`` through the toolkit (hotspot raw data).

    Returns the :class:`~repro.core.results.TracerouteResult`, ``None``
    if the node rejected the request, and raises
    :class:`~repro.errors.CommandTimeout` when no reply arrives —
    matching the original hand-rolled drive loop.
    """
    from repro.diag.probe import PathProbe, ProbeExecutor
    outcome = ProbeExecutor(deployment).run(PathProbe(
        src=src, dst=dst, rounds=rounds, length=length, port=port))
    if outcome.ok:
        return outcome.value
    if outcome.exception is not None:
        raise outcome.exception
    return None


def find_hotspots(deployment: "LiteViewDeployment",
                  pairs: _t.Iterable[tuple[int, int]], *,
                  rounds: int = 1, port: int = 10,
                  min_samples: int = 1,
                  score_threshold: float = 1.5,
                  baseline_rtt_ms: float | None = None) -> list[Hotspot]:
    """Locate congested nodes from per-hop RTTs of arbitrary node pairs.

    Runs traceroute over every pair, aggregates each node's inbound
    per-hop RTT and reported queue occupancy, and flags nodes whose mean
    hop RTT exceeds ``score_threshold ×`` a reference value.

    The reference is ``baseline_rtt_ms`` when given — the interactive
    workflow the paper advocates: survey the idle network first, then
    compare under load, so uniformly congested regions still stand out.
    Without a baseline, the testbed-wide median of the current probe is
    used (adequate when only part of the network is hot).

    Thin wrapper over :class:`repro.diag.engine.DiagnosisEngine`, whose
    ``hotspot`` findings carry the same statistics as evidence.
    """
    from repro.diag.engine import DiagnosisEngine, ProbePlan, Thresholds
    engine = DiagnosisEngine(deployment, thresholds=Thresholds(
        hotspot_score=score_threshold, min_samples=min_samples))
    report = engine.run(ProbePlan(
        paths=tuple(pairs), path_rounds=rounds, routing_port=port,
        baseline_rtt_ms=baseline_rtt_ms))
    hotspots = [
        Hotspot(node_id=f.node,
                mean_hop_rtt_ms=f.evidence["mean_hop_rtt_ms"],
                max_queue=f.evidence["max_queue"],
                samples=f.evidence["samples"],
                score=f.evidence["score"])
        for f in report.of_kind("hotspot")
    ]
    return sorted(hotspots, key=lambda h: h.score, reverse=True)
