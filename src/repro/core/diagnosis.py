"""End-user diagnosis built on the LiteView commands.

The paper's abstract promises that the toolkit "allows users to identify
broken links or asymmetric links, which are likely to become traffic
bottlenecks" and "to identify traffic hotspots by collecting round-trip
delays of arbitrary pairs of nodes".  This module packages those
workflows: it drives the same shell-level commands a human would, and
reduces the results to actionable classifications.

Everything here works through the workstation (walk to a node, run its
commands over the reliable protocol) — no simulator internals are read,
so these diagnostics exercise the full toolkit path.
"""

from __future__ import annotations

import statistics
import struct
import typing as _t
from dataclasses import dataclass

from repro.core.deploy import LiteViewDeployment
from repro.core.serialize import decode_ping_result, decode_trace_result
from repro.core.wire import MsgType
from repro.errors import CommandTimeout

__all__ = [
    "LinkReport",
    "LinkClass",
    "Hotspot",
    "survey_link",
    "survey_links",
    "classify_link",
    "classify_links",
    "probe_path",
    "find_hotspots",
]


@dataclass(frozen=True)
class LinkReport:
    """What probing one directed neighbor link revealed."""

    src: int
    dst: int
    sent: int
    received: int
    mean_rtt_ms: float | None
    lqi_forward: float | None    # remote-measured (our packets arriving)
    lqi_backward: float | None   # locally measured (their replies)
    rssi_forward: float | None
    rssi_backward: float | None

    @property
    def loss_ratio(self) -> float:
        """Probe round-trip loss fraction."""
        return 1.0 - self.received / self.sent if self.sent else 1.0


class LinkClass:
    """Diagnosis labels for a probed link."""

    HEALTHY = "healthy"
    BROKEN = "broken"
    ASYMMETRIC = "asymmetric"
    LOSSY = "lossy"


@dataclass(frozen=True)
class Hotspot:
    """A node whose inbound hops show congestion indicators."""

    node_id: int
    mean_hop_rtt_ms: float
    max_queue: int
    samples: int
    score: float


def _run_ping(deployment: LiteViewDeployment, src: int, dst: int, *,
              rounds: int, length: int, port: int):
    ws = deployment.workstation
    ws.attach_near(src)
    body = struct.pack(">HBBB", dst, rounds, length, port)
    reply = ws.call(src, MsgType.RUN_PING, body,
                    window=rounds * 0.6 + 2.5, wait_full_window=False)
    if not reply.ok:
        return None
    return decode_ping_result(reply.body, deployment.testbed.namespace)


def survey_link(deployment: LiteViewDeployment, src: int, dst: int, *,
                rounds: int = 10, length: int = 32) -> LinkReport:
    """Probe the one-hop link ``src → dst`` with repeated pings."""
    try:
        result = _run_ping(deployment, src, dst,
                           rounds=rounds, length=length, port=0)
    except CommandTimeout:
        result = None
    if result is None or not result.rounds:
        sent = result.sent if result is not None else rounds
        return LinkReport(src=src, dst=dst, sent=sent, received=0,
                          mean_rtt_ms=None, lqi_forward=None,
                          lqi_backward=None, rssi_forward=None,
                          rssi_backward=None)
    links = [r.link for r in result.rounds]
    return LinkReport(
        src=src, dst=dst, sent=result.sent, received=result.received,
        mean_rtt_ms=result.mean_rtt_ms,
        lqi_forward=statistics.fmean(l.lqi_forward for l in links),
        lqi_backward=statistics.fmean(l.lqi_backward for l in links),
        rssi_forward=statistics.fmean(l.rssi_forward for l in links),
        rssi_backward=statistics.fmean(l.rssi_backward for l in links),
    )


def survey_links(deployment: LiteViewDeployment,
                 pairs: _t.Iterable[tuple[int, int]], *,
                 rounds: int = 10, length: int = 32) -> list[LinkReport]:
    """Probe several directed links (the site-survey walk)."""
    return [survey_link(deployment, a, b, rounds=rounds, length=length)
            for a, b in pairs]


def classify_link(report: LinkReport, *,
                  broken_loss: float = 0.9,
                  lossy_loss: float = 0.25,
                  asym_lqi: float = 12.0,
                  asym_rssi: float = 8.0) -> str:
    """Label one link report.

    * ``broken`` — essentially no probe completes.
    * ``asymmetric`` — both directions observable but forward/backward
      LQI or RSSI differ beyond the thresholds (the links "likely to
      become traffic bottlenecks").
    * ``lossy`` — round-trip loss above ``lossy_loss``.
    * ``healthy`` — everything else.
    """
    if report.loss_ratio >= broken_loss:
        return LinkClass.BROKEN
    if report.lqi_forward is not None and report.lqi_backward is not None:
        if abs(report.lqi_forward - report.lqi_backward) >= asym_lqi:
            return LinkClass.ASYMMETRIC
        if (report.rssi_forward is not None
                and report.rssi_backward is not None
                and abs(report.rssi_forward - report.rssi_backward)
                >= asym_rssi):
            return LinkClass.ASYMMETRIC
    if report.loss_ratio >= lossy_loss:
        return LinkClass.LOSSY
    return LinkClass.HEALTHY


def classify_links(reports: _t.Iterable[LinkReport],
                   **thresholds: float) -> dict[str, list[LinkReport]]:
    """Group link reports by diagnosis label."""
    groups: dict[str, list[LinkReport]] = {
        LinkClass.HEALTHY: [], LinkClass.BROKEN: [],
        LinkClass.ASYMMETRIC: [], LinkClass.LOSSY: [],
    }
    for report in reports:
        groups[classify_link(report, **thresholds)].append(report)
    return groups


def probe_path(deployment: LiteViewDeployment, src: int, dst: int, *,
               rounds: int = 1, length: int = 32, port: int = 10):
    """Traceroute ``src → dst`` through the toolkit (hotspot raw data)."""
    ws = deployment.workstation
    ws.attach_near(src)
    body = struct.pack(">HBBB", dst, rounds, length, port)
    reply = ws.call(src, MsgType.RUN_TRACEROUTE, body,
                    window=rounds * 6.5 + 3.0, wait_full_window=False)
    if not reply.ok:
        return None
    return decode_trace_result(reply.body, deployment.testbed.namespace)


def find_hotspots(deployment: LiteViewDeployment,
                  pairs: _t.Iterable[tuple[int, int]], *,
                  rounds: int = 1, port: int = 10,
                  min_samples: int = 1,
                  score_threshold: float = 1.5,
                  baseline_rtt_ms: float | None = None) -> list[Hotspot]:
    """Locate congested nodes from per-hop RTTs of arbitrary node pairs.

    Runs traceroute over every pair, aggregates each node's inbound
    per-hop RTT and reported queue occupancy, and flags nodes whose mean
    hop RTT exceeds ``score_threshold ×`` a reference value.

    The reference is ``baseline_rtt_ms`` when given — the interactive
    workflow the paper advocates: survey the idle network first, then
    compare under load, so uniformly congested regions still stand out.
    Without a baseline, the testbed-wide median of the current probe is
    used (adequate when only part of the network is hot).
    """
    rtts: dict[int, list[float]] = {}
    queues: dict[int, int] = {}
    for src, dst in pairs:
        try:
            result = probe_path(deployment, src, dst,
                                rounds=rounds, port=port)
        except CommandTimeout:
            continue
        if result is None:
            continue
        for hop in result.hops:
            rtts.setdefault(hop.probed_node_id, []).append(hop.rtt_ms)
            queues[hop.probed_node_id] = max(
                queues.get(hop.probed_node_id, 0), hop.link.queue_remote
            )
    if not rtts:
        return []
    all_means = {
        node: statistics.fmean(values)
        for node, values in rtts.items() if len(values) >= min_samples
    }
    if not all_means:
        return []
    baseline = (baseline_rtt_ms if baseline_rtt_ms is not None
                else statistics.median(all_means.values()))
    hotspots = []
    for node, mean_rtt in all_means.items():
        score = mean_rtt / baseline if baseline > 0 else float("inf")
        if score >= score_threshold or queues.get(node, 0) >= 2:
            hotspots.append(Hotspot(
                node_id=node, mean_hop_rtt_ms=mean_rtt,
                max_queue=queues.get(node, 0),
                samples=len(rtts[node]), score=score,
            ))
    return sorted(hotspots, key=lambda h: h.score, reverse=True)
