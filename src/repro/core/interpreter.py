"""The LiteView command interpreter: a LiteOS-shell-style front end.

"The user interface provided by LiteView is an extension of the
interactive shell of the LiteOS operating system."  The interpreter
parses shell lines, keeps local context (current node, neighborhood-
management mode) so queries like ``pwd`` never touch the radio, and
translates management commands into request messages for the runtime
controller of the current node.

Shell session, matching the paper's samples::

    $ pwd
    /sn01/192.168.0.1
    $ ping 192.168.0.2 round=1 length=32
    Pinging 192.168.0.2 with 1 packets with 32 bytes: ...
"""

from __future__ import annotations

import struct
import typing as _t

from repro.core.results import PingResult, TracerouteResult
from repro.core.wire import MsgType
from repro.core.workstation import Workstation
from repro.errors import (
    CommandError,
    CommandTimeout,
    NoSuchNode,
    ParameterError,
    UnknownCommand,
)
from repro.net.ports import WellKnownPorts
from repro.obs.profiler import SimProfiler

__all__ = ["CommandInterpreter"]


def _parse_kv(tokens: list[str], defaults: dict[str, int]) -> dict[str, int]:
    """Parse the paper's ``key=value`` command parameters."""
    values = dict(defaults)
    for token in tokens:
        if "=" not in token:
            raise ParameterError(f"expected key=value, got {token!r}")
        key, _, raw = token.partition("=")
        if key not in values:
            raise ParameterError(f"unknown parameter {key!r}")
        try:
            values[key] = int(raw)
        except ValueError:
            raise ParameterError(f"{key}={raw!r} is not an integer") from None
    return values


class CommandInterpreter:
    """Parses shell lines and drives the workstation."""

    def __init__(self, workstation: Workstation):
        self.ws = workstation
        self.testbed = workstation.testbed
        #: Current node context (None until the user ``cd``s somewhere).
        self.cwd: int | None = None
        #: Whether the user has entered neighborhood-management mode.
        self.neighbor_mode = False
        #: Structured result of the last ping/traceroute, for tooling.
        self.last_result: PingResult | TracerouteResult | None = None
        #: Structured report of the last ``diagnose`` run, for tooling.
        self.last_report = None
        #: The sim profiler, kept across ``profile off`` so ``profile
        #: report`` can still print the collected hotspot table.
        self._profiler: SimProfiler | None = None
        #: The passive beacon listener behind ``watch`` (None until
        #: ``watch on``); kept across ``watch off`` so ``watch report``
        #: can still render what was heard.
        self.online = None

    # -- public API ------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one shell line to completion; returns the printed output."""
        tokens = line.split()
        if not tokens:
            return ""
        name, args = tokens[0], tokens[1:]
        handler = self._commands().get(name)
        if handler is None:
            raise UnknownCommand(f"unknown command {name!r}")
        try:
            return handler(args)
        except CommandTimeout as exc:
            return f"error: {exc}"

    def session(self, lines: _t.Iterable[str]) -> str:
        """Run several lines, echoing prompts — renders like the paper."""
        out = []
        for line in lines:
            out.append(f"$ {line}")
            result = self.execute(line)
            if result:
                out.append(result)
        return "\n".join(out)

    # -- command table -------------------------------------------------------------

    def _commands(self) -> dict[str, _t.Callable[[list[str]], str]]:
        table = {
            "pwd": self._cmd_pwd,
            "cd": self._cmd_cd,
            "ls": self._cmd_ls,
            "attach": self._cmd_attach,
            "ping": self._cmd_ping,
            "traceroute": self._cmd_traceroute,
            "diagnose": self._cmd_diagnose,
            "power": self._cmd_power,
            "channel": self._cmd_channel,
            "scan": self._cmd_scan,
            "group": self._cmd_group,
            "events": self._cmd_events,
            "ps": self._cmd_ps,
            "kill": self._cmd_kill,
            "stats": self._cmd_stats,
            "trace": self._cmd_trace,
            "watch": self._cmd_watch,
            "profile": self._cmd_profile,
            "neighborsetup": self._cmd_neighborsetup,
            "help": self._cmd_help,
        }
        if self.neighbor_mode:
            table.update({
                "list": self._cmd_list,
                "blacklist": self._cmd_blacklist,
                "update": self._cmd_update,
                "exit": self._cmd_exit_mode,
            })
        return table

    # -- local-context commands (never touch the radio) ------------------------------

    def _cmd_pwd(self, args: list[str]) -> str:
        if self.cwd is None:
            return self.testbed.namespace.mount
        return self.testbed.namespace.path_of(self.cwd)

    def _cmd_cd(self, args: list[str]) -> str:
        if not args:
            self.cwd = None
            return ""
        try:
            self.cwd = self.testbed.namespace.resolve(args[0])
        except NoSuchNode as exc:
            return f"error: {exc}"
        return ""

    def _cmd_ls(self, args: list[str]) -> str:
        return "\n".join(self.testbed.namespace.names())

    def _cmd_attach(self, args: list[str]) -> str:
        ref = args[0] if args else self.cwd
        if ref is None:
            return "error: attach needs a node (or cd somewhere first)"
        self.ws.attach_near(ref)
        return ""

    def _cmd_help(self, args: list[str]) -> str:
        return ("commands: pwd cd ls attach ping traceroute diagnose power "
                "channel scan group events ps kill stats trace watch "
                "profile neighborsetup\n"
                "diagnosis: diagnose <node> (trace the path, survey its "
                "hops, name what's wrong) | "
                "watch on|off|report (passive anomaly watch — listens to "
                "beacons, sends zero probes)\n"
                "observability: stats [prefix] (metrics snapshot, "
                "e.g. stats mac. or stats medium. for the "
                "candidate-pruning and geometry gauges — repositions, "
                "idx.rebuilds, rows.rebuilt) | "
                "trace on|off|last|<origin:port:seq> (packet lifecycle) | "
                "profile on|off|report (event-loop hotspots)"
                + ("\nneighborhood mode: list blacklist update exit"
                   if self.neighbor_mode else ""))

    # -- management commands ----------------------------------------------------------

    def _current(self) -> int:
        if self.cwd is None:
            raise CommandError("no current node: cd to a node first")
        return self.cwd

    def _probe_call(self, probe):
        """Issue a probe's wire request from the *current* position.

        The shell deliberately does not use the executor: the user
        chooses where the workstation stands (``attach``), so only the
        probe's plan (message, body, window) is borrowed.
        """
        request = probe.request()
        reply = self.ws.call(
            request.node, request.msg_type, request.body,
            window=request.window,
            wait_full_window=request.wait_full_window,
        )
        if not reply.ok:
            return None, f"error: {reply.body.decode(errors='replace')}"
        return probe.decode(reply.body, self.testbed.namespace), ""

    def _cmd_ping(self, args: list[str]) -> str:
        if not args:
            raise ParameterError("usage: ping <node> [round=] [length=] [port=]")
        target = self.testbed.namespace.resolve(args[0])
        params = _parse_kv(args[1:], {"round": 1, "length": 32, "port": 0})
        from repro.diag.probe import LinkProbe
        result, error = self._probe_call(LinkProbe(
            src=self._current(), dst=target, rounds=params["round"],
            length=params["length"], port=params["port"],
        ))
        if result is None:
            return error
        self.last_result = result
        return result.render()

    def _cmd_traceroute(self, args: list[str]) -> str:
        if not args:
            raise ParameterError(
                "usage: traceroute <node> [round=] [length=] [port=]"
            )
        target = self.testbed.namespace.resolve(args[0])
        params = _parse_kv(args[1:], {
            "round": 1, "length": 32, "port": WellKnownPorts.GEOGRAPHIC,
        })
        from repro.diag.probe import PathProbe
        result, error = self._probe_call(PathProbe(
            src=self._current(), dst=target, rounds=params["round"],
            length=params["length"], port=params["port"],
        ))
        if result is None:
            return error
        self.last_result = result
        return result.render()

    def _cmd_diagnose(self, args: list[str]) -> str:
        """Automated verdicts: trace the path, survey its hop links,
        name what's wrong (``repro.diag`` engine behind the shell)."""
        if not args:
            raise ParameterError(
                "usage: diagnose <node> [round=] [length=] [port=]"
            )
        target = self.testbed.namespace.resolve(args[0])
        params = _parse_kv(args[1:], {
            "round": 5, "length": 32, "port": WellKnownPorts.GEOGRAPHIC,
        })
        src = self._current()
        from repro.diag.engine import DiagnosisEngine
        report = DiagnosisEngine(self.ws).diagnose(
            src, target, rounds=params["round"],
            length=params["length"], port=params["port"],
        )
        self.last_report = report
        # The engine walked the workstation along the path; come home so
        # follow-up shell commands still reach the current node.
        self.ws.attach_near(src)
        return report.explain()

    def _cmd_power(self, args: list[str]) -> str:
        if args:
            reply = self.ws.call(self._current(), MsgType.SET_POWER,
                                 bytes([int(args[0])]))
        else:
            reply = self.ws.call(self._current(), MsgType.GET_RADIO)
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        return f"Power = {reply.body[0]}, Channel = {reply.body[1]}"

    def _cmd_channel(self, args: list[str]) -> str:
        if args:
            reply = self.ws.call(self._current(), MsgType.SET_CHANNEL,
                                 bytes([int(args[0])]))
        else:
            reply = self.ws.call(self._current(), MsgType.GET_RADIO)
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        return f"Power = {reply.body[0]}, Channel = {reply.body[1]}"

    def _cmd_scan(self, args: list[str]) -> str:
        """Survey ambient energy across channels on the current node."""
        params = _parse_kv(args, {"first": 11, "count": 16, "samples": 4,
                                  "dwell": 10})
        from repro.diag.probe import ChannelScanProbe
        rows, error = self._probe_call(ChannelScanProbe(
            node=self._current(), first=params["first"],
            count=params["count"], samples=params["samples"],
            dwell_ms=params["dwell"],
        ))
        if rows is None:
            return error
        lines = ["channel  peak RSSI"]
        for channel, reading in rows:
            bar = "#" * max(0, (reading + 60) // 3)
            lines.append(f"{channel:>7}  {reading:>9}  {bar}")
        return "\n".join(lines)

    def _cmd_ps(self, args: list[str]) -> str:
        """List the current node's live kernel threads."""
        reply = self.ws.call(self._current(), MsgType.GET_THREADS)
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        count = reply.body[0]
        offset = 1
        lines = ["tid  started_s  name"]
        for _ in range(count):
            tid, started_ms = struct.unpack_from(">HI", reply.body, offset)
            offset += 6
            name_len = reply.body[offset]
            offset += 1
            name = reply.body[offset:offset + name_len].decode()
            offset += name_len
            lines.append(f"{tid:>3}  {started_ms / 1000:9.3f}  {name}")
        if count == 0:
            return "no live threads"
        return "\n".join(lines)

    def _cmd_kill(self, args: list[str]) -> str:
        """Kill one of the current node's threads by tid."""
        if len(args) != 1 or not args[0].isdigit():
            raise ParameterError("usage: kill <tid>")
        reply = self.ws.call(self._current(), MsgType.KILL_THREAD,
                             struct.pack(">H", int(args[0])))
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        return f"thread {args[0]} killed"

    def _cmd_events(self, args: list[str]) -> str:
        """Dump the current node's kernel event log."""
        params = _parse_kv(args, {"limit": 16})
        reply = self.ws.call(self._current(), MsgType.GET_EVENTS,
                             bytes([min(255, params["limit"])]))
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        count = reply.body[0]
        offset = 1
        lines = []
        for _ in range(count):
            time_ms, = struct.unpack_from(">I", reply.body, offset)
            offset += 4
            code_len = reply.body[offset]
            offset += 1
            code = reply.body[offset:offset + code_len].decode()
            offset += code_len
            detail_len = reply.body[offset]
            offset += 1
            detail = reply.body[offset:offset + detail_len].decode()
            offset += detail_len
            lines.append(f"[{time_ms / 1000:10.3f}] {code}: {detail}")
        return "\n".join(lines) if lines else "event log is empty"

    def _cmd_group(self, args: list[str]) -> str:
        """Broadcast a command to every node in radio range.

        ``group radio`` reads power/channel from all reachable nodes;
        ``group power <level>`` / ``group channel <ch>`` set them
        everywhere at once.  Replies are collected for the full response
        window ("these nodes wait for random backoff delays before
        sending responses").
        """
        if not args:
            raise ParameterError("usage: group radio|power|channel [value]")
        sub = args[0]
        if sub == "radio":
            msg, body = MsgType.GET_RADIO, b""
        elif sub == "power" and len(args) == 2:
            msg, body = MsgType.SET_POWER, bytes([int(args[1])])
        elif sub == "channel" and len(args) == 2:
            msg, body = MsgType.SET_CHANNEL, bytes([int(args[1])])
        else:
            raise ParameterError("usage: group radio|power|channel [value]")
        replies = self.ws.group_call(msg, body)
        if not replies:
            return "no replies (no nodes in range?)"
        namespace = self.testbed.namespace
        lines = []
        for node_id in sorted(replies):
            reply = replies[node_id]
            name = (namespace.name_of(node_id)
                    if node_id in namespace else str(node_id))
            if reply.ok and len(reply.body) >= 2:
                lines.append(f"{name}: Power = {reply.body[0]}, "
                             f"Channel = {reply.body[1]}")
            else:
                lines.append(f"{name}: error")
        lines.append(f"({len(replies)} nodes replied)")
        return "\n".join(lines)

    # -- observability commands --------------------------------------------------------

    def _cmd_stats(self, args: list[str]) -> str:
        """Snapshot of the metrics registry (counters, gauges, histograms).

        Workstation-local: reads the simulation's shared monitor, no
        radio traffic involved.  An optional name prefix narrows the
        table to one subsystem: ``stats mac.``.
        """
        if len(args) > 1:
            raise ParameterError("usage: stats [name-prefix]")
        prefix = args[0] if args else ""
        return self.testbed.monitor.registry.render(prefix)

    def _cmd_trace(self, args: list[str]) -> str:
        """Packet-lifecycle tracing: toggle it, or explain one packet."""
        if len(args) != 1:
            raise ParameterError(
                "usage: trace on|off|last|<origin:port:seq>"
            )
        tracer = self.testbed.env.tracer
        sub = args[0]
        if sub == "on":
            tracer.enable()
            return "tracing enabled"
        if sub == "off":
            tracer.disable()
            return "tracing disabled"
        if sub == "last":
            packet_id = self._last_diagnostic_packet(tracer)
            if packet_id is None:
                return ("no traced packets yet"
                        + ("" if tracer.enabled
                           else " (tracing is off; `trace on` first)"))
            return tracer.explain(packet_id)
        return tracer.explain(sub)

    @staticmethod
    def _last_diagnostic_packet(tracer) -> str | None:
        """The most recent traced packet that is not shell plumbing.

        Every shell command rides the reliable control channel, and
        neighbor beacons flow constantly in the background — so the
        literal last packet is almost never the user's probe.  ``trace
        last`` should answer "what happened to my *probe*", so both are
        skipped unless they are all there is.
        """
        background = (f":{WellKnownPorts.CONTROL}:",
                      f":{WellKnownPorts.NEIGHBOR}:")
        for event in reversed(tracer.events):
            packet = event.packet
            if packet is not None and not any(p in packet
                                              for p in background):
                return packet
        return tracer.last_packet_id

    def _cmd_watch(self, args: list[str]) -> str:
        """Passive anomaly watch: listen to beacons, never probe.

        ``watch on`` taps the shared monitor's beacon stream with an
        :class:`~repro.diag.online.OnlineMonitor`; ``watch report``
        (or bare ``watch``) renders the current passive verdict —
        zero packets sent, so watching costs the network nothing.
        """
        if len(args) > 1 or (args and args[0] not in
                             ("on", "off", "report")):
            raise ParameterError("usage: watch [on|off|report]")
        sub = args[0] if args else "report"
        if sub == "on":
            if self.online is None:
                from repro.diag.online import OnlineMonitor
                self.online = OnlineMonitor(self.testbed).attach()
            return "passive watch enabled (listening to beacons)"
        if sub == "off":
            if self.online is not None:
                self.online.detach()
            return "passive watch disabled"
        if self.online is None:
            return "watch has never been enabled (`watch on` first)"
        report = self.online.report()
        self.last_report = report
        heard = (f"[watch] {self.online.beacons_seen} beacons heard on "
                 f"{self.online.links_tracked} links, 0 probes sent")
        return f"{heard}\n{report.explain()}"

    def _cmd_profile(self, args: list[str]) -> str:
        """Wall-clock profiling of the event loop: on, off, or report."""
        if len(args) != 1 or args[0] not in ("on", "off", "report"):
            raise ParameterError("usage: profile on|off|report")
        env = self.testbed.env
        sub = args[0]
        if sub == "on":
            if env.profiler is None:
                self._profiler = SimProfiler().attach(env)
            return "profiler attached"
        if sub == "off":
            SimProfiler.detach(env)
            return "profiler detached"
        profiler = env.profiler or self._profiler
        if profiler is None:
            return "profiler has never been attached (`profile on` first)"
        return profiler.report()

    # -- neighborhood-management mode ----------------------------------------------------

    def _cmd_neighborsetup(self, args: list[str]) -> str:
        self._current()  # require a node context
        self.neighbor_mode = True
        return "entering neighborhood management mode"

    def _cmd_exit_mode(self, args: list[str]) -> str:
        self.neighbor_mode = False
        return ""

    def _cmd_list(self, args: list[str]) -> str:
        from repro.diag.probe import NeighborProbe
        views, error = self._probe_call(NeighborProbe(node=self._current()))
        if views is None:
            return error
        if not views:
            return "neighbor table is empty"
        namespace = self.testbed.namespace
        return "\n".join(
            v.render(namespace.name_of(v.node_id)
                     if v.node_id in namespace else None)
            for v in views
        )

    def _cmd_blacklist(self, args: list[str]) -> str:
        if len(args) != 2 or args[0] not in ("add", "remove"):
            raise ParameterError("usage: blacklist add|remove <node>")
        neighbor = self.testbed.namespace.resolve(args[1])
        msg = (MsgType.BLACKLIST_ADD if args[0] == "add"
               else MsgType.BLACKLIST_REMOVE)
        reply = self.ws.call(self._current(), msg,
                             struct.pack(">H", neighbor))
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        return f"blacklist {args[0]}: {args[1]}"

    def _cmd_update(self, args: list[str]) -> str:
        params = _parse_kv(args, {"freq": 2000})
        reply = self.ws.call(
            self._current(), MsgType.SET_BEACON,
            struct.pack(">I", params["freq"]),
        )
        if not reply.ok:
            return f"error: {reply.body.decode(errors='replace')}"
        return f"beacon interval set to {params['freq']} ms"
