"""The traceroute command (Figure 4): per-hop path profiling.

Mechanism, following the paper:

1. The source starts a *traceroute task*: it asks the routing protocol
   who the next hop toward the destination is, one-hop-probes that node,
   and measures the hop's RTT and link quality from the reply.
2. The probe itself carries the session state, so its *receiver* — "if
   this node is not the last node" — initiates a new task for the next
   hop.  (The paper describes the runtime controller "initializing the
   network by starting the traceroute process on each node along the
   path"; carrying the initialization inside the probe implements the
   same per-hop hand-off with strictly fewer control packets.)
3. Each prober sends a one-hop **report** back to the source over the
   routing protocol — "this packet contains the details on the link
   quality information for only one hop along the path".  The source
   collects reports as they arrive; their staggered arrival times are
   exactly what Figure 5 plots.

Because every hop reports independently, traceroute never pads packets
and is "fundamentally more scalable compared to the multi-hop ping
command" — the overhead bench (Figure 7) quantifies this.
"""

from __future__ import annotations

import typing as _t

from repro.core.results import (
    LinkObservation,
    TracerouteHop,
    TracerouteResult,
)
from repro.core.wire import MsgType, TraceProbe, TraceReply, TraceReport
from repro.errors import HeaderError, KernelError, ParameterError
from repro.kernel.memory import PAPER_FOOTPRINTS
from repro.net.packet import Packet
from repro.net.ports import WellKnownPorts
from repro.radio.medium import FrameArrival
from repro.sim.events import Event
from repro.units import to_ms

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["TracerouteService", "install_traceroute",
           "DEFAULT_ROUND_TIMEOUT"]

#: How long the source waits for the full set of reports each round.
DEFAULT_ROUND_TIMEOUT = 5.0
#: Per-hop probe reply timeout.
PROBE_TIMEOUT = 0.25
#: One-hop probe attempts (a lost reply would otherwise kill the whole
#: downstream tail of the traceroute).
PROBE_ATTEMPTS = 2
#: Hop budget: a traceroute stops extending beyond this depth.
MAX_HOPS = 32
#: Report hold-back (seconds *per hop of depth*): before a hop's report
#: heads upstream it waits ``hop_index × U(min, max)``.  Two birds: the
#: report avoids both the probe wave still advancing down the path and
#: the other hops' reports (links near the CCA sensing limit make carrier
#: sense blind to most neighbors — the classic hidden-terminal regime of
#: real mote testbeds — so time-domain desynchronisation is the only
#: protection reports get).  Depth scaling keeps the windows of adjacent
#: hops overlapping, which is why some reports still arrive back-to-back
#: at the source, as the paper's Figure 5 shows.
REPORT_JITTER_MIN = 0.03
REPORT_JITTER_MAX = 0.09


def install_traceroute(node: "SensorNode") -> "TracerouteService":
    """Install the traceroute command on a node (flash/RAM accounted)."""
    flash, ram = PAPER_FOOTPRINTS["traceroute"]
    node.memory.install("traceroute", flash, ram)
    service = TracerouteService(node)
    node.services["traceroute"] = service
    return service


class TracerouteService:
    """Node-side traceroute machinery plus the client API."""

    def __init__(self, node: "SensorNode"):
        self.node = node
        self._session = (node.id << 8) & 0xFFFF  # disambiguate per node
        #: Probers waiting for a one-hop reply: session → Event.
        self._reply_waiters: dict[int, Event] = {}
        #: Sources collecting reports: session → callback(report).
        self._collectors: dict[int, _t.Callable[[TraceReport], None]] = {}
        #: (session, hop_index) pairs already continued, to suppress
        #: duplicate task initiation if a probe is retransmitted.
        self._continued: set[tuple[int, int]] = set()
        self._jitter_rng = node.rng.stream(f"traceroute.jitter.{node.id}")
        node.stack.ports.subscribe(
            WellKnownPorts.TRACEROUTE, self._on_packet, name="traceroute"
        )

    # -- dispatch ------------------------------------------------------------

    def _on_packet(self, packet: Packet, arrival: FrameArrival | None) -> None:
        msg_type = packet.payload[0] if packet.payload else None
        try:
            if msg_type == MsgType.TRACE_PROBE and arrival is not None:
                self._handle_probe(packet, arrival)
            elif msg_type == MsgType.TRACE_REPLY:
                self._handle_reply(packet, arrival)
            elif msg_type == MsgType.TRACE_REPORT:
                self._handle_report(packet)
            else:
                self.node.monitor.count("traceroute.unknown_messages")
        except HeaderError:
            self.node.monitor.count("traceroute.malformed_messages")

    def _handle_probe(self, packet: Packet, arrival: FrameArrival) -> None:
        probe = TraceProbe.from_bytes(packet.payload)
        reply = TraceReply(
            session=probe.session, lqi=arrival.lqi, rssi=arrival.rssi,
            queue=self.node.mac.queue_occupancy,
        )
        out = Packet(
            port=WellKnownPorts.TRACEROUTE, origin=self.node.id,
            dest=packet.origin, payload=reply.to_bytes(),
        )
        self.node.stack.send(out, arrival.sender, kind="traceroute")
        # Step 5 of Figure 4: the probed node carries the traceroute on.
        key = (probe.session, probe.hop_index)
        if (self.node.id != probe.final_dest
                and probe.hop_index < MAX_HOPS
                and key not in self._continued):
            self._continued.add(key)
            self.node.threads.spawn(
                "traceroute-task",
                self._task(
                    session=probe.session, origin=probe.origin,
                    final_dest=probe.final_dest,
                    hop_index=probe.hop_index + 1,
                    routing_port=probe.routing_port, length=probe.length,
                ),
            )

    def _handle_reply(self, packet: Packet,
                      arrival: FrameArrival | None) -> None:
        reply = TraceReply.from_bytes(packet.payload)
        waiter = self._reply_waiters.pop(reply.session, None)
        if waiter is None:
            self.node.monitor.count("traceroute.orphan_replies")
            return
        waiter.succeed((reply, arrival))

    def _handle_report(self, packet: Packet) -> None:
        report = TraceReport.from_bytes(packet.payload)
        collector = self._collectors.get(report.session)
        if collector is None:
            self.node.monitor.count("traceroute.orphan_reports")
            return
        collector(report)

    # -- the per-hop task --------------------------------------------------------

    def _task(self, *, session: int, origin: int, final_dest: int,
              hop_index: int, routing_port: int, length: int):
        """Probe the next hop toward ``final_dest`` and report to
        ``origin``.  Runs on whichever node currently holds the baton."""
        node = self.node
        try:
            protocol = node.protocol_on(routing_port)
        except KernelError:
            node.monitor.count("traceroute.no_protocol")
            return
        next_hop = protocol.route_next_hop(final_dest)
        if next_hop is None:
            node.monitor.count("traceroute.stuck")
            return
        probe = TraceProbe(
            session=session, origin=origin, final_dest=final_dest,
            hop_index=hop_index, routing_port=routing_port, length=length,
        )
        reply = arrival = None
        # Hop RTT is measured on the prober's own clock (no network time
        # synchronization), so local clock drift shows up in the reports.
        started = node.local_time()
        for _attempt in range(PROBE_ATTEMPTS):
            out = Packet(
                port=WellKnownPorts.TRACEROUTE, origin=node.id,
                dest=next_hop, payload=probe.to_bytes(),
            )
            started = node.local_time()
            if not node.stack.send(out, next_hop, kind="traceroute"):
                node.monitor.count("traceroute.send_failures")
                return
            waiter = Event(node.env)
            self._reply_waiters[session] = waiter
            outcome = yield node.env.any_of(
                [waiter, node.env.timeout(PROBE_TIMEOUT, value="timeout")]
            )
            values = list(outcome.values())
            if values == ["timeout"]:
                self._reply_waiters.pop(session, None)
                node.monitor.count("traceroute.probe_timeouts")
                continue
            reply, arrival = values[0]
            break
        if reply is None:
            node.monitor.count("traceroute.hop_failures")
            return
        rtt_us = int(round((node.local_time() - started) * 1e6))
        report = TraceReport(
            session=session, probed_node=next_hop, hop_index=hop_index,
            rtt_us=rtt_us,
            lqi_forward=reply.lqi,
            lqi_backward=arrival.lqi if arrival else 0,
            rssi_forward=reply.rssi,
            rssi_backward=arrival.rssi if arrival else 0,
            queue_remote=reply.queue,
            queue_local=node.mac.queue_occupancy,
        )
        if origin == node.id:
            self._handle_local_report(report)
        else:
            # Random hold-back before the report heads upstream: reports
            # are not latency-critical and would otherwise collide with
            # the probe wave still advancing down the path (the paper's
            # nodes likewise "add random waiting time before sending back
            # replies").  This hold-and-release is also what makes some
            # reports arrive at the source back-to-back (Figure 5).
            yield node.env.timeout(hop_index * float(
                self._jitter_rng.uniform(REPORT_JITTER_MIN,
                                         REPORT_JITTER_MAX)
            ))
            protocol.send(
                origin, WellKnownPorts.TRACEROUTE, report.to_bytes(),
                kind="traceroute",
            )

    def _handle_local_report(self, report: TraceReport) -> None:
        collector = self._collectors.get(report.session)
        if collector is not None:
            collector(report)

    # -- client ------------------------------------------------------------------

    def traceroute(self, target: int, *, rounds: int = 1, length: int = 32,
                   routing_port: int = WellKnownPorts.GEOGRAPHIC,
                   timeout: float = DEFAULT_ROUND_TIMEOUT,
                   linger: float | None = None):
        """Run the traceroute command; a generator to spawn as a process.

        Returns a :class:`TracerouteResult` whose hops carry both the
        per-hop RTT/link observables and the report arrival times
        (Figure 5's series).
        """
        if rounds < 1:
            raise ParameterError(f"rounds must be >= 1, got {rounds}")
        if not 0 <= length <= 64:
            raise ParameterError(f"length must be 0..64, got {length}")
        node = self.node
        try:
            protocol = node.protocol_on(routing_port)
        except KernelError:
            raise ParameterError(
                f"no routing protocol on port {routing_port}"
            ) from None
        result = TracerouteResult(
            target_name=node.testbed.namespace.name_of(target)
            if target in node.testbed.namespace else str(target),
            target_id=target,
            requested_rounds=rounds,
            probe_length=length,
            protocol_name=protocol.name,
            routing_port=routing_port,
        )
        namespace = node.testbed.namespace
        for _round in range(rounds):
            self._session = (self._session + 1) & 0xFFFF
            session = self._session
            round_started = node.local_time()
            done = Event(node.env)

            def collect(report: TraceReport, _started=round_started,
                        _done=done) -> None:
                result.hops.append(TracerouteHop(
                    hop_index=report.hop_index,
                    probed_node_id=report.probed_node,
                    probed_node_name=(
                        namespace.name_of(report.probed_node)
                        if report.probed_node in namespace
                        else str(report.probed_node)
                    ),
                    rtt_ms=report.rtt_us / 1000.0,
                    link=LinkObservation(
                        lqi_forward=report.lqi_forward,
                        lqi_backward=report.lqi_backward,
                        rssi_forward=report.rssi_forward,
                        rssi_backward=report.rssi_backward,
                        queue_remote=report.queue_remote,
                        queue_local=report.queue_local,
                    ),
                    arrival_ms=to_ms(node.local_time() - _started),
                ))
                if report.probed_node == result.target_id:
                    if not _done.triggered:
                        _done.succeed("reached")

            self._collectors[session] = collect
            result.sent += 1
            node.threads.spawn(
                "traceroute-task",
                self._task(
                    session=session, origin=node.id, final_dest=target,
                    hop_index=1, routing_port=routing_port, length=length,
                ),
            )
            outcome = yield node.env.any_of(
                [done, node.env.timeout(timeout, value="timeout")]
            )
            if "reached" in outcome.values():
                # The final hop reported, but earlier hops' reports may
                # still sit in their random hold-back window — keep the
                # collector open long enough for the stragglers.
                depth = max((h.hop_index for h in result.hops), default=1)
                grace = (depth * REPORT_JITTER_MAX + 0.3
                         if linger is None else linger)
                yield node.env.timeout(grace)
            del self._collectors[session]
        return result
