"""Channel scan: survey ambient RF energy across the 16 channels.

The paper's radio-configuration group lets users view and change the
channel; *choosing* a good channel needs to know which ones are busy
("channel selection and management" is the §III-B problem statement).
This utility hops the radio across the 802.15.4 band, samples the RSSI
register in energy-detect mode on each channel (no frame reception
involved), and reports the worst-case reading per channel — quiet
channels sit at the noise floor, channels carrying traffic or
interference stand out.

While scanning, the node is deaf on its home channel; the scan restores
the original channel when done, exactly like a real site-survey tool.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ParameterError
from repro.radio.cc2420 import MAX_CHANNEL, MIN_CHANNEL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["channel_scan", "DEFAULT_SAMPLES", "DEFAULT_DWELL"]

#: RSSI samples taken per channel.
DEFAULT_SAMPLES = 4
#: Gap between samples (seconds) — long enough to straddle data frames.
DEFAULT_DWELL = 0.01


def channel_scan(node: "SensorNode", *,
                 first: int = MIN_CHANNEL,
                 count: int = MAX_CHANNEL - MIN_CHANNEL + 1,
                 samples: int = DEFAULT_SAMPLES,
                 dwell: float = DEFAULT_DWELL):
    """Scan ``count`` channels starting at ``first``.

    A generator to run as a kernel thread; returns a list of
    ``(channel, max_rssi_reading)`` pairs.  Uses only system calls (set
    channel, sample RSSI) — the same interface a real scan utility has.
    """
    if not MIN_CHANNEL <= first <= MAX_CHANNEL:
        raise ParameterError(f"first channel {first} outside "
                             f"{MIN_CHANNEL}..{MAX_CHANNEL}")
    if count < 1 or first + count - 1 > MAX_CHANNEL:
        raise ParameterError(f"scan of {count} channels from {first} "
                             "leaves the band")
    if samples < 1:
        raise ParameterError("need at least one sample per channel")
    original = node.radio.channel
    # Irregular sampling: a fixed dwell can alias with periodic traffic
    # and miss it entirely; jittering each gap by ±30 % decorrelates the
    # sampler from any packet period.
    jitter_rng = node.rng.stream(f"scan.jitter.{node.id}")
    results: list[tuple[int, int]] = []
    try:
        for channel in range(first, first + count):
            node.syscalls.invoke("radio_set_channel", channel)
            worst = -128
            for _ in range(samples):
                yield node.env.timeout(
                    dwell * float(jitter_rng.uniform(0.7, 1.3))
                )
                reading = node.syscalls.invoke("rssi_sample")
                worst = max(worst, int(reading))  # type: ignore[arg-type]
            results.append((channel, worst))
            node.monitor.count("scan.channels_sampled")
    finally:
        node.syscalls.invoke("radio_set_channel", original)
    return results
