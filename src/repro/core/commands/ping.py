"""The ping command (Figure 3): one-hop and multi-hop link profiling.

The service side is a thread subscribed to the ping port: every probe is
answered with a reply carrying the *receiver-side* observables of that
probe (LQI, RSSI — "such information is only available after the packet
is received" — plus the MAC queue occupancy the sample output reports).
The client side sends probes, measures RTT against its own clock ("we
only obtain timing information on the same node ... no network level
synchronization service is needed"), and assembles a
:class:`~repro.core.results.PingResult`.

For multi-hop probes (``routing_port != 0``) the probe and the reply both
travel with link-quality padding enabled, so the client learns the
per-hop quality of the forward path (echoed inside the reply payload) and
of the backward path (padded onto the reply itself).
"""

from __future__ import annotations

import typing as _t

from repro.core.results import LinkObservation, PingResult, PingRound
from repro.core.wire import MsgType, PingProbe, PingReply
from repro.errors import HeaderError, KernelError, ParameterError
from repro.kernel.memory import PAPER_FOOTPRINTS
from repro.net.packet import Packet
from repro.net.ports import WellKnownPorts
from repro.radio.medium import FrameArrival
from repro.sim.events import Event
from repro.units import to_ms

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["PingService", "install_ping", "DEFAULT_ROUND_TIMEOUT"]

#: Per-round reply timeout; the paper's one-hop commands budget 500 ms.
DEFAULT_ROUND_TIMEOUT = 0.5
#: Default probe payload length (the paper's examples use length=32).
DEFAULT_LENGTH = 32


def install_ping(node: "SensorNode") -> "PingService":
    """Install the ping command on a node (flash/RAM accounted)."""
    flash, ram = PAPER_FOOTPRINTS["ping"]
    node.memory.install("ping", flash, ram)
    service = PingService(node)
    node.services["ping"] = service
    return service


class PingService:
    """Both halves of ping: the responder thread and the client API."""

    def __init__(self, node: "SensorNode"):
        self.node = node
        self._token = 0
        #: Waiting clients: token → Event triggered with the reply tuple.
        self._waiting: dict[int, Event] = {}
        node.stack.ports.subscribe(
            WellKnownPorts.PING, self._on_packet, name="ping"
        )

    # -- responder ----------------------------------------------------------

    def _on_packet(self, packet: Packet, arrival: FrameArrival | None) -> None:
        if arrival is None and packet.origin == self.node.id:
            return  # our own loopback; nothing to measure
        msg_type = packet.payload[0] if packet.payload else None
        try:
            if msg_type == MsgType.PING_PROBE:
                self._answer_probe(packet, arrival)
            elif msg_type == MsgType.PING_REPLY:
                self._accept_reply(packet, arrival)
            else:
                self.node.monitor.count("ping.unknown_messages")
        except HeaderError:
            self.node.monitor.count("ping.malformed_messages")

    def _answer_probe(self, packet: Packet,
                      arrival: FrameArrival | None) -> None:
        if arrival is None:
            return
        probe = PingProbe.from_bytes(packet.payload)
        self.node.monitor.count("ping.probes_answered")
        reply = PingReply(
            token=probe.token,
            lqi=arrival.lqi,
            rssi=arrival.rssi,
            queue=self.node.mac.queue_occupancy,
        )
        if probe.routing_port:
            # Routed probe: reply over the same protocol.  The probe's
            # padding region — the forward path's per-hop record — is
            # "inserted into the reply packet", which then "collects
            # additional link quality information" on its way back: one
            # region accumulating over the whole round trip.
            try:
                protocol = self.node.protocol_on(probe.routing_port)
            except KernelError:
                self.node.monitor.count("ping.no_protocol")
                return
            protocol.send(
                packet.origin, WellKnownPorts.PING, reply.to_bytes(),
                padding=True, kind="ping",
                initial_quality=packet.hop_quality,
            )
        else:
            # seq mirrors the probe's so each round is its own lifecycle
            # in the trace (ids are origin-scoped, so probe and reply
            # still get distinct ids).
            out = Packet(
                port=WellKnownPorts.PING, origin=self.node.id,
                dest=packet.origin, payload=reply.to_bytes(),
                seq=packet.seq,
            )
            self.node.stack.send(out, arrival.sender, kind="ping")

    def _accept_reply(self, packet: Packet,
                      arrival: FrameArrival | None) -> None:
        reply = PingReply.from_bytes(packet.payload)
        waiter = self._waiting.pop(reply.token, None)
        if waiter is None:
            self.node.monitor.count("ping.orphan_replies")
            return
        waiter.succeed((reply, arrival, packet))

    # -- client ------------------------------------------------------------------

    def ping(self, target: int, *, rounds: int = 1,
             length: int = DEFAULT_LENGTH, routing_port: int = 0,
             timeout: float = DEFAULT_ROUND_TIMEOUT,
             interval: float = 0.05):
        """Run the ping command; a generator to spawn as a process.

        Returns a :class:`PingResult`.  ``routing_port=0`` probes a
        direct neighbor; any other value routes the probe over that
        protocol (the paper's multi-hop ping).
        """
        if rounds < 1:
            raise ParameterError(f"rounds must be >= 1, got {rounds}")
        if not 0 <= length <= 64:
            raise ParameterError(f"length must be 0..64, got {length}")
        node = self.node
        result = PingResult(
            target_name=node.testbed.namespace.name_of(target)
            if target in node.testbed.namespace else str(target),
            target_id=target,
            requested_rounds=rounds,
            probe_length=length,
            power_level=node.radio.power_level,
            channel=node.radio.channel,
        )
        for seq in range(rounds):
            self._token = (self._token + 1) & 0xFFFF
            token = self._token
            probe = PingProbe(token=token, length=length,
                              routing_port=routing_port)
            # RTT is measured against the node's own clock ("we only
            # obtain timing information on the same node"), so a node
            # with a drifting oscillator reports drifted RTTs — exactly
            # what a real mote would do.
            started = node.local_time()
            sent = self._send_probe(target, probe, routing_port)
            if not sent:
                node.monitor.count("ping.send_failures")
                result.sent += 1
                continue
            result.sent += 1
            waiter = Event(node.env)
            self._waiting[token] = waiter
            outcome = yield node.env.any_of(
                [waiter, node.env.timeout(timeout, value="timeout")]
            )
            values = list(outcome.values())
            if values == ["timeout"]:
                self._waiting.pop(token, None)
                node.monitor.count("ping.timeouts")
            else:
                reply, arrival, reply_packet = values[0]
                rtt_ms = to_ms(node.local_time() - started)
                node.monitor.observe("ping.rtt_ms", rtt_ms)
                # The reply's padding region holds the whole round trip:
                # the forward entries it was seeded with, then one entry
                # per backward hop (= the reply's own hop count).
                quality = [(h.lqi, h.rssi)
                           for h in reply_packet.hop_quality]
                split = len(quality) - reply_packet.hop_count
                split = max(0, min(len(quality), split))
                result.rounds.append(PingRound(
                    seq=seq,
                    rtt_ms=rtt_ms,
                    link=LinkObservation(
                        lqi_forward=reply.lqi,
                        lqi_backward=arrival.lqi if arrival else 0,
                        rssi_forward=reply.rssi,
                        rssi_backward=arrival.rssi if arrival else 0,
                        queue_remote=reply.queue,
                        queue_local=node.mac.queue_occupancy,
                    ),
                    forward_path=tuple(quality[:split]),
                    backward_path=tuple(quality[split:]),
                ))
            if seq + 1 < rounds:
                yield node.env.timeout(interval)
        return result

    def _send_probe(self, target: int, probe: PingProbe,
                    routing_port: int) -> bool:
        if routing_port:
            try:
                protocol = self.node.protocol_on(routing_port)
            except KernelError:
                raise ParameterError(
                    f"no routing protocol on port {routing_port}"
                ) from None
            return protocol.send(
                target, WellKnownPorts.PING, probe.to_bytes(),
                padding=True, kind="ping",
            )
        # The token doubles as the packet seq so consecutive probes trace
        # as distinct lifecycles instead of sharing "origin:port:0".
        packet = Packet(
            port=WellKnownPorts.PING, origin=self.node.id, dest=target,
            payload=probe.to_bytes(), seq=probe.token,
        )
        return self.node.stack.send(packet, target, kind="ping")
