"""The management workstation: LiteView's client-side radio endpoint.

The workstation is a base-station mote attached to the same radio medium
as the network ("the command interpreter communicates with the runtime
controller running on the nodes following a reliable one-hop
communication protocol").  It offers a request/reply API over the
reliable protocol; the shell-level command interpreter sits on top.

Because the protocol is one-hop, the workstation must be within radio
range of the node it manages — :meth:`attach_near` moves the base
station next to a node, modelling the on-site engineer walking the
deployment with a laptop, which is precisely the paper's usage scenario.
"""

from __future__ import annotations

import struct
import typing as _t

from repro.core.reliable import ReliableEndpoint
from repro.core.wire import MsgType
from repro.errors import CommandTimeout, ReliableTransferError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode
    from repro.kernel.testbed import Testbed

__all__ = ["Workstation", "Reply", "DEFAULT_RESPONSE_WINDOW"]

#: The paper's fixed response window for one-hop management commands:
#: "a response delay of 500 milliseconds ... intentionally longer than
#: needed ... to allow nodes to add random waiting time".
DEFAULT_RESPONSE_WINDOW = 0.5


class Reply:
    """A parsed management reply."""

    __slots__ = ("status", "body", "elapsed")

    def __init__(self, status: int, body: bytes, elapsed: float):
        self.status = status
        self.body = body
        self.elapsed = elapsed

    @property
    def ok(self) -> bool:
        """True when the node reported success."""
        return self.status == 0


class Workstation:
    """Base-station mote plus request/reply bookkeeping."""

    def __init__(self, testbed: "Testbed",
                 position: tuple[float, float] = (0.0, -10.0),
                 name: str = "workstation"):
        self.testbed = testbed
        # The base station listens but never beacons: it is a management
        # device, not a router, and must not attract forwarded traffic.
        self.node: "SensorNode" = testbed.add_node(
            name, position, neighbor_kwargs={"beaconing": False},
        )
        self.endpoint = ReliableEndpoint(self.node, self._on_message)
        self._request_id = 0
        self._pending: dict[int, Event] = {}
        self._group_pending: dict[int, dict[int, "Reply"]] = {}

    # -- positioning ----------------------------------------------------------

    def attach_near(self, ref: "int | str",
                    offset: tuple[float, float] = (0.0, -8.0)) -> None:
        """Move the base station next to a node (the site-visit step)."""
        target = self.testbed.node(ref)
        self.node.position = (
            target.position[0] + offset[0],
            target.position[1] + offset[1],
        )

    # -- request/reply -----------------------------------------------------------

    def request(self, dest: "int | str", msg_type: int, body: bytes = b"",
                *, window: float = DEFAULT_RESPONSE_WINDOW,
                wait_full_window: bool = True):
        """Issue one management request; a generator to run as a process.

        Returns a :class:`Reply`.  With ``wait_full_window`` (the paper's
        behaviour for one-hop commands) the call always takes the full
        response window even if the reply lands earlier; run-commands pass
        False and return on arrival.  Raises :class:`CommandTimeout` when
        no reply arrives inside the window.
        """
        dest_id = self.testbed.namespace.resolve(dest)
        env = self.node.env
        started = env.now
        self._request_id = (self._request_id + 1) & 0xFFFF
        request_id = self._request_id
        payload = (bytes([msg_type]) + struct.pack(">H", request_id) + body)
        waiter = Event(env)
        self._pending[request_id] = waiter
        try:
            try:
                yield from self.endpoint.send(dest_id, payload)
            except ReliableTransferError as exc:
                raise CommandTimeout(
                    f"node {dest!r} did not acknowledge the command "
                    "(out of range or down?)"
                ) from exc
            outcome = yield env.any_of(
                [waiter, env.timeout(window, value="timeout")]
            )
            values = list(outcome.values())
            if values == ["timeout"]:
                raise CommandTimeout(
                    f"no reply from {dest!r} within {window:.1f} s"
                )
            status, reply_body = values[0]
        finally:
            self._pending.pop(request_id, None)
        if wait_full_window:
            remaining = window - (env.now - started)
            if remaining > 0:
                yield env.timeout(remaining)
        return Reply(status=status, body=reply_body,
                     elapsed=env.now - started)

    def group_request(self, msg_type: int, body: bytes = b"", *,
                      window: float = DEFAULT_RESPONSE_WINDOW):
        """Broadcast one request to every node in radio range.

        A generator to run as a process.  The request goes out as a
        single unacknowledged broadcast; replies (each node's reliable
        unicast, after its random backoff) are collected for the full
        response window.  Returns ``{node_id: Reply}``.
        """
        env = self.node.env
        started = env.now
        self._request_id = (self._request_id + 1) & 0xFFFF
        request_id = self._request_id
        payload = bytes([msg_type]) + struct.pack(">H", request_id) + body
        collected: dict[int, Reply] = {}
        self._group_pending[request_id] = collected
        try:
            self.endpoint.broadcast(payload)
            yield env.timeout(window)
        finally:
            del self._group_pending[request_id]
        for reply in collected.values():
            reply.elapsed = env.now - started
        return collected

    def group_call(self, msg_type: int, body: bytes = b"",
                   **kwargs: object) -> "dict[int, Reply]":
        """Run a group request to completion on the event loop."""
        process = self.node.env.process(
            self.group_request(msg_type, body, **kwargs)  # type: ignore[arg-type]
        )
        return self.node.env.run(until=process)

    def _on_message(self, origin: int, message: bytes) -> None:
        if len(message) < 4 or message[0] != MsgType.REPLY:
            self.node.monitor.count("workstation.unknown_messages")
            return
        request_id, status = struct.unpack_from(">HB", message, 1)
        body = message[4:]
        group = self._group_pending.get(request_id)
        if group is not None:
            group[origin] = Reply(status=status, body=body, elapsed=0.0)
            return
        waiter = self._pending.pop(request_id, None)
        if waiter is None:
            self.node.monitor.count("workstation.orphan_replies")
            return
        waiter.succeed((status, body))

    # -- synchronous convenience -----------------------------------------------------

    def call(self, dest: "int | str", msg_type: int, body: bytes = b"",
             **kwargs: object) -> Reply:
        """Run a request to completion on the testbed's event loop.

        Convenience for scripts and benches: spawns the request process
        and advances the simulation until it finishes.
        """
        process = self.node.env.process(
            self.request(dest, msg_type, body, **kwargs)  # type: ignore[arg-type]
        )
        return self.node.env.run(until=process)
