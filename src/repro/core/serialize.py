"""Binary serialisation of command results for over-the-air replies.

When the interpreter runs ping or traceroute *on* a remote node, the
node's runtime controller executes the command locally and ships the
result back over the reliable protocol.  Results are packed into the same
kind of compact structs every other LiteView message uses — no strings on
the wire except the protocol name the traceroute output echoes.
"""

from __future__ import annotations

import struct

from repro.core.results import (
    LinkObservation,
    PingResult,
    PingRound,
    TracerouteHop,
    TracerouteResult,
    NeighborView,
)
from repro.core.wire import pack_signed, unpack_signed
from repro.errors import HeaderError
from repro.kernel.filesystem import Namespace

__all__ = [
    "encode_ping_result",
    "decode_ping_result",
    "encode_trace_result",
    "decode_trace_result",
    "encode_neighbor_views",
    "decode_neighbor_views",
]

_PING_HEAD = ">HBBBBBB"
_PING_ROUND = ">BIBBBBBB"
_TRACE_HEAD = ">HBBBBB"
_TRACE_HOP = ">BHIBBBBBBI"
_NEIGHBOR = ">HBBBB"


def _name_for(namespace: Namespace | None, node_id: int) -> str:
    if namespace is not None and node_id in namespace:
        return namespace.name_of(node_id)
    return str(node_id)


# -- ping ---------------------------------------------------------------------

def encode_ping_result(result: PingResult) -> bytes:
    """Pack a :class:`PingResult` (paths included) into bytes."""
    out = bytearray(struct.pack(
        _PING_HEAD, result.target_id, result.requested_rounds,
        result.probe_length, result.power_level, result.channel,
        result.sent, len(result.rounds),
    ))
    for r in result.rounds:
        out += struct.pack(
            _PING_ROUND, r.seq, min(0xFFFFFFFF, int(r.rtt_ms * 1000)),
            r.link.lqi_forward, r.link.lqi_backward,
            pack_signed(r.link.rssi_forward),
            pack_signed(r.link.rssi_backward),
            min(255, r.link.queue_remote), min(255, r.link.queue_local),
        )
        for path in (r.forward_path, r.backward_path):
            out.append(len(path))
            for lqi, rssi in path:
                out.append(lqi)
                out.append(pack_signed(rssi))
    return bytes(out)


def decode_ping_result(data: bytes,
                       namespace: Namespace | None = None) -> PingResult:
    """Unpack :func:`encode_ping_result` output."""
    head = struct.calcsize(_PING_HEAD)
    if len(data) < head:
        raise HeaderError("short ping result")
    (target_id, rounds_req, length, power, channel, sent, n_rounds
     ) = struct.unpack_from(_PING_HEAD, data)
    result = PingResult(
        target_name=_name_for(namespace, target_id), target_id=target_id,
        requested_rounds=rounds_req, probe_length=length,
        power_level=power, channel=channel, sent=sent,
    )
    offset = head
    round_size = struct.calcsize(_PING_ROUND)
    for _ in range(n_rounds):
        if len(data) < offset + round_size:
            raise HeaderError("truncated ping round")
        (seq, rtt_us, lqi_f, lqi_b, rssi_f, rssi_b, q_r, q_l
         ) = struct.unpack_from(_PING_ROUND, data, offset)
        offset += round_size
        paths: list[tuple[tuple[int, int], ...]] = []
        for _path in range(2):
            if len(data) < offset + 1:
                raise HeaderError("truncated path count")
            count = data[offset]
            offset += 1
            if len(data) < offset + 2 * count:
                raise HeaderError("truncated path entries")
            paths.append(tuple(
                (data[offset + 2 * i],
                 unpack_signed(data[offset + 2 * i + 1]))
                for i in range(count)
            ))
            offset += 2 * count
        result.rounds.append(PingRound(
            seq=seq, rtt_ms=rtt_us / 1000.0,
            link=LinkObservation(
                lqi_forward=lqi_f, lqi_backward=lqi_b,
                rssi_forward=unpack_signed(rssi_f),
                rssi_backward=unpack_signed(rssi_b),
                queue_remote=q_r, queue_local=q_l,
            ),
            forward_path=paths[0], backward_path=paths[1],
        ))
    return result


# -- traceroute ----------------------------------------------------------------

def encode_trace_result(result: TracerouteResult) -> bytes:
    """Pack a :class:`TracerouteResult` into bytes."""
    name = result.protocol_name.encode("utf-8")[:32]
    while name:
        try:
            name.decode("utf-8")
            break
        except UnicodeDecodeError:
            name = name[:-1]  # do not split a multibyte character
    out = bytearray(struct.pack(
        _TRACE_HEAD, result.target_id, result.requested_rounds,
        result.probe_length, result.routing_port, result.sent,
        len(result.hops),
    ))
    out.append(len(name))
    out += name
    for h in result.hops:
        out += struct.pack(
            _TRACE_HOP, h.hop_index, h.probed_node_id,
            min(0xFFFFFFFF, int(h.rtt_ms * 1000)),
            h.link.lqi_forward, h.link.lqi_backward,
            pack_signed(h.link.rssi_forward),
            pack_signed(h.link.rssi_backward),
            min(255, h.link.queue_remote), min(255, h.link.queue_local),
            min(0xFFFFFFFF, int(h.arrival_ms * 1000)),
        )
    return bytes(out)


def decode_trace_result(data: bytes,
                        namespace: Namespace | None = None
                        ) -> TracerouteResult:
    """Unpack :func:`encode_trace_result` output."""
    head = struct.calcsize(_TRACE_HEAD)
    if len(data) < head + 1:
        raise HeaderError("short traceroute result")
    (target_id, rounds_req, length, port, sent, n_hops
     ) = struct.unpack_from(_TRACE_HEAD, data)
    offset = head
    name_len = data[offset]
    offset += 1
    if len(data) < offset + name_len:
        raise HeaderError("truncated protocol name")
    protocol_name = data[offset:offset + name_len].decode("utf-8")
    offset += name_len
    result = TracerouteResult(
        target_name=_name_for(namespace, target_id), target_id=target_id,
        requested_rounds=rounds_req, probe_length=length,
        protocol_name=protocol_name, routing_port=port, sent=sent,
    )
    hop_size = struct.calcsize(_TRACE_HOP)
    for _ in range(n_hops):
        if len(data) < offset + hop_size:
            raise HeaderError("truncated traceroute hop")
        (hop_index, probed, rtt_us, lqi_f, lqi_b, rssi_f, rssi_b,
         q_r, q_l, arrival_us) = struct.unpack_from(_TRACE_HOP, data, offset)
        offset += hop_size
        result.hops.append(TracerouteHop(
            hop_index=hop_index, probed_node_id=probed,
            probed_node_name=_name_for(namespace, probed),
            rtt_ms=rtt_us / 1000.0,
            link=LinkObservation(
                lqi_forward=lqi_f, lqi_backward=lqi_b,
                rssi_forward=unpack_signed(rssi_f),
                rssi_backward=unpack_signed(rssi_b),
                queue_remote=q_r, queue_local=q_l,
            ),
            arrival_ms=arrival_us / 1000.0,
        ))
    return result


# -- neighbor listings ------------------------------------------------------------

def encode_neighbor_views(views: list[NeighborView]) -> bytes:
    """Pack neighbor-table rows for the `list` command's reply."""
    out = bytearray([len(views)])
    for v in views:
        out += struct.pack(
            _NEIGHBOR, v.node_id, min(255, v.lqi), pack_signed(v.rssi),
            min(100, v.prr_percent), 1 if v.enabled else 0,
        )
    return bytes(out)


def decode_neighbor_views(data: bytes) -> list[NeighborView]:
    """Unpack :func:`encode_neighbor_views` output."""
    if not data:
        raise HeaderError("empty neighbor listing")
    count = data[0]
    size = struct.calcsize(_NEIGHBOR)
    if len(data) < 1 + count * size:
        raise HeaderError("truncated neighbor listing")
    views = []
    for i in range(count):
        node_id, lqi, rssi, prr, flags = struct.unpack_from(
            _NEIGHBOR, data, 1 + i * size
        )
        views.append(NeighborView(
            node_id=node_id, lqi=lqi, rssi=unpack_signed(rssi),
            prr_percent=prr, enabled=bool(flags & 1),
        ))
    return views
