"""The reliable one-hop exchange protocol (§IV-B of the paper).

The command interpreter and the runtime controllers talk over a simple
reliable protocol layered on one-hop unicast:

* A message is split into chunks; chunks go out in **batches**, the last
  chunk of each batch requesting an acknowledgement.
* The ack carries a bitmap of everything received so far, so "lost
  packets are detected at the node side by detecting missing sequence
  numbers" and only the missing chunks are resent.
* The batch size adapts to link quality — "a smaller batch size is
  preferred when packets are more likely to get lost": halve on loss,
  grow by one on a clean batch.
* Single-packet commands degenerate to the paper's "one acknowledgement
  packet, combined with a timeout mechanism".

Wire layout::

    DATA  0x40 | xfer_id(2) | index(1) | total(1) | flags(1) | chunk...
    ACK   0x41 | xfer_id(2) | bitmap(4)

The 32-bit bitmap caps a transfer at 32 chunks (~1.7 KB) — far beyond any
LiteView command or reply.
"""

from __future__ import annotations

import struct
import typing as _t
from collections import OrderedDict

from repro.core.wire import MsgType
from repro.errors import HeaderError, ReliableTransferError
from repro.net.packet import Packet
from repro.net.ports import WellKnownPorts
from repro.radio.medium import FrameArrival
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["ReliableEndpoint", "CHUNK_BYTES", "MAX_CHUNKS"]

_DATA_FMT = ">BHBBB"
_DATA_HEADER = struct.calcsize(_DATA_FMT)
_ACK_FMT = ">BHI"

#: Payload bytes per chunk (64-byte payload region minus the DATA header).
CHUNK_BYTES = 64 - _DATA_HEADER
#: Bitmap width caps the chunk count.
MAX_CHUNKS = 32

_FLAG_ACK_REQUEST = 0x01

#: How many completed inbound transfers to remember for duplicate
#: suppression (re-acking straggler retransmissions).
_COMPLETED_MEMORY = 64


class ReliableEndpoint:
    """One side of the workstation↔node control channel."""

    def __init__(self, node: "SensorNode",
                 on_message: _t.Callable[[int, bytes], None], *,
                 port: int = WellKnownPorts.CONTROL,
                 ack_timeout: float = 0.06,
                 max_attempts: int = 10,
                 initial_batch: int = 4,
                 min_batch: int = 1,
                 max_batch: int = 8,
                 backoff_cap: float = 8.0):
        if not 1 <= min_batch <= initial_batch <= max_batch <= MAX_CHUNKS:
            raise ValueError("require 1 <= min <= initial <= max <= 32")
        self.node = node
        self.port = port
        self.on_message = on_message
        self.ack_timeout = float(ack_timeout)
        self.max_attempts = int(max_attempts)
        self.min_batch = min_batch
        self.max_batch = max_batch
        if backoff_cap < 1.0:
            raise ValueError("backoff cap must be >= 1")
        #: Ceiling on the exponential ack-deadline multiplier.
        self.backoff_cap = float(backoff_cap)
        #: Jitter stream, created on the *first timeout* only — clean
        #: runs never touch it, so adding backoff left goldens intact.
        self._backoff_rng = None
        #: Current batch size per peer — the protocol's link-quality
        #: adaptation state.
        self._batch: dict[int, int] = {}
        self._initial_batch = initial_batch
        self._xfer = node.id << 8
        self._ack_waiters: dict[tuple[int, int], Event] = {}
        self._inbound: dict[tuple[int, int], dict] = {}
        self._completed: OrderedDict[tuple[int, int], int] = OrderedDict()
        node.stack.ports.subscribe(port, self._on_packet,
                                   name=f"reliable-{node.id}")

    # -- sending ------------------------------------------------------------

    def batch_size(self, peer: int) -> int:
        """Current adaptive batch size toward ``peer``."""
        return self._batch.get(peer, self._initial_batch)

    def send(self, dest: int, payload: bytes):
        """Reliably deliver ``payload`` to ``dest`` (one hop away).

        A generator to run inside a process; returns True when every
        chunk was acknowledged and raises
        :class:`~repro.errors.ReliableTransferError` when the bounded
        retry budget runs out — a dead peer costs a typed exception
        within the budget, never an infinite wait.

        Retries back off: each attempt without progress doubles the ack
        deadline (capped at ``backoff_cap`` times the base) and adds up
        to 25% jitter so synchronised senders desynchronise.  The first
        attempt's deadline is exactly the historical one, and the jitter
        stream is only created after a timeout, so loss-free runs are
        bit-identical to the pre-backoff protocol.
        """
        if not payload:
            raise ValueError("refusing to send an empty message")
        chunks = [payload[i:i + CHUNK_BYTES]
                  for i in range(0, len(payload), CHUNK_BYTES)]
        if len(chunks) > MAX_CHUNKS:
            raise ValueError(
                f"message of {len(payload)} B exceeds "
                f"{MAX_CHUNKS * CHUNK_BYTES} B transfer limit"
            )
        node = self.node
        self._xfer = (self._xfer + 1) & 0xFFFF
        xfer = self._xfer
        total = len(chunks)
        pending = set(range(total))
        attempts = 0
        stalls = 0  # consecutive attempts without progress
        last_deadline = 0.0
        deadlines: list[float] = []
        while pending:
            if attempts >= self.max_attempts:
                node.monitor.count("reliable.aborts")
                raise ReliableTransferError(
                    dest=dest, attempts=attempts, pending=len(pending),
                    total=total, backoff_delays=tuple(deadlines),
                )
            attempts += 1
            batch = sorted(pending)[: self.batch_size(dest)]
            for offset, index in enumerate(batch):
                flags = _FLAG_ACK_REQUEST if offset == len(batch) - 1 else 0
                data = struct.pack(
                    _DATA_FMT, MsgType.RELIABLE_DATA, xfer, index, total,
                    flags,
                ) + chunks[index]
                # seq carries the transfer id: retries of one message
                # share a lifecycle trace, distinct messages don't.
                packet = Packet(port=self.port, origin=node.id, dest=dest,
                                payload=data, seq=xfer)
                node.stack.send(packet, dest, kind="control")
                node.monitor.count("reliable.data_sent")
            waiter = Event(node.env)
            self._ack_waiters[(dest, xfer)] = waiter
            deadline = self.ack_timeout + 0.003 * len(batch)
            if stalls:
                deadline *= min(2.0 ** stalls, self.backoff_cap)
                deadline *= 1.0 + 0.25 * float(self._jitter_rng().random())
                # Batch shrinkage and capped jitter could otherwise dip
                # below an earlier deadline; the clamp guarantees a
                # stall run's deadlines are monotone non-decreasing.
                if deadline < last_deadline:
                    deadline = last_deadline
            last_deadline = deadline
            deadlines.append(deadline)
            outcome = yield node.env.any_of(
                [waiter, node.env.timeout(deadline, value="timeout")]
            )
            self._ack_waiters.pop((dest, xfer), None)
            values = list(outcome.values())
            if values == ["timeout"]:
                node.monitor.count("reliable.ack_timeouts")
                self._shrink(dest)
                stalls += 1
                continue
            bitmap = values[0]
            before = len(pending)
            pending = {
                i for i in range(total) if not (bitmap >> i) & 1
            }
            if any(i in pending for i in batch):
                self._shrink(dest)
            else:
                self._grow(dest)
            if len(pending) < before:
                attempts = 0  # progress resets the retry budget
                stalls = 0
                last_deadline = 0.0
            else:
                stalls += 1
        return True

    def _jitter_rng(self):
        """The backoff-jitter stream (dedicated; created lazily)."""
        rng = self._backoff_rng
        if rng is None:
            rng = self._backoff_rng = self.node.rng.stream(
                f"reliable.backoff.{self.node.id}"
            )
        return rng

    def broadcast(self, payload: bytes) -> bool:
        """One-hop *unacknowledged* broadcast of a single-chunk message.

        This is how the interpreter addresses a group of nodes at once
        ("commands are translated into broadcasted messages that are
        received by the runtime controller"): the request itself is
        fire-and-forget, and reliability comes from each node's unicast
        reply (sent after its random backoff).
        """
        if not payload:
            raise ValueError("refusing to broadcast an empty message")
        if len(payload) > CHUNK_BYTES:
            raise ValueError(
                f"broadcast message of {len(payload)} B exceeds one "
                f"chunk ({CHUNK_BYTES} B)"
            )
        node = self.node
        self._xfer = (self._xfer + 1) & 0xFFFF
        data = struct.pack(
            _DATA_FMT, MsgType.RELIABLE_DATA, self._xfer, 0, 1, 0
        ) + payload
        from repro.net.packet import ANY_NODE
        packet = Packet(port=self.port, origin=node.id, dest=ANY_NODE,
                        payload=data, seq=self._xfer)
        node.monitor.count("reliable.broadcasts")
        return node.stack.broadcast(packet, kind="control")

    def _shrink(self, peer: int) -> None:
        self._batch[peer] = max(self.min_batch, self.batch_size(peer) // 2)

    def _grow(self, peer: int) -> None:
        self._batch[peer] = min(self.max_batch, self.batch_size(peer) + 1)

    # -- receiving -----------------------------------------------------------------

    def _on_packet(self, packet: Packet, arrival: FrameArrival | None) -> None:
        payload = packet.payload
        if not payload:
            return
        msg_type = payload[0]
        try:
            if msg_type == MsgType.RELIABLE_DATA:
                self._on_data(packet)
            elif msg_type == MsgType.RELIABLE_ACK:
                self._on_ack(packet)
            else:
                self.node.monitor.count("reliable.unknown_messages")
        except (HeaderError, struct.error):
            self.node.monitor.count("reliable.malformed")

    def _on_data(self, packet: Packet) -> None:
        node = self.node
        header = packet.payload[:_DATA_HEADER]
        if len(header) < _DATA_HEADER:
            raise HeaderError("short reliable data header")
        _type, xfer, index, total, flags = struct.unpack(_DATA_FMT, header)
        if total == 0 or index >= total or total > MAX_CHUNKS:
            raise HeaderError("impossible chunk indices")
        chunk = packet.payload[_DATA_HEADER:]
        key = (packet.origin, xfer)
        node.monitor.count("reliable.data_received")

        if key in self._completed:
            # Straggler retransmission of a finished transfer: re-ack so
            # the sender stops, but do not redeliver.
            if flags & _FLAG_ACK_REQUEST:
                self._send_ack(packet.origin, xfer, (1 << total) - 1)
            return

        state = self._inbound.setdefault(key, {"total": total, "chunks": {}})
        state["chunks"][index] = chunk
        if flags & _FLAG_ACK_REQUEST:
            bitmap = 0
            for i in state["chunks"]:
                bitmap |= 1 << i
            self._send_ack(packet.origin, xfer, bitmap)
        if len(state["chunks"]) == state["total"]:
            message = b"".join(
                state["chunks"][i] for i in range(state["total"])
            )
            del self._inbound[key]
            self._completed[key] = state["total"]
            while len(self._completed) > _COMPLETED_MEMORY:
                self._completed.popitem(last=False)
            node.monitor.count("reliable.messages_delivered")
            self.on_message(packet.origin, message)

    def _send_ack(self, dest: int, xfer: int, bitmap: int) -> None:
        data = struct.pack(_ACK_FMT, MsgType.RELIABLE_ACK, xfer, bitmap)
        packet = Packet(port=self.port, origin=self.node.id, dest=dest,
                        payload=data, seq=xfer)
        self.node.stack.send(packet, dest, kind="control")
        self.node.monitor.count("reliable.acks_sent")

    def _on_ack(self, packet: Packet) -> None:
        _type, xfer, bitmap = struct.unpack(
            _ACK_FMT, packet.payload[:struct.calcsize(_ACK_FMT)]
        )
        waiter = self._ack_waiters.pop((packet.origin, xfer), None)
        if waiter is None:
            self.node.monitor.count("reliable.orphan_acks")
            return
        waiter.succeed(bitmap)
