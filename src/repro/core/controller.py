"""The runtime controller: LiteView's node-side half (§IV-B).

One controller runs on every managed node.  It listens on the control
port behind the reliable protocol, executes management requests —
reading kernel state through system calls, mutating the neighbor table's
blacklist flags, retuning the radio — and starts command processes for
``ping``/``traceroute`` runs, passing their parameters through the
kernel's parameter buffer exactly the way §IV-C.4 describes.

Replies are delayed by a random backoff ("these nodes wait for random
backoff delays before sending responses, so that their packets will not
collide") within the interpreter's fixed response window.
"""

from __future__ import annotations

import struct
import typing as _t

from repro.core.commands.ping import PingService
from repro.core.commands.traceroute import TracerouteService
from repro.core.reliable import ReliableEndpoint
from repro.core.results import NeighborView
from repro.core.serialize import (
    encode_neighbor_views,
    encode_ping_result,
    encode_trace_result,
)
from repro.core.wire import MsgType
from repro.errors import ReliableTransferError, ReproError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["RuntimeController", "install_controller", "Status"]

#: Modelled controller image footprint (flash, RAM) — same order as the
#: paper's command images.
CONTROLLER_FOOTPRINT = (1960, 180)


class Status:
    """Reply status codes."""

    OK = 0
    ERROR = 1
    UNSUPPORTED = 2


def install_controller(node: "SensorNode", **kwargs: object
                       ) -> "RuntimeController":
    """Install the runtime controller on a node (flash/RAM accounted)."""
    node.memory.install("liteview-controller", *CONTROLLER_FOOTPRINT)
    controller = RuntimeController(node, **kwargs)  # type: ignore[arg-type]
    node.services["controller"] = controller
    return controller


class RuntimeController:
    """Node-side request executor."""

    def __init__(self, node: "SensorNode", *,
                 response_backoff: float = 0.3):
        self.node = node
        #: Replies wait a uniform draw from [0, response_backoff] before
        #: transmitting — the group-response collision avoidance.
        self.response_backoff = float(response_backoff)
        self._rng = node.rng.stream(f"controller.{node.id}")
        self.endpoint = ReliableEndpoint(node, self._on_request)
        #: Action a handler deferred until after its reply is delivered
        #: (e.g. a channel switch, which would otherwise strand the
        #: reply on the old channel).
        self._post_reply: _t.Callable[[], None] | None = None

    # -- request intake ------------------------------------------------------

    def _on_request(self, origin: int, message: bytes) -> None:
        if len(message) < 3:
            self.node.monitor.count("controller.malformed_requests")
            return
        self.node.monitor.count("controller.requests")
        self.node.threads.spawn(
            "controller-request", self._serve(origin, message)
        )

    def _serve(self, origin: int, message: bytes):
        msg_type = message[0]
        request_id = struct.unpack_from(">H", message, 1)[0]
        body = message[3:]
        if self.response_backoff > 0:
            yield self.node.env.timeout(
                float(self._rng.uniform(0.0, self.response_backoff))
            )
        try:
            handler = self._handlers().get(msg_type)
            if handler is None:
                status, reply = Status.UNSUPPORTED, b""
            else:
                outcome = handler(body)
                # Handlers returning generators need to be driven (the
                # run-command handlers wait for the command to finish).
                if hasattr(outcome, "send"):
                    outcome = yield from outcome
                status, reply = outcome
        except (ReproError, ValueError) as exc:
            # Command-level failures (bad parameters, kernel refusals)
            # become error replies; they must never kill the controller.
            self.node.monitor.count("controller.errors")
            status, reply = Status.ERROR, str(exc).encode()[:48]
        payload = (bytes([MsgType.REPLY])
                   + struct.pack(">HB", request_id, status) + reply)
        try:
            yield from self.endpoint.send(origin, payload)
        except ReliableTransferError:
            # The workstation fell out of reach mid-exchange; an
            # unanswered reply must not crash the controller thread.
            self.node.monitor.count("controller.reply_failures")
        if self._post_reply is not None:
            action, self._post_reply = self._post_reply, None
            action()

    def _handlers(self) -> dict:
        return {
            MsgType.GET_RADIO: self._get_radio,
            MsgType.SET_POWER: self._set_power,
            MsgType.SET_CHANNEL: self._set_channel,
            MsgType.NEIGHBOR_LIST: self._neighbor_list,
            MsgType.BLACKLIST_ADD: self._blacklist_add,
            MsgType.BLACKLIST_REMOVE: self._blacklist_remove,
            MsgType.SET_BEACON: self._set_beacon,
            MsgType.RUN_PING: self._run_ping,
            MsgType.RUN_TRACEROUTE: self._run_traceroute,
            MsgType.SCAN_CHANNELS: self._run_scan,
            MsgType.GET_EVENTS: self._get_events,
            MsgType.GET_THREADS: self._get_threads,
            MsgType.KILL_THREAD: self._kill_thread,
        }

    def _get_threads(self, body: bytes) -> tuple[int, bytes]:
        """List live kernel threads — the process-level visibility the
        paper contrasts against variable-poking management tools."""
        threads = self.node.syscalls.invoke("thread_table")
        reply = bytearray([len(threads)])  # type: ignore[arg-type]
        for info in threads:  # type: ignore[union-attr]
            name = info.name.encode("utf-8")[:20]
            reply += struct.pack(
                ">HI", info.tid,
                min(0xFFFFFFFF, int(info.started_at * 1000)),
            )
            reply.append(len(name))
            reply += name
        return Status.OK, bytes(reply)

    def _kill_thread(self, body: bytes) -> tuple[int, bytes]:
        """Kill a command thread by tid (process-level control)."""
        if len(body) < 2:
            return Status.ERROR, b"missing tid"
        tid = struct.unpack(">H", body[:2])[0]
        killed = self.node.syscalls.invoke("thread_kill", tid)
        if not killed:
            return Status.ERROR, b"no such thread"
        return Status.OK, b""

    def _get_events(self, body: bytes) -> tuple[int, bytes]:
        """Dump the kernel event log (most recent first on the wire)."""
        limit = body[0] if body else 16
        events = self.node.syscalls.invoke("event_log", limit)
        reply = bytearray([len(events)])  # type: ignore[arg-type]
        for event in events:  # type: ignore[union-attr]
            code = event.code.encode("utf-8")[:24]
            detail = event.detail.encode("utf-8")[:32]
            reply += struct.pack(">I", min(0xFFFFFFFF,
                                           int(event.time * 1000)))
            reply.append(len(code))
            reply += code
            reply.append(len(detail))
            reply += detail
        return Status.OK, bytes(reply)

    # -- radio configuration ---------------------------------------------------

    def _radio_state(self) -> bytes:
        state = self.node.syscalls.invoke("radio_get")
        return bytes([state["power_level"], state["channel"]])

    def _get_radio(self, body: bytes) -> tuple[int, bytes]:
        return Status.OK, self._radio_state()

    def _set_power(self, body: bytes) -> tuple[int, bytes]:
        if len(body) < 1:
            return Status.ERROR, b"missing power level"
        self.node.syscalls.invoke("radio_set_power", body[0])
        return Status.OK, self._radio_state()

    def _set_channel(self, body: bytes) -> tuple[int, bytes]:
        """Switch channels — but only after the reply has gone out.

        Retuning immediately would transmit the acknowledgement on the
        *new* channel, stranding the workstation on the old one; the
        deferred switch is how real reconfiguration tools avoid cutting
        the branch they sit on.
        """
        if len(body) < 1:
            return Status.ERROR, b"missing channel"
        channel = body[0]
        # Validate eagerly so errors still reach the user ...
        from repro.radio.cc2420 import MAX_CHANNEL, MIN_CHANNEL
        if not MIN_CHANNEL <= channel <= MAX_CHANNEL:
            return Status.ERROR, (
                f"channel {channel} outside "
                f"{MIN_CHANNEL}..{MAX_CHANNEL}".encode()
            )
        # ... but apply only once the reply is on its way.
        self._post_reply = lambda: self.node.syscalls.invoke(
            "radio_set_channel", channel)
        return Status.OK, bytes([self.node.radio.power_level, channel])

    # -- neighborhood management ------------------------------------------------

    def _neighbor_views(self) -> list[NeighborView]:
        entries = self.node.syscalls.invoke("neighbor_table")
        return [
            NeighborView(
                node_id=e.node_id, lqi=int(round(e.lqi)),
                rssi=int(round(e.rssi)),
                prr_percent=int(round(100 * e.prr_estimate)),
                enabled=e.enabled,
            )
            for e in entries
        ]

    def _neighbor_list(self, body: bytes) -> tuple[int, bytes]:
        return Status.OK, encode_neighbor_views(self._neighbor_views())

    def _blacklist_add(self, body: bytes) -> tuple[int, bytes]:
        if len(body) < 2:
            return Status.ERROR, b"missing neighbor id"
        self.node.neighbors.blacklist(struct.unpack(">H", body[:2])[0])
        return Status.OK, b""

    def _blacklist_remove(self, body: bytes) -> tuple[int, bytes]:
        if len(body) < 2:
            return Status.ERROR, b"missing neighbor id"
        self.node.neighbors.unblacklist(struct.unpack(">H", body[:2])[0])
        return Status.OK, b""

    def _set_beacon(self, body: bytes) -> tuple[int, bytes]:
        if len(body) < 4:
            return Status.ERROR, b"missing interval"
        interval_ms = struct.unpack(">I", body[:4])[0]
        self.node.neighbors.set_beacon_interval(interval_ms / 1000.0)
        return Status.OK, b""

    # -- command execution ----------------------------------------------------------

    def _run_ping(self, body: bytes):
        """Start the ping command as a process and ship its result back.

        The parameters travel through the kernel parameter buffer — the
        mechanism the paper added because "the LiteOS operating system
        does not provide a mechanism for passing parameters to processes
        by default".
        """
        if len(body) < 5:
            return Status.ERROR, b"bad ping parameters"
        target, rounds, length, port = struct.unpack(">HBBB", body[:5])
        service = self.node.services.get("ping")
        if not isinstance(service, PingService):
            return Status.ERROR, b"ping not installed"
        self.node.params.stage(
            f"{target} round={rounds} length={length} port={port}"
        )
        argv = self.node.syscalls.invoke("get_parameters").split(" ")
        kv = dict(item.split("=", 1) for item in argv[1:])
        thread = self.node.threads.spawn("ping", service.ping(
            int(argv[0]), rounds=int(kv["round"]),
            length=int(kv["length"]), routing_port=int(kv["port"]),
        ))
        result = yield thread.process
        return Status.OK, encode_ping_result(result)

    def _run_scan(self, body: bytes):
        """Run a channel scan and report per-channel peak RSSI."""
        from repro.core.commands.scan import channel_scan
        from repro.core.wire import pack_signed

        if len(body) < 5:
            return Status.ERROR, b"bad scan parameters"
        first, count, samples, dwell_ms = struct.unpack(">BBBH", body[:5])
        thread = self.node.threads.spawn("channel-scan", channel_scan(
            self.node, first=first, count=count, samples=samples,
            dwell=dwell_ms / 1000.0,
        ))
        results = yield thread.process
        reply = bytearray([len(results)])
        for channel, reading in results:
            reply.append(channel)
            reply.append(pack_signed(reading))
        return Status.OK, bytes(reply)

    def _run_traceroute(self, body: bytes):
        """Start the traceroute command and ship its result back."""
        if len(body) < 5:
            return Status.ERROR, b"bad traceroute parameters"
        target, rounds, length, port = struct.unpack(">HBBB", body[:5])
        service = self.node.services.get("traceroute")
        if not isinstance(service, TracerouteService):
            return Status.ERROR, b"traceroute not installed"
        self.node.params.stage(
            f"{target} round={rounds} length={length} port={port}"
        )
        argv = self.node.syscalls.invoke("get_parameters").split(" ")
        kv = dict(item.split("=", 1) for item in argv[1:])
        thread = self.node.threads.spawn("traceroute", service.traceroute(
            int(argv[0]), rounds=int(kv["round"]),
            length=int(kv["length"]), routing_port=int(kv["port"]),
        ))
        result = yield thread.process
        return Status.OK, encode_trace_result(result)
