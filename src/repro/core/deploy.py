"""One-call LiteView deployment over a testbed.

Wires the full toolkit the way the paper's testbed ran it: a routing
protocol on every node, the ping and traceroute command images installed,
a runtime controller per node, and one workstation with a command
interpreter.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field

from repro.core.commands.ping import PingService, install_ping
from repro.core.commands.traceroute import TracerouteService, install_traceroute
from repro.core.controller import RuntimeController, install_controller
from repro.core.interpreter import CommandInterpreter
from repro.core.workstation import Workstation
from repro.kernel.testbed import Testbed
from repro.net.routing.geographic import GeographicForwarding

__all__ = ["LiteViewDeployment", "deploy_liteview", "GC_FREEZE_THRESHOLD"]

#: Node count at which a deployment's static world is moved out of the
#: cyclic garbage collector's view (``gc.freeze``).  A 1k-node world is
#: millions of long-lived objects that every generation-2 collection
#: would otherwise re-scan for cycles it never finds; freezing them
#: keeps collections proportional to the *transient* per-event garbage.
#: Reference counting still reclaims frozen objects normally.
GC_FREEZE_THRESHOLD = 256


@dataclass
class LiteViewDeployment:
    """Handles to everything :func:`deploy_liteview` set up."""

    testbed: Testbed
    workstation: Workstation
    interpreter: CommandInterpreter
    ping_services: dict[int, PingService] = field(default_factory=dict)
    traceroute_services: dict[int, TracerouteService] = field(
        default_factory=dict)
    controllers: dict[int, RuntimeController] = field(default_factory=dict)

    def login(self, ref: "int | str") -> None:
        """Walk to a node and make it the shell's current context."""
        self.workstation.attach_near(ref)
        self.interpreter.execute(f"cd {ref}")

    def run(self, line: str) -> str:
        """Execute one shell line (convenience passthrough)."""
        return self.interpreter.execute(line)


def deploy_liteview(
    testbed: Testbed, *,
    protocol: type | None = GeographicForwarding,
    protocol_kwargs: dict | None = None,
    workstation_position: tuple[float, float] = (0.0, -10.0),
    controller_kwargs: dict | None = None,
    warm_up: float = 0.0,
    gc_freeze: bool | None = None,
) -> LiteViewDeployment:
    """Install LiteView on every node of ``testbed``.

    ``protocol=None`` skips routing installation (the caller already
    installed protocols, e.g. for the protocol-comparison experiment).
    ``warm_up`` optionally runs the simulation so beacons settle before
    the first command.

    ``gc_freeze`` freezes the fully wired world out of the cyclic
    garbage collector (``None`` = automatically for testbeds of
    ``GC_FREEZE_THRESHOLD`` or more nodes).  Any previously frozen
    world is thawed first, so repeated large deployments in one
    process do not pin dead testbeds in memory.
    """
    nodes = testbed.nodes()
    ping_services: dict[int, PingService] = {}
    traceroute_services: dict[int, TracerouteService] = {}
    controllers: dict[int, RuntimeController] = {}
    for node in nodes:
        if protocol is not None:
            node.install_protocol(protocol, **(protocol_kwargs or {}))
        ping_services[node.id] = install_ping(node)
        traceroute_services[node.id] = install_traceroute(node)
        controllers[node.id] = install_controller(
            node, **(controller_kwargs or {})
        )
    workstation = Workstation(testbed, position=workstation_position)
    deployment = LiteViewDeployment(
        testbed=testbed,
        workstation=workstation,
        interpreter=CommandInterpreter(workstation),
        ping_services=ping_services,
        traceroute_services=traceroute_services,
        controllers=controllers,
    )
    if gc_freeze is None:
        gc_freeze = len(nodes) >= GC_FREEZE_THRESHOLD
    if gc_freeze:
        # Thaw whatever an earlier deployment froze (a dropped world
        # must stay collectable), sweep dead cycles once, then move
        # everything alive — dominated by this deployment's static
        # object graph — out of future collections.
        gc.unfreeze()
        gc.collect()
        gc.freeze()
    if warm_up > 0:
        testbed.warm_up(warm_up)
    return deployment
