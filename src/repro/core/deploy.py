"""One-call LiteView deployment over a testbed.

Wires the full toolkit the way the paper's testbed ran it: a routing
protocol on every node, the ping and traceroute command images installed,
a runtime controller per node, and one workstation with a command
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.commands.ping import PingService, install_ping
from repro.core.commands.traceroute import TracerouteService, install_traceroute
from repro.core.controller import RuntimeController, install_controller
from repro.core.interpreter import CommandInterpreter
from repro.core.workstation import Workstation
from repro.kernel.testbed import Testbed
from repro.net.routing.geographic import GeographicForwarding

__all__ = ["LiteViewDeployment", "deploy_liteview"]


@dataclass
class LiteViewDeployment:
    """Handles to everything :func:`deploy_liteview` set up."""

    testbed: Testbed
    workstation: Workstation
    interpreter: CommandInterpreter
    ping_services: dict[int, PingService] = field(default_factory=dict)
    traceroute_services: dict[int, TracerouteService] = field(
        default_factory=dict)
    controllers: dict[int, RuntimeController] = field(default_factory=dict)

    def login(self, ref: "int | str") -> None:
        """Walk to a node and make it the shell's current context."""
        self.workstation.attach_near(ref)
        self.interpreter.execute(f"cd {ref}")

    def run(self, line: str) -> str:
        """Execute one shell line (convenience passthrough)."""
        return self.interpreter.execute(line)


def deploy_liteview(
    testbed: Testbed, *,
    protocol: type | None = GeographicForwarding,
    protocol_kwargs: dict | None = None,
    workstation_position: tuple[float, float] = (0.0, -10.0),
    controller_kwargs: dict | None = None,
    warm_up: float = 0.0,
) -> LiteViewDeployment:
    """Install LiteView on every node of ``testbed``.

    ``protocol=None`` skips routing installation (the caller already
    installed protocols, e.g. for the protocol-comparison experiment).
    ``warm_up`` optionally runs the simulation so beacons settle before
    the first command.
    """
    nodes = testbed.nodes()
    ping_services: dict[int, PingService] = {}
    traceroute_services: dict[int, TracerouteService] = {}
    controllers: dict[int, RuntimeController] = {}
    for node in nodes:
        if protocol is not None:
            node.install_protocol(protocol, **(protocol_kwargs or {}))
        ping_services[node.id] = install_ping(node)
        traceroute_services[node.id] = install_traceroute(node)
        controllers[node.id] = install_controller(
            node, **(controller_kwargs or {})
        )
    workstation = Workstation(testbed, position=workstation_position)
    deployment = LiteViewDeployment(
        testbed=testbed,
        workstation=workstation,
        interpreter=CommandInterpreter(workstation),
        ping_services=ping_services,
        traceroute_services=traceroute_services,
        controllers=controllers,
    )
    if warm_up > 0:
        testbed.warm_up(warm_up)
    return deployment
