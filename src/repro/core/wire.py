"""Wire formats for LiteView's command, probe and report messages.

Everything LiteView sends over the air is a compact struct-packed byte
string whose first byte is a message type — the paper's command
interpreter "translates each user command into a sequence of radio
messages.  Each message header corresponds to one unique type, while the
command parameters are embedded into message bodies."

Message families:

* ``0x01..0x02`` — ping probe / reply (Figure 3)
* ``0x11..0x13`` — traceroute probe / reply / report (Figure 4)
* ``0x20..0x2F`` — management requests (radio config, neighborhood, runs)
* ``0x40..0x41`` — reliable-transfer data / ack (§IV-B)
* ``0x60``      — management reply envelope
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import HeaderError

__all__ = [
    "MsgType",
    "PingProbe",
    "PingReply",
    "TraceProbe",
    "TraceReply",
    "TraceReport",
    "pack_signed",
    "unpack_signed",
]


class MsgType:
    """First-byte message-type registry."""

    PING_PROBE = 0x01
    PING_REPLY = 0x02

    TRACE_PROBE = 0x11
    TRACE_REPLY = 0x12
    TRACE_REPORT = 0x13

    GET_RADIO = 0x20
    SET_POWER = 0x21
    SET_CHANNEL = 0x22
    NEIGHBOR_LIST = 0x23
    BLACKLIST_ADD = 0x24
    BLACKLIST_REMOVE = 0x25
    SET_BEACON = 0x26
    RUN_PING = 0x27
    RUN_TRACEROUTE = 0x28
    SCAN_CHANNELS = 0x29
    GET_EVENTS = 0x2A
    GET_THREADS = 0x2B
    KILL_THREAD = 0x2C

    RELIABLE_DATA = 0x40
    RELIABLE_ACK = 0x41

    REPLY = 0x60


def pack_signed(value: int) -> int:
    """Clamp a signed value into one byte's two's-complement encoding."""
    value = max(-128, min(127, int(value)))
    return value & 0xFF


def unpack_signed(byte: int) -> int:
    """Decode a two's-complement byte."""
    return byte - 256 if byte >= 128 else byte


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise HeaderError(f"malformed message: {what}")


# ---------------------------------------------------------------------------
# Ping (Figure 3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PingProbe:
    """Probe: token matches replies to rounds; filler sets probe length.

    ``routing_port`` is 0 for a one-hop probe; otherwise it names the
    routing protocol the reply should travel back over (the probe itself
    arrived over it) — the mechanism behind the ping command's runtime
    ``port=`` parameter.
    """

    token: int
    length: int  # requested probe payload length (the `length=` parameter)
    routing_port: int = 0

    _FMT = ">BHBB"

    def to_bytes(self) -> bytes:
        header = struct.pack(self._FMT, MsgType.PING_PROBE,
                             self.token, self.length, self.routing_port)
        filler = max(0, self.length - len(header))
        return header + bytes(filler)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PingProbe":
        _require(len(data) >= struct.calcsize(cls._FMT), "short ping probe")
        _type, token, length, routing_port = struct.unpack_from(
            cls._FMT, data)
        _require(_type == MsgType.PING_PROBE, "wrong type for ping probe")
        return cls(token=token, length=length, routing_port=routing_port)


@dataclass(frozen=True)
class PingReply:
    """Reply: receiver-side observables of the probe, plus — for routed
    probes — the forward path's padded per-hop qualities."""

    token: int
    lqi: int
    rssi: int
    queue: int
    forward_hops: tuple[tuple[int, int], ...] = ()  # (lqi, rssi) per hop

    _FMT = ">BHBBBB"

    def to_bytes(self) -> bytes:
        out = bytearray(struct.pack(
            self._FMT, MsgType.PING_REPLY, self.token, self.lqi,
            pack_signed(self.rssi), min(255, self.queue),
            len(self.forward_hops),
        ))
        for lqi, rssi in self.forward_hops:
            out.append(lqi)
            out.append(pack_signed(rssi))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PingReply":
        base = struct.calcsize(cls._FMT)
        _require(len(data) >= base, "short ping reply")
        (_type, token, lqi, rssi_b, queue, nhops
         ) = struct.unpack_from(cls._FMT, data)
        _require(_type == MsgType.PING_REPLY, "wrong type for ping reply")
        _require(len(data) >= base + 2 * nhops, "truncated forward hops")
        hops = tuple(
            (data[base + 2 * i], unpack_signed(data[base + 2 * i + 1]))
            for i in range(nhops)
        )
        return cls(token=token, lqi=lqi, rssi=unpack_signed(rssi_b),
                   queue=queue, forward_hops=hops)


# ---------------------------------------------------------------------------
# Traceroute (Figure 4)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceProbe:
    """One-hop traceroute probe.

    Besides probing the link, the probe carries the session state the
    receiver needs to continue the traceroute (the paper's "initiate a
    new traceroute task" step): who started it, where it terminates,
    which routing protocol port reports travel on, and the hop index.
    """

    session: int
    origin: int
    final_dest: int
    hop_index: int
    routing_port: int
    length: int

    _FMT = ">BHHHBBB"

    def to_bytes(self) -> bytes:
        header = struct.pack(
            self._FMT, MsgType.TRACE_PROBE, self.session, self.origin,
            self.final_dest, self.hop_index, self.routing_port, self.length,
        )
        return header + bytes(max(0, self.length - len(header)))

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceProbe":
        _require(len(data) >= struct.calcsize(cls._FMT), "short trace probe")
        (_type, session, origin, final_dest, hop_index, routing_port, length
         ) = struct.unpack_from(cls._FMT, data)
        _require(_type == MsgType.TRACE_PROBE, "wrong type for trace probe")
        return cls(session=session, origin=origin, final_dest=final_dest,
                   hop_index=hop_index, routing_port=routing_port,
                   length=length)


@dataclass(frozen=True)
class TraceReply:
    """One-hop probe reply: the receiver's observables of the probe."""

    session: int
    lqi: int
    rssi: int
    queue: int

    _FMT = ">BHBBB"

    def to_bytes(self) -> bytes:
        return struct.pack(self._FMT, MsgType.TRACE_REPLY, self.session,
                           self.lqi, pack_signed(self.rssi),
                           min(255, self.queue))

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceReply":
        _require(len(data) >= struct.calcsize(cls._FMT), "short trace reply")
        _type, session, lqi, rssi_b, queue = struct.unpack_from(
            cls._FMT, data)
        _require(_type == MsgType.TRACE_REPLY, "wrong type for trace reply")
        return cls(session=session, lqi=lqi, rssi=unpack_signed(rssi_b),
                   queue=queue)


@dataclass(frozen=True)
class TraceReport:
    """Per-hop report routed back to the source: "this packet contains
    the details on the link quality information for only one hop"."""

    session: int
    probed_node: int       # the node this hop reached ("Reply from ...")
    hop_index: int
    rtt_us: int
    lqi_forward: int       # receiver-measured, on the probe
    lqi_backward: int      # prober-measured, on the reply
    rssi_forward: int
    rssi_backward: int
    queue_remote: int
    queue_local: int

    _FMT = ">BHHBIBBBBBB"

    def to_bytes(self) -> bytes:
        return struct.pack(
            self._FMT, MsgType.TRACE_REPORT, self.session, self.probed_node,
            self.hop_index, min(self.rtt_us, 0xFFFFFFFF),
            self.lqi_forward, self.lqi_backward,
            pack_signed(self.rssi_forward), pack_signed(self.rssi_backward),
            min(255, self.queue_remote), min(255, self.queue_local),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceReport":
        _require(len(data) >= struct.calcsize(cls._FMT), "short trace report")
        (_type, session, probed, hop_index, rtt_us, lqi_f, lqi_b,
         rssi_f, rssi_b, q_r, q_l) = struct.unpack_from(cls._FMT, data)
        _require(_type == MsgType.TRACE_REPORT, "wrong type for report")
        return cls(session=session, probed_node=probed, hop_index=hop_index,
                   rtt_us=rtt_us, lqi_forward=lqi_f, lqi_backward=lqi_b,
                   rssi_forward=unpack_signed(rssi_f),
                   rssi_backward=unpack_signed(rssi_b),
                   queue_remote=q_r, queue_local=q_l)
