"""Result objects for LiteView commands, with paper-style rendering.

Every interactive command returns a structured result; the shell renders
it in the format of the paper's sample sessions (§III-B.3/4) so a user of
the reproduction sees the same reports a LiteOS shell user saw::

    Pinging 192.168.0.2 with 1 packets with 32 bytes:
    RTT = 4.7 ms, LQI = 108/106, RSSI = -1/8, Queue = 0/0
    Power = 31, Channel = 17
    ...

Quality pairs follow the paper's ``forward/backward`` convention: the
first value is measured by the remote side on our outgoing packet, the
second by us on the returning packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LinkObservation",
    "PingRound",
    "PingResult",
    "TracerouteHop",
    "TracerouteResult",
    "NeighborView",
    "format_ms",
]


def format_ms(ms: float) -> str:
    """Milliseconds with one decimal, like the paper's RTT lines."""
    return f"{ms:.1f} ms"


@dataclass(frozen=True)
class LinkObservation:
    """A forward/backward pair of link observables for one exchange."""

    lqi_forward: int
    lqi_backward: int
    rssi_forward: int
    rssi_backward: int
    queue_remote: int
    queue_local: int

    def render(self) -> str:
        """``LQI = f/b, RSSI = f/b, Queue = r/l`` per the sample output."""
        return (
            f"LQI = {self.lqi_forward}/{self.lqi_backward}, "
            f"RSSI = {self.rssi_forward}/{self.rssi_backward}, "
            f"Queue = {self.queue_remote}/{self.queue_local}"
        )


@dataclass(frozen=True)
class PingRound:
    """One successful probe/reply exchange."""

    seq: int
    rtt_ms: float
    link: LinkObservation
    #: Per-hop (LQI, RSSI) pairs for routed probes: forward path then
    #: backward path, from the padding mechanism.
    forward_path: tuple[tuple[int, int], ...] = ()
    backward_path: tuple[tuple[int, int], ...] = ()


@dataclass
class PingResult:
    """Everything the ping command learned."""

    target_name: str
    target_id: int
    requested_rounds: int
    probe_length: int
    power_level: int
    channel: int
    rounds: list[PingRound] = field(default_factory=list)
    sent: int = 0

    @property
    def received(self) -> int:
        """Probes answered."""
        return len(self.rounds)

    @property
    def lost(self) -> int:
        """Probes that timed out."""
        return self.sent - self.received

    @property
    def loss_ratio(self) -> float:
        """Fraction of probes lost (0.0 when nothing was sent)."""
        return self.lost / self.sent if self.sent else 0.0

    @property
    def rtts_ms(self) -> list[float]:
        """All measured round-trip times."""
        return [r.rtt_ms for r in self.rounds]

    @property
    def mean_rtt_ms(self) -> float | None:
        """Mean RTT, or None if no reply arrived."""
        if not self.rounds:
            return None
        return sum(self.rtts_ms) / len(self.rounds)

    def render(self) -> str:
        """The paper's ping output format."""
        lines = [
            f"Pinging {self.target_name} with {self.requested_rounds} "
            f"packets with {self.probe_length} bytes:",
        ]
        for r in self.rounds:
            lines.append(f"RTT = {format_ms(r.rtt_ms)}, {r.link.render()}")
            for label, path in (("forward", r.forward_path),
                                ("backward", r.backward_path)):
                if path:
                    rendered = ", ".join(
                        f"{lqi}/{rssi}" for lqi, rssi in path
                    )
                    lines.append(f"  {label} path (LQI/RSSI): {rendered}")
        lines.append(f"Power = {self.power_level}, Channel = {self.channel}")
        lines.append("")
        lines.append("Ping statistics:")
        lines.append(f"Packets = {self.sent}")
        lines.append(f"Received = {self.received}")
        lines.append(f"Lost = {self.lost}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TracerouteHop:
    """One per-hop report, as printed ("Reply from 192.168.0.2 ...")."""

    hop_index: int
    probed_node_id: int
    probed_node_name: str
    rtt_ms: float
    link: LinkObservation
    #: When the source received this hop's report (simulated seconds since
    #: the command started) — the series Figure 5 plots.
    arrival_ms: float

    def render(self) -> str:
        return (
            f"Reply from {self.probed_node_name}\n"
            f"RTT = {format_ms(self.rtt_ms)}, {self.link.render()}"
        )


@dataclass
class TracerouteResult:
    """Everything one traceroute invocation learned."""

    target_name: str
    target_id: int
    requested_rounds: int
    probe_length: int
    protocol_name: str
    routing_port: int
    hops: list[TracerouteHop] = field(default_factory=list)
    sent: int = 0

    @property
    def reached_target(self) -> bool:
        """Did any report come back about the final destination?"""
        return any(h.probed_node_id == self.target_id for h in self.hops)

    @property
    def received(self) -> int:
        """Rounds that produced a report about the final destination."""
        return sum(1 for h in self.hops if h.probed_node_id == self.target_id)

    @property
    def lost(self) -> int:
        """Rounds whose final-destination report never arrived."""
        return self.sent - self.received

    @property
    def hop_count(self) -> int:
        """Deepest hop index any report covered."""
        return max((h.hop_index for h in self.hops), default=0)

    def arrival_series_ms(self) -> list[tuple[int, float]]:
        """(hop index, report arrival ms) pairs — Figure 5's data."""
        return sorted((h.hop_index, h.arrival_ms) for h in self.hops)

    def render(self) -> str:
        """The paper's traceroute output format."""
        lines = [
            f"Reaching {self.target_name} with {self.requested_rounds} "
            f"packets with {self.probe_length} bytes:",
            f"Name of protocol: {self.protocol_name}",
        ]
        for hop in sorted(self.hops, key=lambda h: h.hop_index):
            lines.append(hop.render())
        lines.append("")
        lines.append("Traceroute statistics:")
        lines.append(f"Packets = {self.sent}")
        lines.append(f"Received = {self.received}")
        lines.append(f"Lost = {self.lost}")
        return "\n".join(lines)


@dataclass(frozen=True)
class NeighborView:
    """One neighbor-table row as reported over the air."""

    node_id: int
    lqi: int
    rssi: int
    prr_percent: int
    enabled: bool

    def render(self, namespace_name: str | None = None) -> str:
        name = namespace_name or f"node-{self.node_id}"
        state = "enabled" if self.enabled else "BLACKLISTED"
        return (
            f"{name} (id {self.node_id}): LQI = {self.lqi}, "
            f"RSSI = {self.rssi}, PRR = {self.prr_percent}%, {state}"
        )
