"""The shared radio medium: who hears whom, and how well.

:class:`RadioMedium` is the single point through which every frame in the
simulated testbed flows.  For each transmission it:

1. draws the per-receiver received power from the propagation model
   (static directed shadowing gives stable, possibly asymmetric links);
2. tracks concurrent transmissions so interference and half-duplex
   conflicts produce collisions, and so CCA (carrier sense) works;
3. at end-of-frame, converts SINR to a reception probability via the
   802.15.4 link model and delivers the frame — intact, corrupted (the
   stack's CRC checker then discards it), or not at all;
4. stamps each delivery with the receiver-side observables LiteView
   collects: RSSI register reading and LQI; and
5. logs every transmission to the monitor (Figure 7 counts these).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import RadioError
from repro.radio.cc2420 import (
    CCA_THRESHOLD_DBM,
    NOISE_FLOOR_DBM,
    SENSITIVITY_DBM,
    RadioConfig,
)
from repro.radio.lqi import LqiModel
from repro.radio.modulation import packet_reception_ratio
from repro.radio.propagation import LogDistancePropagation
from repro.radio.rssi import RssiModel
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.monitor import Monitor, PacketRecord
from repro.sim.rng import RngRegistry
from repro.units import dbm_sum

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame

__all__ = ["FrameArrival", "Transceiver", "RadioMedium", "CAPTURE_THRESHOLD_DB"]

#: Minimum SINR for decoding *in the presence of an overlapping frame*.
#: The analytic PRR curve assumes Gaussian noise; a co-channel 802.15.4
#: frame is not Gaussian, and real correlators cannot separate two
#: overlapping signals of comparable strength.  A ~4 dB capture margin is
#: the standard fix (cf. the capture-effect literature for CC2420).
CAPTURE_THRESHOLD_DB = 4.0


@dataclass(frozen=True)
class FrameArrival:
    """A frame as seen by one receiver, with PHY observables attached."""

    frame: "Frame"
    payload: bytes          # possibly corrupted copy of frame.payload
    sender: int
    receiver: int
    channel: int
    rx_power_dbm: float
    sinr_db: float
    rssi: int               # RSSI register reading
    lqi: int                # LQI correlator value
    crc_ok: bool            # whether the payload survived intact
    time: float


class Transceiver:
    """One node's radio front end, attached to the shared medium."""

    def __init__(self, medium: "RadioMedium", node_id: int,
                 position: tuple[float, float], config: RadioConfig):
        self.medium = medium
        self.node_id = node_id
        self.position = (float(position[0]), float(position[1]))
        self.config = config
        #: Radio on/off; an off radio neither receives nor carrier-senses.
        self.enabled = True
        self._receive_handler: _t.Callable[[FrameArrival], None] | None = None
        self._transmitting_until = -1.0

    def set_receive_handler(
        self, handler: _t.Callable[[FrameArrival], None]
    ) -> None:
        """Install the MAC-layer delivery callback."""
        self._receive_handler = handler

    @property
    def is_transmitting(self) -> bool:
        """True while a frame of ours is on the air."""
        return self._transmitting_until > self.medium.env.now

    def deliver(self, arrival: FrameArrival) -> None:
        """Hand an arrival to the MAC (no-op if the radio is off)."""
        if self.enabled and self._receive_handler is not None:
            self._receive_handler(arrival)


@dataclass
class _ActiveTransmission:
    """Bookkeeping for one in-flight frame."""

    sender: int
    channel: int
    tx_power_dbm: float
    start: float
    end: float
    #: Received power at every same-channel transceiver, drawn at start.
    rx_powers: dict[int, float]
    #: Other transmissions whose airtime overlaps ours.
    overlapping: list["_ActiveTransmission"] = field(default_factory=list)


class RadioMedium:
    """The shared wireless channel for one simulated testbed."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        monitor: Monitor,
        propagation: LogDistancePropagation,
        *,
        corrupt_delivery_fraction: float = 0.3,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.tracer = env.tracer
        self.propagation = propagation
        self.rssi_model = RssiModel(rng)
        self.lqi_model = LqiModel(rng)
        self._loss_rng = rng.stream("medium.reception")
        self._corrupt_rng = rng.stream("medium.corruption")
        self._xcvrs: dict[int, Transceiver] = {}
        self._active: list[_ActiveTransmission] = []
        #: Fraction of failed receptions delivered as corrupted bytes (so
        #: the stack's CRC checker sees real work) rather than silence.
        self.corrupt_delivery_fraction = float(corrupt_delivery_fraction)

    # -- membership --------------------------------------------------------

    def attach(self, node_id: int, position: tuple[float, float],
               config: RadioConfig | None = None) -> Transceiver:
        """Register a node's radio at ``position``."""
        if node_id in self._xcvrs:
            raise RadioError(f"node {node_id} already attached to the medium")
        xcvr = Transceiver(self, node_id, position, config or RadioConfig())
        self._xcvrs[node_id] = xcvr
        return xcvr

    def transceiver(self, node_id: int) -> Transceiver:
        """Look up an attached transceiver by node id."""
        try:
            return self._xcvrs[node_id]
        except KeyError:
            raise RadioError(f"node {node_id} not attached") from None

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two attached nodes."""
        pa, pb = self._xcvrs[a].position, self._xcvrs[b].position
        return ((pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2) ** 0.5

    def node_ids(self) -> list[int]:
        """Sorted ids of all attached nodes."""
        return sorted(self._xcvrs)

    # -- carrier sense ---------------------------------------------------------

    def cca_busy(self, xcvr: Transceiver) -> bool:
        """Clear-channel assessment: is detectable energy on the air?"""
        now = self.env.now
        if xcvr._transmitting_until > now:
            return True
        self._prune(now)
        for tx in self._active:
            if tx.channel != xcvr.config.channel:
                continue
            power = tx.rx_powers.get(xcvr.node_id)
            if power is not None and power >= CCA_THRESHOLD_DBM:
                return True
        return False

    def ambient_power_dbm(self, xcvr: Transceiver) -> float:
        """Instantaneous RF energy at a node on its current channel.

        This is what the CC2420's RSSI register reports when no frame is
        being received: the noise floor plus whatever concurrent
        transmissions leak in.  The channel-scan utility samples it per
        channel to find quiet spectrum.
        """
        now = self.env.now
        self._prune(now)
        powers = []
        for tx in self._active:
            if tx.channel != xcvr.config.channel:
                continue
            if tx.sender == xcvr.node_id:
                continue
            power = tx.rx_powers.get(xcvr.node_id)
            if power is None:
                # The sampler hopped onto this channel after the frame
                # started; compute its leakage on the fly.
                power = self.propagation.mean_received_power_dbm(
                    tx.tx_power_dbm, tx.sender, xcvr.node_id,
                    self.distance(tx.sender, xcvr.node_id),
                )
            powers.append(power)
        return dbm_sum(NOISE_FLOOR_DBM, *powers)

    # -- transmission ------------------------------------------------------------

    def transmit(self, xcvr: Transceiver, frame: "Frame") -> Event:
        """Put ``frame`` on the air; the returned event fires at end-of-air.

        Reception outcomes for every candidate receiver are evaluated at
        end-of-frame so that interference from transmissions starting
        mid-frame is accounted for.
        """
        if not xcvr.enabled:
            raise RadioError(f"node {xcvr.node_id}: radio is off")
        now = self.env.now
        self._prune(now)
        channel = xcvr.config.channel
        tx_power = xcvr.config.tx_power_dbm
        airtime = frame.airtime

        # Draw received powers for every same-channel transceiver, in
        # sorted id order for determinism.
        rx_powers: dict[int, float] = {}
        for rid in sorted(self._xcvrs):
            if rid == xcvr.node_id:
                continue
            other = self._xcvrs[rid]
            if other.config.channel != channel:
                continue
            rx_powers[rid] = self.propagation.received_power_dbm(
                tx_power, xcvr.node_id, rid, self.distance(xcvr.node_id, rid)
            )

        tx = _ActiveTransmission(
            sender=xcvr.node_id, channel=channel, tx_power_dbm=tx_power,
            start=now, end=now + airtime, rx_powers=rx_powers,
        )
        tx.overlapping = list(self._active)
        for other_tx in self._active:
            other_tx.overlapping.append(tx)
        self._active.append(tx)
        xcvr._transmitting_until = tx.end

        done = self.env.timeout(airtime)
        done.add_callback(lambda _ev: self._complete(xcvr, frame, tx))
        return done

    # -- internals ---------------------------------------------------------------

    def _prune(self, now: float) -> None:
        self._active = [t for t in self._active if t.end > now]

    def _complete(self, sender: Transceiver, frame: "Frame",
                  tx: _ActiveTransmission) -> None:
        """End-of-frame: decide every receiver's outcome and deliver.

        When tracing is enabled, the outcome *at the frame's addressed
        destination* is recorded — including the drop reason when the
        frame dies in the air, which is the "where did my packet go"
        answer the lifecycle trace exists to give.  Broadcast frames
        record only actual receptions (a per-absent-listener drop event
        for every distant node would bury the timeline).
        """
        tracer = self.tracer
        trace_on = tracer.enabled
        delivered_to_dst = False
        any_delivered = False
        for rid in sorted(tx.rx_powers):
            is_dst = rid == frame.dst
            receiver = self._xcvrs[rid]
            if not receiver.enabled:
                if trace_on and is_dst:
                    tracer.emit("radio.drop", self.env.now, node=rid,
                                packet=frame.trace_id, reason="radio_off",
                                sender=tx.sender)
                continue
            rx_power = tx.rx_powers[rid]
            if rx_power < SENSITIVITY_DBM:
                if trace_on and is_dst:
                    tracer.emit("radio.drop", self.env.now, node=rid,
                                packet=frame.trace_id, reason="out_of_range",
                                sender=tx.sender,
                                rx_power_dbm=round(rx_power, 3))
                continue
            # Half-duplex: a node that transmitted during our airtime
            # cannot have received us.
            if any(o.sender == rid for o in tx.overlapping):
                self.monitor.count("medium.halfduplex_loss")
                if trace_on and is_dst:
                    tracer.emit("radio.drop", self.env.now, node=rid,
                                packet=frame.trace_id, reason="half_duplex",
                                sender=tx.sender)
                continue
            interference = [
                o.rx_powers[rid]
                for o in tx.overlapping
                if o.channel == tx.channel and rid in o.rx_powers
            ]
            noise_dbm = dbm_sum(NOISE_FLOOR_DBM, *interference)
            sinr = rx_power - noise_dbm
            captured = True
            if interference:
                self.monitor.count("medium.interfered_receptions")
                # Capture gates on the signal-to-*interference* ratio: a
                # correlator cannot separate two comparable overlapping
                # frames, but interference well below the signal (even if
                # it nudges the noise floor) is just extra noise, which
                # the PRR curve already accounts for via the SINR.
                sir = rx_power - dbm_sum(*interference)
                captured = sir >= CAPTURE_THRESHOLD_DB
            prr = packet_reception_ratio(sinr, frame.size_bytes)
            success = captured and self._loss_rng.random() < prr

            payload = frame.payload
            crc_ok = True
            if not success:
                if (self._corrupt_rng.random()
                        >= self.corrupt_delivery_fraction) or not payload:
                    self.monitor.count("medium.lost_frames")
                    if trace_on and is_dst:
                        tracer.emit(
                            "radio.drop", self.env.now, node=rid,
                            packet=frame.trace_id,
                            reason=("collision" if not captured
                                    else "channel_loss"),
                            sender=tx.sender, sinr_db=round(sinr, 3),
                        )
                    continue
                payload = self._corrupt(payload)
                crc_ok = False
                self.monitor.count("medium.corrupted_frames")

            # Draw the PHY observables exactly once: the trace path must
            # reuse them, not re-sample, or enabling tracing would shift
            # every later RNG draw and change the simulation.
            rssi = self.rssi_model.reading(rx_power)
            lqi = self.lqi_model.reading(sinr)
            self.monitor.observe("radio.lqi", lqi)
            if trace_on and (is_dst or frame.is_broadcast):
                tracer.emit(
                    "radio.rx", self.env.now, node=rid,
                    packet=frame.trace_id, sender=tx.sender,
                    crc_ok=crc_ok, rssi=rssi, lqi=lqi,
                    sinr_db=round(sinr, 3),
                )
            arrival = FrameArrival(
                frame=frame, payload=payload,
                sender=tx.sender, receiver=rid, channel=tx.channel,
                rx_power_dbm=rx_power, sinr_db=sinr,
                rssi=rssi, lqi=lqi,
                crc_ok=crc_ok, time=self.env.now,
            )
            receiver.deliver(arrival)
            if crc_ok:
                any_delivered = True
                if rid == frame.dst:
                    delivered_to_dst = True

        self.monitor.log_packet(PacketRecord(
            time=tx.start,
            sender=tx.sender,
            receiver=None if frame.is_broadcast else frame.dst,
            kind=frame.kind,
            port=getattr(frame, "port", None),
            size_bytes=frame.size_bytes,
            delivered=any_delivered if frame.is_broadcast else delivered_to_dst,
        ))
        self.monitor.count("medium.transmissions")

    def _corrupt(self, payload: bytes) -> bytes:
        """Flip a few random bits so the CRC checker has real work to do."""
        data = bytearray(payload)
        flips = max(1, int(self._corrupt_rng.integers(1, 4)))
        for _ in range(flips):
            idx = int(self._corrupt_rng.integers(0, len(data)))
            bit = int(self._corrupt_rng.integers(0, 8))
            data[idx] ^= 1 << bit
        return bytes(data)
