"""The shared radio medium: who hears whom, and how well.

:class:`RadioMedium` is the single point through which every frame in the
simulated testbed flows.  For each transmission it:

1. draws the per-receiver received power from the propagation model
   (static directed shadowing gives stable, possibly asymmetric links);
2. tracks concurrent transmissions so interference and half-duplex
   conflicts produce collisions, and so CCA (carrier sense) works;
3. at end-of-frame, converts SINR to a reception probability via the
   802.15.4 link model and delivers the frame — intact, corrupted (the
   stack's CRC checker then discards it), or not at all;
4. stamps each delivery with the receiver-side observables LiteView
   collects: RSSI register reading and LQI; and
5. logs every transmission to the monitor (Figure 7 counts these).

Hot-path design
---------------
Every transmission used to walk all attached transceivers and make a
per-receiver chain of scalar propagation and RNG calls; at 100 nodes that
is the whole simulation's wall clock, and a dense all-pairs distance
matrix put a hard O(N²) memory floor under larger fields.  The medium now
keeps

* a :class:`~repro.radio.spatial.SpatialGrid` over node positions, cell
  size = the conservative maximum radio range, maintained incrementally
  (attach inserts, a ``Transceiver.position`` assignment moves one
  bucket entry);
* a per-(sender, channel) *candidate index* — the id-sorted in-range
  receivers, found by one grid query — so per-transmission work is
  O(in-range contenders), not O(N), and no pairwise matrix exists at
  all (rows are materialized per sender, lazily);
* a per-(sender, channel) mean-loss row — deterministic path loss plus
  static shadowing — invalidated by the propagation model's shadowing
  epoch, so pinned links take effect;

Time-varying geometry
---------------------
Invalidation after a move is *per node*, not global.  A
``Transceiver.position`` assignment moves one grid bucket entry and
bumps the *neighborhood epoch* of exactly the nodes whose candidate
membership the move could have changed: those within the conservative
range bound of the old **or** the new position (two grid queries, so the
work is O(local density), independent of the total node count — the
contract ``benchmarks/bench_mobility.py`` holds).  A sender outside both
disks keeps its cached candidate index *and* its cached mean-loss row;
an affected sender rebuilds both on its next transmission.  A row
rebuild whose shadowing links were all drawn before consumes no RNG
(see :meth:`LogDistancePropagation.shadowing_row`), so per-node
invalidation cannot shift any stream — continuous mobility stays
byte-identical between the spatial and dense paths.  The
``medium.repositions`` counter and the ``medium.idx.rebuilds`` /
``medium.rows.rebuilt`` gauges (shell: ``stats medium.``) account for
the moves and the rebuild fallout they cause.

and draws fading, reception, RSSI, and LQI as *batched* RNG calls.  A
numpy Generator fills an array from the same bitstream as repeated scalar
draws, and the batches run in the same sorted-id order the scalar loops
used, so seeded runs stay bit-for-bit identical — the determinism tests
hold golden counters captured before this rewrite.

Pruning vs determinism
----------------------
The spatial bound must never change *what happens*, only skip work that
cannot matter.  The query radius is the distance at which deterministic
path loss alone consumes the whole link budget ``max attached tx power −
SENSITIVITY_DBM`` **plus** ``RANGE_MARGIN_SIGMAS`` standard deviations of
(shadowing + fading) **plus** any pinned negative loss adjustment
(:attr:`LogDistancePropagation.pinned_floor_db`).  A receiver outside
that radius would fail the sensitivity check with overwhelming
probability, drawing nothing from the reception/corruption/PHY streams —
exactly as the dense path classifies it ``out of range``.  Candidate
sets are enumerated sorted by id, so every stream that is consumed is
consumed in the historical order.  ``use_spatial_index = False`` restores
the dense enumeration, and the parity tests in
``tests/integration/test_spatial_parity.py`` hold the two byte-identical.
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from repro.errors import RadioError
from repro.radio.cc2420 import (
    CCA_THRESHOLD_DBM,
    NOISE_FLOOR_DBM,
    SENSITIVITY_DBM,
    RadioConfig,
)
from repro.radio.lqi import LqiModel
from repro.radio.modulation import packet_reception_ratio
from repro.radio.propagation import LogDistancePropagation
from repro.radio.rssi import RssiModel
from repro.radio.spatial import SpatialGrid
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.monitor import Monitor, PacketRecord
from repro.sim.rng import RngRegistry
from repro.units import dbm_sum

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame

__all__ = ["FrameArrival", "Transceiver", "RadioMedium",
           "CAPTURE_THRESHOLD_DB", "RANGE_MARGIN_SIGMAS"]

#: Minimum SINR for decoding *in the presence of an overlapping frame*.
#: The analytic PRR curve assumes Gaussian noise; a co-channel 802.15.4
#: frame is not Gaussian, and real correlators cannot separate two
#: overlapping signals of comparable strength.  A ~4 dB capture margin is
#: the standard fix (cf. the capture-effect literature for CC2420).
CAPTURE_THRESHOLD_DB = 4.0

#: How many standard deviations of (shadowing + fading) the spatial-index
#: range bound adds to the deterministic link budget.  8σ puts the
#: probability that a pruned receiver would actually have passed the
#: sensitivity check around 1e-15 per draw — zero in any feasible run —
#: while keeping the bound tight enough that a 1k-node district field
#: prunes >90% of receivers per transmission.
RANGE_MARGIN_SIGMAS = 8.0

#: ``dbm_sum(NOISE_FLOOR_DBM)`` with no interferers round-trips to exactly
#: the noise floor; precomputing it keeps the no-interference SINR
#: identical to the historical per-receiver call while skipping it.
_NOISE_ONLY_DBM = dbm_sum(NOISE_FLOOR_DBM)

# Per-receiver outcome codes used inside RadioMedium._complete.
_SKIP, _OFF, _RANGE, _HD, _LOST, _CORRUPT, _OK = range(7)


@_t.final
class FrameArrival:
    """A frame as seen by one receiver, with PHY observables attached."""

    __slots__ = (
        "frame", "payload", "sender", "receiver", "channel",
        "rx_power_dbm", "sinr_db", "rssi", "lqi", "crc_ok", "time",
    )

    def __init__(self, frame: "Frame", payload: bytes, sender: int,
                 receiver: int, channel: int, rx_power_dbm: float,
                 sinr_db: float, rssi: int, lqi: int, crc_ok: bool,
                 time: float) -> None:
        self.frame = frame
        self.payload = payload          # possibly corrupted copy
        self.sender = sender
        self.receiver = receiver
        self.channel = channel
        self.rx_power_dbm = rx_power_dbm
        self.sinr_db = sinr_db
        self.rssi = rssi                # RSSI register reading
        self.lqi = lqi                  # LQI correlator value
        self.crc_ok = crc_ok            # whether the payload survived
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameArrival(sender={self.sender}, receiver={self.receiver}, "
            f"channel={self.channel}, rssi={self.rssi}, lqi={self.lqi}, "
            f"crc_ok={self.crc_ok}, time={self.time})"
        )


class Transceiver:
    """One node's radio front end, attached to the shared medium."""

    __slots__ = ("medium", "node_id", "_position", "config", "enabled",
                 "_receive_handler", "_transmitting_until")

    def __init__(self, medium: "RadioMedium", node_id: int,
                 position: tuple[float, float], config: RadioConfig):
        self.medium = medium
        self.node_id = node_id
        self._position = (float(position[0]), float(position[1]))
        self.config = config
        #: Radio on/off; an off radio neither receives nor carrier-senses.
        self.enabled = True
        self._receive_handler: _t.Callable[[FrameArrival], None] | None = None
        self._transmitting_until = -1.0

    @property
    def position(self) -> tuple[float, float]:
        return self._position

    @position.setter
    def position(self, value: tuple[float, float]) -> None:
        self._position = (float(value[0]), float(value[1]))
        # Moving a node changes only the pairwise distances through it;
        # the medium updates the affected spatial-index buckets and
        # invalidates just the neighborhoods of the old and new position.
        self.medium._reposition(self.node_id, self._position)

    def set_receive_handler(
        self, handler: _t.Callable[[FrameArrival], None]
    ) -> None:
        """Install the MAC-layer delivery callback."""
        self._receive_handler = handler

    @property
    def is_transmitting(self) -> bool:
        """True while a frame of ours is on the air."""
        return self._transmitting_until > self.medium.env.now

    def deliver(self, arrival: FrameArrival) -> None:
        """Hand an arrival to the MAC (no-op if the radio is off)."""
        if self.enabled and self._receive_handler is not None:
            self._receive_handler(arrival)


class _CandidateIndex:
    """Snapshot of one sender's receiver candidates on one channel.

    ``ids`` is sorted ascending (the medium's draw-order contract),
    includes the sender, and — with the spatial index on — only nodes
    within the conservative maximum radio range of the sender.  With the
    index off it is the full channel membership (the dense historical
    behavior).  ``positions`` carries the members' coordinates so loss
    rows materialize without any global matrix.
    """

    __slots__ = ("channel", "token", "ids", "id_arr", "offset_of",
                 "xcvrs", "positions")

    def __init__(self, channel: int, token: tuple, ids: list[int],
                 xcvrs: list[Transceiver], positions: np.ndarray) -> None:
        self.channel = channel
        self.token = token
        self.ids = ids
        self.id_arr = np.array(ids, dtype=np.int64)
        self.offset_of = {nid: off for off, nid in enumerate(ids)}
        self.xcvrs = xcvrs
        self.positions = positions


class _ActiveTransmission:
    """Bookkeeping for one in-flight frame."""

    __slots__ = ("sender", "channel", "tx_power_dbm", "start", "end",
                 "index", "rx_list", "overlapping", "overlap_senders",
                 "pos", "gate_m")

    def __init__(self, sender: int, channel: int, tx_power_dbm: float,
                 start: float, end: float, index: _CandidateIndex,
                 rx_list: list[float], pos: tuple[float, float],
                 gate_m: float) -> None:
        self.sender = sender
        self.channel = channel
        self.tx_power_dbm = tx_power_dbm
        self.start = start
        self.end = end
        #: Sender position and candidate radius at start-of-frame.  Two
        #: transmissions farther apart than the sum of their radii have
        #: disjoint candidate disks, so neither can interfere with (or
        #: half-duplex-mute) any receiver of the other — the overlap
        #: bookkeeping skips such pairs entirely.  Dense-index mediums
        #: use an infinite radius (candidate sets are unbounded).
        self.pos = pos
        self.gate_m = gate_m
        #: Candidate membership and received powers, snapshotted at
        #: start-of-frame (a receiver hopping away mid-frame still gets
        #: the frame; one hopping in never does — as before).  Kept as a
        #: plain list: the hot paths index it scalar-wise, and numpy
        #: round-trips on ~40-element arrays dominate small-frame cost.
        self.index = index
        self.rx_list = rx_list
        #: Same-channel transmissions whose airtime overlaps ours
        #: (interference), and the senders of *any* overlapping
        #: transmission (half-duplex: a transmitting radio cannot hear).
        self.overlapping: list["_ActiveTransmission"] = []
        self.overlap_senders: set[int] = set()

    def power_at(self, rid: int) -> float | None:
        """Received power drawn for ``rid``, or None if it was not a
        candidate at start-of-frame (or is the sender itself)."""
        if rid == self.sender:
            return None
        off = self.index.offset_of.get(rid)
        if off is None:
            return None
        return self.rx_list[off]


class RadioMedium:
    """The shared wireless channel for one simulated testbed."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        monitor: Monitor,
        propagation: LogDistancePropagation,
        *,
        corrupt_delivery_fraction: float = 0.3,
        use_spatial_index: bool = True,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.tracer = env.tracer
        self.propagation = propagation
        self.rssi_model = RssiModel(rng)
        self.lqi_model = LqiModel(rng)
        self._loss_rng = rng.stream("medium.reception")
        self._corrupt_rng = rng.stream("medium.corruption")
        self._xcvrs: dict[int, Transceiver] = {}
        self._active: list[_ActiveTransmission] = []
        #: Fault-injection hooks (:class:`repro.faults.FaultInjector`),
        #: attached by ``install_faults``.  ``None`` — the default — keeps
        #: every hot-path check to one attribute read.
        self.faults: "_t.Any | None" = None
        #: Fraction of failed receptions delivered as corrupted bytes (so
        #: the stack's CRC checker sees real work) rather than silence.
        self.corrupt_delivery_fraction = float(corrupt_delivery_fraction)
        #: ``False`` restores the dense all-members candidate enumeration
        #: (one shared index per channel); the parity tests flip this.
        self.use_spatial_index = bool(use_spatial_index)
        #: Cumulative receiver-candidate accounting: how many same-channel
        #: receivers were actually evaluated vs skipped by the spatial
        #: bound.  Mirrored into the ``medium.candidates.considered`` /
        #: ``medium.candidates.pruned`` gauges (gauges, not counters, so
        #: golden counter fixtures are untouched by pruning bookkeeping).
        self.candidates_considered = 0
        self.candidates_pruned = 0
        self._gauge_considered = monitor.registry.gauge(
            "medium.candidates.considered")
        self._gauge_pruned = monitor.registry.gauge(
            "medium.candidates.pruned")
        #: Per-move invalidation fallout: how many candidate indexes and
        #: mean-loss rows were actually rebuilt.  Gauges, not counters,
        #: so golden counter fixtures are untouched by the bookkeeping
        #: (the same choice the candidate gauges made).
        self._gauge_idx_rebuilds = monitor.registry.gauge(
            "medium.idx.rebuilds")
        self._gauge_rows_rebuilt = monitor.registry.gauge(
            "medium.rows.rebuilt")
        # Lazily bound handles for the per-receiver counters (created on
        # first increment so untouched counters stay out of snapshots).
        self._c_halfduplex = None
        self._c_interfered = None
        self._c_lost = None
        self._c_corrupt = None
        self._c_tx = None
        self._c_repositions = None
        self._h_lqi = None
        # -- cached vectorized state (see module docstring) -------------
        #: Global geometry epoch: bumped on attach and on any move the
        #: grid cannot localize (grid not built yet).  The *localized*
        #: path bumps only the per-node entries in ``_nbr_epoch``.
        self._geom_epoch = 0
        #: Per-node neighborhood epoch: bumped when a move could have
        #: changed this node's in-range candidate membership (the mover
        #: entered or left the node's conservative range disk).  Absent
        #: means 0 — nodes nothing ever moved near pay one dict miss.
        self._nbr_epoch: dict[int, int] = {}
        #: Total repositions ever applied (the dense index token: with
        #: the spatial index off, the shared per-channel index snapshots
        #: every member's position, so any move invalidates it).
        self._moves = 0
        self._chan_version = 0       # bumped on any channel change
        self._power_version = 0      # bumped on any PA-level change
        self._member_epoch = 0       # bumped on attach only
        self._roster_epoch = -1      # _member_epoch the roster reflects
        self._ids: list[int] = []
        self._grid: SpatialGrid | None = None
        self._range_m = 0.0
        self._range_version = 0
        self._range_key: tuple | None = None
        self._power_key: tuple | None = None
        self._max_tx_dbm = 0.0
        self._idx_cache: dict[_t.Any, _CandidateIndex] = {}
        self._pop_cache: dict[int, tuple[tuple[int, int], int]] = {}
        self._row_cache: dict[
            tuple[int, int],
            tuple[_CandidateIndex, int, np.ndarray, np.ndarray],
        ] = {}

    # -- membership --------------------------------------------------------

    def attach(self, node_id: int, position: tuple[float, float],
               config: RadioConfig | None = None) -> Transceiver:
        """Register a node's radio at ``position``."""
        if node_id in self._xcvrs:
            raise RadioError(f"node {node_id} already attached to the medium")
        xcvr = Transceiver(self, node_id, position, config or RadioConfig())
        self._adopt(xcvr)
        return xcvr

    def _adopt(self, xcvr: Transceiver) -> None:
        """Register an existing transceiver (the facade's partition path
        hands pre-built transceivers to child mediums)."""
        node_id = xcvr.node_id
        if node_id in self._xcvrs:
            raise RadioError(f"node {node_id} already attached to the medium")
        self._xcvrs[node_id] = xcvr
        xcvr.config._listener = self._invalidate_channels
        xcvr.config._power_listener = self._invalidate_power
        self._member_epoch += 1
        self._geom_epoch += 1
        if self._grid is not None:
            # Keep the grid warm: an attach touches one bucket.
            self._grid.insert(node_id, xcvr._position)

    def transceiver(self, node_id: int) -> Transceiver:
        """Look up an attached transceiver by node id."""
        try:
            return self._xcvrs[node_id]
        except KeyError:
            raise RadioError(f"node {node_id} not attached") from None

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two attached nodes."""
        pa = self._xcvrs[a]._position
        pb = self._xcvrs[b]._position
        dx = pa[0] - pb[0]
        dy = pa[1] - pb[1]
        return math.sqrt(dx * dx + dy * dy)

    def node_ids(self) -> list[int]:
        """Sorted ids of all attached nodes."""
        return sorted(self._xcvrs)

    # -- cache maintenance -------------------------------------------------

    def _invalidate_topology(self) -> None:
        """Full topology invalidation (membership or positions changed in
        a way we could not track incrementally)."""
        self._geom_epoch += 1
        self._moves += 1
        self._grid = None

    def _reposition(self, node_id: int, position: tuple[float, float]) -> None:
        """A node moved: update its spatial-index bucket and invalidate
        only the neighborhoods the move could have changed.

        The candidate membership of a sender ``S`` changes only if the
        mover crossed ``S``'s conservative range disk — equivalently, if
        ``S`` sits within the range bound of the mover's old *or* new
        position (range adjacency is symmetric).  Two grid queries find
        exactly those senders; everyone else keeps their cached index
        and mean-loss row.  Without a warm grid (nothing has transmitted
        yet, or a range change just dropped it) there is no cheap
        neighborhood test, so the move falls back to the global epoch —
        correct, and free, because no cache is warm in that state.
        """
        self._moves += 1
        c = self._c_repositions
        if c is None:
            c = self._c_repositions = self.monitor.counter_obj(
                "medium.repositions")
        c.value += 1
        grid = self._grid
        if grid is None or node_id not in grid or self._range_m <= 0.0:
            self._geom_epoch += 1
            return
        old = grid.position(node_id)
        grid.move(node_id, position)
        nbr = self._nbr_epoch
        radius = self._range_m
        affected = grid.within(old, radius)
        for nid in affected:
            nbr[nid] = nbr.get(nid, 0) + 1
        seen = set(affected)
        for nid in grid.within(position, radius):
            if nid not in seen:
                nbr[nid] = nbr.get(nid, 0) + 1

    def _invalidate_channels(self) -> None:
        self._chan_version += 1

    def _invalidate_power(self) -> None:
        self._power_version += 1

    @property
    def max_range_m(self) -> float:
        """The conservative maximum radio range (the spatial-index query
        radius): beyond it no attached radio can detect any frame."""
        self._ensure_range()
        return self._range_m

    def _ensure_range(self) -> None:
        """Recompute the range bound if power levels or the propagation
        model's pinned floor changed (lazy shadowing draws do not — the
        statistical margin covers them)."""
        pkey = (self._member_epoch, self._power_version)
        if pkey != self._power_key:
            self._power_key = pkey
            self._max_tx_dbm = max(
                (x.config._tx_power_dbm for x in self._xcvrs.values()),
                default=0.0,
            )
        prop = self.propagation
        rkey = (self._max_tx_dbm, prop.pinned_floor_db,
                prop.shadowing_sigma_db, prop.fading_sigma_db)
        if rkey != self._range_key:
            self._range_key = rkey
            budget = (
                self._max_tx_dbm - SENSITIVITY_DBM
                + RANGE_MARGIN_SIGMAS * (prop.shadowing_sigma_db
                                         + prop.fading_sigma_db)
                - min(0.0, prop.pinned_floor_db)
            )
            new_range = prop.range_for_budget_m(budget)
            if new_range != self._range_m:
                self._range_m = new_range
                self._range_version += 1
                self._grid = None  # cell size is stale

    def _ensure_roster(self) -> None:
        if self._roster_epoch != self._member_epoch:
            self._ids = sorted(self._xcvrs)
            self._roster_epoch = self._member_epoch

    def _ensure_grid(self) -> SpatialGrid:
        grid = self._grid
        if grid is None:
            grid = SpatialGrid(self._range_m)
            for nid, xcvr in self._xcvrs.items():
                grid.insert(nid, xcvr._position)
            self._grid = grid
        return grid

    def _cand_index(self, sender_id: int, channel: int) -> _CandidateIndex:
        """The receiver-candidate snapshot for one sender on one channel."""
        self._ensure_range()
        spatial = self.use_spatial_index
        if spatial:
            # Per-node invalidation: the token moves only when *this*
            # sender's neighborhood epoch does (a node crossed its range
            # disk), never on an unrelated move across the field.
            token = (self._geom_epoch, self._nbr_epoch.get(sender_id, 0),
                     self._chan_version, self._range_version, True)
            key: _t.Any = (sender_id, channel)
        else:
            # Dense: the index is sender-independent, share it per
            # channel — but it snapshots every member's position, so any
            # move anywhere (``_moves``) invalidates it.
            token = (self._geom_epoch, self._moves,
                     self._chan_version, -1, False)
            key = channel
        idx = self._idx_cache.get(key)
        if idx is not None and idx.token == token:
            return idx
        xcvrs_by_id = self._xcvrs
        if spatial:
            grid = self._ensure_grid()
            near = grid.within(xcvrs_by_id[sender_id]._position,
                               self._range_m)
            members = [nid for nid in near
                       if xcvrs_by_id[nid].config.channel == channel]
        else:
            self._ensure_roster()
            members = [nid for nid in self._ids
                       if xcvrs_by_id[nid].config.channel == channel]
        xcvrs = [xcvrs_by_id[nid] for nid in members]
        if members:
            positions = np.array([x._position for x in xcvrs], dtype=float)
        else:
            positions = np.zeros((0, 2))
        idx = _CandidateIndex(channel, token, members, xcvrs, positions)
        self._idx_cache[key] = idx
        self._gauge_idx_rebuilds.value += 1
        return idx

    def _channel_population(self, channel: int) -> int:
        """How many attached radios sit on ``channel`` right now (the
        denominator of the pruning ratio)."""
        token = (self._member_epoch, self._chan_version)
        cached = self._pop_cache.get(channel)
        if cached is not None and cached[0] == token:
            return cached[1]
        n = sum(1 for x in self._xcvrs.values()
                if x.config.channel == channel)
        self._pop_cache[channel] = (token, n)
        return n

    def _mean_loss_row(
        self, src: int, idx: _CandidateIndex
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic loss + static shadowing from ``src`` to every
        other candidate, plus those candidates' offsets in ``idx``.

        Cached per (sender, channel); the shadowing epoch in the key means
        a pinned or newly drawn link anywhere rebuilds the row (a rebuild
        with no missing links consumes no RNG, so caching cannot shift the
        stream).  Distances materialize from the index's own positions —
        one small vector per sender, never an all-pairs matrix.
        """
        prop = self.propagation
        cached = self._row_cache.get((src, idx.channel))
        if (cached is not None and cached[0] is idx
                and cached[1] == prop.shadowing_epoch):
            return cached[2], cached[3]
        src_off = idx.offset_of[src]
        sub_offsets = np.delete(np.arange(len(idx.ids), dtype=np.intp),
                                src_off)
        sub_ids = np.delete(idx.id_arr, src_off)
        deltas = idx.positions[sub_offsets] - idx.positions[src_off]
        dists = np.sqrt((deltas ** 2).sum(axis=-1))
        # Same association order as the scalar path: (det + shadow),
        # fading added later by the caller.
        mean = (prop.deterministic_loss_db(dists)
                + prop.shadowing_row(src, sub_ids))
        self._row_cache[(src, idx.channel)] = (
            idx, prop.shadowing_epoch, mean, sub_offsets
        )
        self._gauge_rows_rebuilt.value += 1
        return mean, sub_offsets

    # -- carrier sense ---------------------------------------------------------

    def cca_busy(self, xcvr: Transceiver) -> bool:
        """Clear-channel assessment: is detectable energy on the air?"""
        now = self.env.now
        if xcvr._transmitting_until > now:
            return True
        self._prune(now)
        rid = xcvr.node_id
        channel = xcvr.config.channel
        faults = self.faults
        if (faults is not None
                and NOISE_FLOOR_DBM + faults.noise_offset_dbm(channel)
                >= CCA_THRESHOLD_DBM):
            # An injected interference burst raises the energy-detect
            # reading above the CCA threshold: the channel reads busy
            # even with no frame on the air (congestion as CSMA sees it).
            return True
        for tx in self._active:
            if tx.channel != channel:
                continue
            power = tx.power_at(rid)
            if power is not None and power >= CCA_THRESHOLD_DBM:
                return True
        return False

    def ambient_power_dbm(self, xcvr: Transceiver) -> float:
        """Instantaneous RF energy at a node on its current channel.

        This is what the CC2420's RSSI register reports when no frame is
        being received: the noise floor plus whatever concurrent
        transmissions leak in.  The channel-scan utility samples it per
        channel to find quiet spectrum.
        """
        now = self.env.now
        self._prune(now)
        rid = xcvr.node_id
        channel = xcvr.config.channel
        powers = []
        for tx in self._active:
            if tx.channel != channel or tx.sender == rid:
                continue
            power = tx.power_at(rid)
            if power is None:
                # The sampler was not a candidate at start-of-frame.  If
                # the sender is beyond the spatial bound, its leakage sits
                # ≥ the stochastic margin below the sensitivity floor —
                # inaudible, and skipping it keeps the shadowing stream
                # untouched.  Otherwise the sampler hopped onto this
                # channel after the frame started; compute its leakage on
                # the fly, exactly as the dense path always has.
                if (self.use_spatial_index
                        and self.distance(tx.sender, rid) > self.max_range_m):
                    continue
                power = self.propagation.mean_received_power_dbm(
                    tx.tx_power_dbm, tx.sender, rid,
                    self.distance(tx.sender, rid),
                )
            powers.append(power)
        floor = NOISE_FLOOR_DBM
        faults = self.faults
        if faults is not None:
            floor += faults.noise_offset_dbm(channel)
        return dbm_sum(floor, *powers)

    # -- transmission ------------------------------------------------------------

    def transmit(self, xcvr: Transceiver, frame: "Frame") -> Event:
        """Put ``frame`` on the air; the returned event fires at end-of-air.

        Reception outcomes for every candidate receiver are evaluated at
        end-of-frame so that interference from transmissions starting
        mid-frame is accounted for.
        """
        if not xcvr.enabled:
            raise RadioError(f"node {xcvr.node_id}: radio is off")
        now = self.env.now
        self._prune(now)
        sender_id = xcvr.node_id
        channel = xcvr.config.channel
        tx_power = xcvr.config._tx_power_dbm
        airtime = frame.airtime

        # Received power at every in-range same-channel transceiver, one
        # vector op per stochastic term, draws in sorted-id order.
        idx = self._cand_index(sender_id, channel)
        mean, sub_offsets = self._mean_loss_row(sender_id, idx)
        count = len(sub_offsets)
        pruned = self._channel_population(channel) - 1 - count
        self.candidates_considered += count
        self.candidates_pruned += pruned
        # Incremented, not assigned: partitioned runs share one gauge
        # across several child mediums, each with its own totals.
        self._gauge_considered.value += count
        self._gauge_pruned.value += pruned
        prop = self.propagation
        if count and prop.fading_sigma_db > 0:
            loss = mean + prop.fading_row(count)
        else:
            loss = mean
        # sub_offsets is always arange-minus-sender, so inserting the
        # sender's -inf at its own offset rebuilds the full id-ordered
        # row without a numpy scatter (values bit-identical).
        rx_list: list[float] = (tx_power - loss).tolist() if count else []
        rx_list.insert(idx.offset_of[sender_id], float("-inf"))

        gate_m = self.max_range_m if self.use_spatial_index else math.inf
        tx = _ActiveTransmission(
            sender_id, channel, tx_power, now, now + airtime, idx, rx_list,
            xcvr._position, gate_m
        )
        sx, sy = tx.pos
        for other in self._active:
            # Disjoint candidate disks: no receiver of either frame can
            # see the other, so the cross-links would never be consulted.
            lim = gate_m + other.gate_m
            dx = sx - other.pos[0]
            dy = sy - other.pos[1]
            if dx * dx + dy * dy > lim * lim:
                continue
            other.overlap_senders.add(sender_id)
            tx.overlap_senders.add(other.sender)
            if other.channel == channel:
                other.overlapping.append(tx)
                tx.overlapping.append(other)
        self._active.append(tx)
        xcvr._transmitting_until = tx.end

        done = self.env.timeout(airtime)
        done.add_callback(lambda _ev: self._complete(xcvr, frame, tx))
        return done

    # -- internals ---------------------------------------------------------------

    def _prune(self, now: float) -> None:
        active = self._active
        for tx in active:
            if tx.end <= now:
                break
        else:
            return
        keep = []
        for tx in active:
            if tx.end > now:
                keep.append(tx)
            elif tx.end < now:
                # Its completion callback has run; drop the cross-links
                # so finished transmissions don't keep their overlap
                # peers (and transitively the whole busy period) alive.
                tx.overlapping.clear()
                tx.overlap_senders.clear()
        self._active = keep

    def _complete(self, sender: Transceiver, frame: "Frame",
                  tx: _ActiveTransmission) -> None:
        """End-of-frame: decide every receiver's outcome and deliver.

        When tracing is enabled, the outcome *at the frame's addressed
        destination* is recorded — including the drop reason when the
        frame dies in the air, which is the "where did my packet go"
        answer the lifecycle trace exists to give.  Broadcast frames
        record only actual receptions (a per-absent-listener drop event
        for every distant node would bury the timeline).

        The walk over receivers is split into RNG-ordered passes so every
        stream is consumed in the same sorted-id order as the historical
        scalar loop, while the draws themselves are batched:

        1. classify each receiver (off / out of range / half-duplex /
           candidate) and compute SINR + capture — no RNG;
        2. one batched reception draw over the captured candidates;
        3. scalar corruption draws for the failures (interleaved
           random()/integers() calls cannot batch);
        4. batched RSSI and LQI draws over the deliveries;
        5. emit counters, trace events, and deliveries in id order.
        """
        idx = tx.index
        ids = idx.ids
        xcvrs = idx.xcvrs
        rx_list = tx.rx_list
        member_count = len(ids)
        sender_id = tx.sender
        overlapping = tx.overlapping
        overlap_senders = tx.overlap_senders
        frame_bytes = frame.size_bytes

        # Fault-injection overlay: an interference burst raises this
        # channel's noise floor for the whole frame; a packet_corrupt
        # window flips bits in otherwise-successful deliveries.  Both
        # draw nothing from the medium's own streams, so an inert
        # injector (or none) leaves the run bit-for-bit unchanged.
        faults = self.faults
        noise_floor = NOISE_FLOOR_DBM
        noise_only = _NOISE_ONLY_DBM
        fault_corrupt_on = False
        if faults is not None:
            extra_noise = faults.noise_offset_dbm(tx.channel)
            if extra_noise:
                noise_floor = NOISE_FLOOR_DBM + extra_noise
                noise_only = dbm_sum(noise_floor)
            fault_corrupt_on = faults.corrupt_active

        # Pass 1: classification (no RNG).  One fused walk: the
        # sensitivity test runs inline (``rx < threshold`` is the exact
        # complement of the historical ``rx >= threshold`` — received
        # powers are never NaN) and zip replaces four list indexings per
        # candidate; this loop runs once per member per transmission.
        outcome = [_SKIP] * member_count
        cand_offs: list[int] = []
        interfered = [False] * member_count
        was_captured = [False] * member_count
        sinr_of = [0.0] * member_count
        off = -1
        for rid, rx_xcvr, rx_power in zip(ids, xcvrs, rx_list):
            off += 1
            if rid == sender_id:
                continue
            if not rx_xcvr.enabled:
                outcome[off] = _OFF
                continue
            if rx_power < SENSITIVITY_DBM:
                outcome[off] = _RANGE
                continue
            # Half-duplex: a node that transmitted during our airtime
            # cannot have received us.
            if overlap_senders and rid in overlap_senders:
                outcome[off] = _HD
                continue
            captured = True
            if overlapping:
                interference = [
                    p for o in overlapping
                    if (p := o.power_at(rid)) is not None
                ]
                if interference:
                    interfered[off] = True
                    sinr = rx_power - dbm_sum(noise_floor, *interference)
                    # Capture gates on the signal-to-*interference* ratio:
                    # a correlator cannot separate two comparable
                    # overlapping frames, but interference well below the
                    # signal is just extra noise, which the PRR curve
                    # already accounts for via the SINR.
                    sir = rx_power - dbm_sum(*interference)
                    captured = sir >= CAPTURE_THRESHOLD_DB
                else:
                    sinr = rx_power - noise_only
            else:
                sinr = rx_power - noise_only
            sinr_of[off] = sinr
            was_captured[off] = captured
            cand_offs.append(off)

        # Pass 2: one reception draw per *captured* candidate, id order
        # (the scalar loop short-circuited the draw for uncaptured ones).
        success = [False] * member_count
        captured_offs = [off for off in cand_offs if was_captured[off]]
        if captured_offs:
            prr = packet_reception_ratio(
                np.array([sinr_of[off] for off in captured_offs]),
                frame_bytes,
            )
            draws = self._loss_rng.random(size=len(captured_offs))
            for off, ok in zip(captured_offs, (draws < prr).tolist()):
                success[off] = ok

        # Pass 3: corruption decisions for the failures, id order.  These
        # stay scalar: each corrupted delivery interleaves a uniform with
        # a variable number of integer draws on the same stream.
        payload0 = frame.payload
        fraction = self.corrupt_delivery_fraction
        corrupt_rng = self._corrupt_rng
        payload_of: dict[int, bytes] = {}
        deliver_offs: list[int] = []
        for off in cand_offs:
            if success[off]:
                # Fault-injected corruption converts a clean reception
                # into a CRC-failing delivery; its draws come from the
                # injector's dedicated stream, and the medium's own
                # corruption stream is consulted exactly as often as
                # without the fault (only for failed receptions).
                if (fault_corrupt_on and payload0
                        and faults.corrupt_roll(ids[off])):
                    outcome[off] = _CORRUPT
                    payload_of[off] = faults.corrupt_payload(payload0)
                else:
                    outcome[off] = _OK
                deliver_offs.append(off)
            elif (corrupt_rng.random() >= fraction) or not payload0:
                outcome[off] = _LOST
            else:
                outcome[off] = _CORRUPT
                payload_of[off] = self._corrupt(payload0)
                deliver_offs.append(off)

        # Pass 4: PHY observables for every delivery, one batched draw
        # per stream, id order.  Drawn exactly once so the trace path can
        # reuse them — enabling tracing must not shift the streams.
        rssi_of: list[int] = []
        lqi_of: list[int] = []
        if deliver_offs:
            rssi_of = self.rssi_model.readings(
                np.array([rx_list[off] for off in deliver_offs])
            )
            lqi_of = self.lqi_model.readings(
                np.array([sinr_of[off] for off in deliver_offs])
            )

        # Pass 5: counters, trace events, deliveries — id order, exactly
        # the per-receiver sequence the scalar loop produced.
        env_now = self.env.now
        tracer = self.tracer
        trace_on = tracer.enabled
        monitor = self.monitor
        dst = frame.dst
        is_broadcast = frame.is_broadcast
        delivered_to_dst = False
        any_delivered = False
        delivery_pos = 0
        for off in range(member_count):
            code = outcome[off]
            if code == _SKIP:
                continue
            rid = ids[off]
            is_dst = rid == dst
            if code == _OFF:
                if trace_on and is_dst:
                    tracer.emit("radio.drop", env_now, node=rid,
                                packet=frame.trace_id, reason="radio_off",
                                sender=sender_id)
                continue
            if code == _RANGE:
                if trace_on and is_dst:
                    tracer.emit("radio.drop", env_now, node=rid,
                                packet=frame.trace_id, reason="out_of_range",
                                sender=sender_id,
                                rx_power_dbm=round(rx_list[off], 3))
                continue
            if code == _HD:
                c = self._c_halfduplex
                if c is None:
                    c = self._c_halfduplex = monitor.counter_obj(
                        "medium.halfduplex_loss")
                c.value += 1
                if trace_on and is_dst:
                    tracer.emit("radio.drop", env_now, node=rid,
                                packet=frame.trace_id, reason="half_duplex",
                                sender=sender_id)
                continue
            if interfered[off]:
                c = self._c_interfered
                if c is None:
                    c = self._c_interfered = monitor.counter_obj(
                        "medium.interfered_receptions")
                c.value += 1
            if code == _LOST:
                c = self._c_lost
                if c is None:
                    c = self._c_lost = monitor.counter_obj(
                        "medium.lost_frames")
                c.value += 1
                if trace_on and is_dst:
                    tracer.emit(
                        "radio.drop", env_now, node=rid,
                        packet=frame.trace_id,
                        reason=("channel_loss" if was_captured[off]
                                else "collision"),
                        sender=sender_id, sinr_db=round(sinr_of[off], 3),
                    )
                continue
            if code == _CORRUPT:
                c = self._c_corrupt
                if c is None:
                    c = self._c_corrupt = monitor.counter_obj(
                        "medium.corrupted_frames")
                c.value += 1
                payload = payload_of[off]
                crc_ok = False
            else:
                payload = payload0
                crc_ok = True
            rssi = rssi_of[delivery_pos]
            lqi = lqi_of[delivery_pos]
            delivery_pos += 1
            h = self._h_lqi
            if h is None:
                h = self._h_lqi = monitor.histogram_obj("radio.lqi")
            h.observe(lqi)
            if trace_on and (is_dst or is_broadcast):
                tracer.emit(
                    "radio.rx", env_now, node=rid,
                    packet=frame.trace_id, sender=sender_id,
                    crc_ok=crc_ok, rssi=rssi, lqi=lqi,
                    sinr_db=round(sinr_of[off], 3),
                )
            arrival = FrameArrival(
                frame=frame, payload=payload,
                sender=sender_id, receiver=rid, channel=tx.channel,
                rx_power_dbm=rx_list[off], sinr_db=sinr_of[off],
                rssi=rssi, lqi=lqi,
                crc_ok=crc_ok, time=env_now,
            )
            xcvrs[off].deliver(arrival)
            if crc_ok:
                any_delivered = True
                if is_dst:
                    delivered_to_dst = True

        # An addressed destination the spatial bound excluded never
        # appears in the loop above; its lifecycle trace still owes the
        # "where did my packet go" answer.  No RNG: the estimate is
        # deterministic loss only (the dense path's drawn value would
        # differ by at most the stochastic terms, both irrelevant this
        # far below sensitivity).
        if (trace_on and not is_broadcast and dst is not None
                and dst != sender_id and dst not in idx.offset_of):
            dxcvr = self._xcvrs.get(dst)
            if dxcvr is not None and dxcvr.config.channel == tx.channel:
                if not dxcvr.enabled:
                    tracer.emit("radio.drop", env_now, node=dst,
                                packet=frame.trace_id, reason="radio_off",
                                sender=sender_id)
                else:
                    est = tx.tx_power_dbm - self.propagation.deterministic_loss_db(
                        self.distance(sender_id, dst))
                    tracer.emit("radio.drop", env_now, node=dst,
                                packet=frame.trace_id, reason="out_of_range",
                                sender=sender_id,
                                rx_power_dbm=round(est, 3))

        monitor.log_packet(PacketRecord(
            time=tx.start,
            sender=sender_id,
            receiver=None if is_broadcast else dst,
            kind=frame.kind,
            port=frame.port,
            size_bytes=frame_bytes,
            delivered=any_delivered if is_broadcast else delivered_to_dst,
        ))
        c = self._c_tx
        if c is None:
            c = self._c_tx = monitor.counter_obj("medium.transmissions")
        c.value += 1
        # Our half of the overlap cross-links is no longer needed; peers
        # that outlive us only read our snapshot (index/rx), so clearing
        # here plus _prune's sweep bounds retention to the busy period.
        tx.overlapping.clear()
        tx.overlap_senders.clear()

    def _corrupt(self, payload: bytes) -> bytes:
        """Flip a few random bits so the CRC checker has real work to do."""
        data = bytearray(payload)
        flips = max(1, int(self._corrupt_rng.integers(1, 4)))
        for _ in range(flips):
            idx = int(self._corrupt_rng.integers(0, len(data)))
            bit = int(self._corrupt_rng.integers(0, 8))
            data[idx] ^= 1 << bit
        return bytes(data)
