"""Multi-medium partitioning: one `RadioMedium` per radio-connected region.

A deployment whose districts sit further apart than the maximum radio
range is physically several networks sharing nothing but the clock.
:class:`PartitionedMedium` detects that — connected components under
max-range adjacency — and runs each component on its own
:class:`~repro.radio.medium.RadioMedium`, the apnetsim multi-medium
pattern (SNIPPETS.md snippet 3): per-region media with per-region
active-transmission books, so a frame in district A never even enters
district B's bookkeeping.

The facade keeps the ``Testbed``/``SensorNode`` API unchanged: it
exposes the same ``attach`` / ``transceiver`` / ``cca_busy`` /
``ambient_power_dbm`` / ``transmit`` / ``faults`` surface as a single
medium, and every child shares the environment, monitor, propagation
model and (via the registry's per-name memoization) the exact same RNG
streams.  Because the component radius *is* the candidate-pruning
radius, a sender's in-range candidate set inside its component equals
the set the single medium would have produced — so with uniform transmit
power a partitioned run is **bit-for-bit identical** to the unpartitioned
one (asserted by ``tests/radio/test_partition.py``), while dead regions
cost nothing.

Partitioning is computed lazily at the first traffic operation and
recomputed — only while no frame is in flight — after membership or
power changes that could re-draw the component boundaries.  A
cross-component move while a frame is on the air takes effect at the
next idle moment (frames are milliseconds; mobility is not).

Moves are *batched* instead of triggering a repartition each: the facade
keeps its own incremental :class:`SpatialGrid` over every attached node
and, per move, checks whether the mover came within the adjacency radius
of a node owned by a *different* child — the only way a stale component
map could wrongly silence a link (a component that merely *should* split
is coarser than optimal but still physically exact, because each child's
own spatial pruning already skips the out-of-range members).  Only such
boundary-merging moves, power changes, or every
:attr:`PartitionedMedium.repartition_every` accumulated drift moves (the
rebalance that re-splits drifted-apart components) mark the partition
stale — so a patrol node walking inside its district advances the
boundaries' bookkeeping by two grid-bucket updates per step, not a
union-find over the whole city.
"""

from __future__ import annotations

import typing as _t

from repro.errors import RadioError
from repro.radio.cc2420 import SENSITIVITY_DBM, RadioConfig
from repro.radio.medium import RANGE_MARGIN_SIGMAS, RadioMedium, Transceiver
from repro.radio.propagation import LogDistancePropagation
from repro.radio.rssi import RssiModel
from repro.radio.spatial import SpatialGrid
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.monitor import Monitor
from repro.sim.rng import RngRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame

__all__ = ["PartitionedMedium"]


class PartitionedMedium:
    """A drop-in ``RadioMedium`` facade over per-component child media."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        monitor: Monitor,
        propagation: LogDistancePropagation,
        *,
        corrupt_delivery_fraction: float = 0.3,
        use_spatial_index: bool = True,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.tracer = env.tracer
        self.propagation = propagation
        self._rng = rng
        #: Shared-stream PHY models, so ``SensorNode`` observables read
        #: through the facade exactly as through a plain medium.
        self.rssi_model = RssiModel(rng)
        self.corrupt_delivery_fraction = float(corrupt_delivery_fraction)
        self._use_spatial_index = bool(use_spatial_index)
        self._xcvrs: dict[int, Transceiver] = {}
        self._children: list[RadioMedium] = []
        self._owner: dict[int, RadioMedium] = {}
        self._faults: _t.Any | None = None
        self._stale = True
        #: Rebalance cadence: how many intra-component moves may batch
        #: up before the next traffic operation re-runs the union-find
        #: (splitting drifted-apart components).  Merges never wait —
        #: a move entering a foreign component's radius marks the
        #: partition stale immediately.
        self.repartition_every = 256
        #: How many times the union-find actually ran (tests and the
        #: mobility bench assert batching keeps this o(moves)).
        self.partition_builds = 0
        self._moves_since_partition = 0
        #: Facade-level grid over *all* attached nodes at the adjacency
        #: radius, maintained incrementally so the per-move merge test
        #: is one bucket move plus one neighborhood query.
        self._grid: SpatialGrid | None = None
        self._grid_radius = 0.0

    # -- membership --------------------------------------------------------

    def attach(self, node_id: int, position: tuple[float, float],
               config: RadioConfig | None = None) -> Transceiver:
        """Register a node's radio at ``position``.

        The transceiver is bound to the facade (its ``medium`` attribute
        never changes), so MAC layers and nodes built before the first
        partition pass keep working after it.
        """
        if node_id in self._xcvrs:
            raise RadioError(f"node {node_id} already attached to the medium")
        xcvr = Transceiver(self, node_id, position, config or RadioConfig())
        xcvr.config._listener = self._invalidate_channels
        xcvr.config._power_listener = self._invalidate_power
        self._xcvrs[node_id] = xcvr
        if self._grid is not None:
            # Keep the facade grid warm: an attach touches one bucket.
            self._grid.insert(node_id, xcvr._position)
        self._stale = True
        return xcvr

    def transceiver(self, node_id: int) -> Transceiver:
        try:
            return self._xcvrs[node_id]
        except KeyError:
            raise RadioError(f"node {node_id} not attached") from None

    def distance(self, a: int, b: int) -> float:
        pa = self._xcvrs[a]._position
        pb = self._xcvrs[b]._position
        return ((pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2) ** 0.5

    def node_ids(self) -> list[int]:
        return sorted(self._xcvrs)

    # -- fault hooks -------------------------------------------------------

    @property
    def faults(self) -> _t.Any | None:
        return self._faults

    @faults.setter
    def faults(self, injector: _t.Any | None) -> None:
        self._faults = injector
        for child in self._children:
            child.faults = injector

    @property
    def use_spatial_index(self) -> bool:
        return self._use_spatial_index

    @use_spatial_index.setter
    def use_spatial_index(self, value: bool) -> None:
        self._use_spatial_index = bool(value)
        for child in self._children:
            child.use_spatial_index = self._use_spatial_index

    #: Cumulative candidate accounting, aggregated over the children
    #: (they all update the same monitor gauges as they go).
    @property
    def candidates_considered(self) -> int:
        return sum(c.candidates_considered for c in self._children)

    @property
    def candidates_pruned(self) -> int:
        return sum(c.candidates_pruned for c in self._children)

    # -- invalidation ------------------------------------------------------

    def _invalidate_topology(self) -> None:
        self._stale = True
        for child in self._children:
            child._invalidate_topology()

    def _reposition(self, node_id: int, position: tuple[float, float]) -> None:
        # Keep the owning child's spatial buckets and per-node epochs
        # current, then decide whether the *component boundaries* could
        # have moved.  Only a merge risk (the mover is now within the
        # adjacency radius of a foreign-owned node) forces an immediate
        # repartition; pure drift batches up to ``repartition_every``
        # moves before a rebalance pass re-splits drifted components —
        # a coarse component map is still physically exact (each child
        # prunes its own out-of-range members), just not minimal.
        child = self._owner.get(node_id)
        if child is not None:
            child._reposition(node_id, position)
        grid = self._grid
        if grid is None or node_id not in grid:
            self._stale = True
            return
        grid.move(node_id, position)
        if self._stale:
            return
        for other in grid.within(position, self._grid_radius):
            if self._owner.get(other) is not child:
                self._stale = True
                return
        self._moves_since_partition += 1
        if self._moves_since_partition >= self.repartition_every:
            self._stale = True

    def _invalidate_channels(self) -> None:
        # Channel assignments never affect component boundaries (range is
        # channel-agnostic); forward to the children's channel caches.
        for child in self._children:
            child._invalidate_channels()

    def _invalidate_power(self) -> None:
        # Power changes move the range bound, which can re-draw component
        # boundaries as well as every child's query radius.
        self._stale = True
        for child in self._children:
            child._invalidate_power()

    # -- partitioning ------------------------------------------------------

    @property
    def max_range_m(self) -> float:
        """The global conservative radio range (the adjacency radius the
        components are built under)."""
        prop = self.propagation
        max_tx = max(
            (x.config._tx_power_dbm for x in self._xcvrs.values()),
            default=0.0,
        )
        budget = (
            max_tx - SENSITIVITY_DBM
            + RANGE_MARGIN_SIGMAS * (prop.shadowing_sigma_db
                                     + prop.fading_sigma_db)
            - min(0.0, prop.pinned_floor_db)
        )
        return prop.range_for_budget_m(budget)

    def _in_flight(self) -> bool:
        now = self.env.now
        return any(
            tx.end > now
            for child in self._children
            for tx in child._active
        )

    def _ensure_partition(self) -> None:
        if not self._stale:
            return
        if self._children and self._in_flight():
            # Defer the rebuild: the current component map stays valid
            # for physics (only boundary re-draws wait), and child-level
            # invalidation has already been forwarded.
            return
        ids = sorted(self._xcvrs)
        radius = self.max_range_m
        grid = self._grid
        if (grid is None or self._grid_radius != radius
                or len(grid) != len(ids)):
            # (Re)build the facade grid: first partition, a power change
            # that moved the adjacency radius, or membership drift.
            grid = SpatialGrid(radius)
            for nid in ids:
                grid.insert(nid, self._xcvrs[nid]._position)
            self._grid = grid
            self._grid_radius = radius
        # Union-find over max-range adjacency.
        parent = {nid: nid for nid in ids}

        def find(n: int) -> int:
            root = n
            while parent[root] != root:
                root = parent[root]
            while parent[n] != root:
                parent[n], n = root, parent[n]
            return root

        for nid in ids:
            rn = find(nid)
            for other in grid.within(self._xcvrs[nid]._position, radius):
                ro = find(other)
                if ro != rn:
                    parent[ro] = rn
        components: dict[int, list[int]] = {}
        for nid in ids:
            components.setdefault(find(nid), []).append(nid)

        self._children = []
        self._owner = {}
        for root in sorted(components, key=lambda r: components[r][0]):
            child = RadioMedium(
                self.env, self._rng, self.monitor, self.propagation,
                corrupt_delivery_fraction=self.corrupt_delivery_fraction,
                use_spatial_index=self._use_spatial_index,
            )
            child.faults = self._faults
            for nid in components[root]:
                xcvr = self._xcvrs[nid]
                child._adopt(xcvr)
                # _adopt points the config listeners at the child; route
                # them back through the facade so partition staleness is
                # tracked too (the facade forwards to the children).
                xcvr.config._listener = self._invalidate_channels
                xcvr.config._power_listener = self._invalidate_power
                self._owner[nid] = child
            self._children.append(child)
        self.partition_builds += 1
        self._moves_since_partition = 0
        self._stale = False

    def partitions(self) -> list[list[int]]:
        """The current component structure: sorted ids per child medium,
        ordered by each component's lowest id."""
        self._ensure_partition()
        return [sorted(child._xcvrs) for child in self._children]

    def _child_of(self, xcvr: Transceiver) -> RadioMedium:
        self._ensure_partition()
        try:
            return self._owner[xcvr.node_id]
        except KeyError:
            raise RadioError(
                f"node {xcvr.node_id} not attached") from None

    # -- traffic operations (delegated) ------------------------------------

    def cca_busy(self, xcvr: Transceiver) -> bool:
        return self._child_of(xcvr).cca_busy(xcvr)

    def ambient_power_dbm(self, xcvr: Transceiver) -> float:
        return self._child_of(xcvr).ambient_power_dbm(xcvr)

    def transmit(self, xcvr: Transceiver, frame: "Frame") -> Event:
        return self._child_of(xcvr).transmit(xcvr, frame)
