"""Uniform grid-bucket spatial index over node positions.

The medium's receiver-candidate pruning needs one query answered fast:
*which nodes sit within ``radius`` metres of this position?*  A uniform
grid whose cell size matches the query radius answers it by scanning a
3×3 cell neighborhood and applying the exact Euclidean filter — O(local
density) per query instead of O(all nodes), with no rebalancing and
O(1) incremental updates when a node attaches or moves (only the
affected buckets change).

Determinism contract: :meth:`SpatialGrid.within` returns node ids
**sorted ascending** and filters with an *inclusive* ``distance <=
radius`` comparison, so a node exactly on the query circle (or exactly
on a bucket boundary) is always a candidate — the conservative side.
The property tests in ``tests/radio/test_spatial.py`` hold the grid to
exact equality with the brute-force in-range set.
"""

from __future__ import annotations

import math

__all__ = ["SpatialGrid"]


class SpatialGrid:
    """Point set with grid-bucket range queries.

    ``cell_size`` should match the dominant query radius (queries with a
    larger radius still work — the scan widens to the needed cell span).
    """

    __slots__ = ("cell_size", "_cells", "_pos")

    def __init__(self, cell_size: float) -> None:
        if not cell_size > 0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        #: (cx, cy) -> {node_id: (x, y)}
        self._cells: dict[tuple[int, int], dict[int, tuple[float, float]]] = {}
        self._pos: dict[int, tuple[float, float]] = {}

    # -- maintenance ---------------------------------------------------------

    def _cell_of(self, pos: tuple[float, float]) -> tuple[int, int]:
        return (math.floor(pos[0] / self.cell_size),
                math.floor(pos[1] / self.cell_size))

    def insert(self, node_id: int, pos: tuple[float, float]) -> None:
        """Add a node (it must not already be present)."""
        if node_id in self._pos:
            raise ValueError(f"node {node_id} already in the grid")
        pos = (float(pos[0]), float(pos[1]))
        self._pos[node_id] = pos
        self._cells.setdefault(self._cell_of(pos), {})[node_id] = pos

    def remove(self, node_id: int) -> None:
        """Drop a node (KeyError if absent)."""
        pos = self._pos.pop(node_id)
        cell = self._cell_of(pos)
        bucket = self._cells[cell]
        del bucket[node_id]
        if not bucket:
            del self._cells[cell]

    def move(self, node_id: int, pos: tuple[float, float]) -> None:
        """Reposition a node, touching only the two affected buckets."""
        self.remove(node_id)
        self.insert(node_id, pos)

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._pos

    def position(self, node_id: int) -> tuple[float, float]:
        return self._pos[node_id]

    # -- queries -------------------------------------------------------------

    def within(self, pos: tuple[float, float], radius: float) -> list[int]:
        """Ids of all nodes with ``distance(pos, node) <= radius``, sorted
        ascending (the medium's draw-order contract).

        The containment test is the *float-evaluated* inclusive
        predicate ``dx*dx + dy*dy <= radius*radius`` — and rounding can
        let a point a few ulps outside the true disk pass it while its
        cell sits just past the geometric scan span.  The ``+ 1`` guard
        ring keeps the scanned cells a strict superset of every point
        that can pass the predicate (rounding error is ~1 ulp of the
        radius; the ring adds a whole cell).  Found by the property
        tests: a node at ``x = -1e-62`` queried from ``(50, 50)`` at
        radius 50 rounds to distance exactly 50.
        """
        if radius < 0:
            return []
        x, y = float(pos[0]), float(pos[1])
        span = math.ceil(radius / self.cell_size) + 1
        cx, cy = self._cell_of((x, y))
        r2 = radius * radius
        cells = self._cells
        out: list[int] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = cells.get((gx, gy))
                if bucket is None:
                    continue
                for nid, (px, py) in bucket.items():
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        out.append(nid)
        out.sort()
        return out
