"""802.15.4 O-QPSK link model: SINR → chip/bit error → packet reception.

We use the standard analytic model for the 2.4 GHz 802.15.4 PHY (O-QPSK
with 32-chip DSSS, 16-ary orthogonal signalling), as used by TOSSIM and
the classic link-layer modelling literature:

    BER(γ) = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·γ·(1/k − 1))

with γ the SINR as a linear ratio, and

    PRR(γ, L) = (1 − BER(γ))^(8·L)

for a frame of L bytes.  The alternating series is precomputed into a
coefficient vector so evaluating PRR over an array of SINRs is a single
vectorised numpy expression (hot path: the medium evaluates it per frame,
and benches sweep it over thousands of links).
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

__all__ = ["bit_error_rate", "packet_reception_ratio", "snr_db_for_prr"]

# Precomputed series terms: k = 2..16, coefficient (-1)^k * C(16, k),
# exponent factor 20 * (1/k - 1).
_K = np.arange(2, 17)
_COEFF = ((-1.0) ** _K) * comb(16, _K)
_EXPO = 20.0 * (1.0 / _K - 1.0)


def bit_error_rate(sinr_db: float | np.ndarray) -> float | np.ndarray:
    """Bit error rate for the 802.15.4 2.4 GHz PHY at ``sinr_db``.

    Vectorised over numpy arrays.  The analytic series is numerically
    benign: every exponent factor is negative, so terms vanish for high
    SINR and the result is clipped into [0, 0.5] to absorb rounding at
    very low SINR.
    """
    gamma = 10.0 ** (np.asarray(sinr_db, dtype=float) / 10.0)
    terms = _COEFF * np.exp(np.multiply.outer(gamma, _EXPO))
    ber = (8.0 / 15.0) * (1.0 / 16.0) * terms.sum(axis=-1)
    ber = np.clip(ber, 0.0, 0.5)
    return float(ber) if np.isscalar(sinr_db) else ber


def packet_reception_ratio(sinr_db: float | np.ndarray,
                           frame_bytes: int) -> float | np.ndarray:
    """Probability that a ``frame_bytes``-byte frame is received intact.

    Assumes independent bit errors across the frame (the standard
    simplification; adequate for reproducing loss-vs-SNR shape).
    """
    if frame_bytes <= 0:
        raise ValueError(f"frame length must be positive, got {frame_bytes}")
    ber = bit_error_rate(sinr_db)
    prr = (1.0 - np.asarray(ber)) ** (8.0 * frame_bytes)
    return float(prr) if np.isscalar(sinr_db) else prr


def snr_db_for_prr(target_prr: float, frame_bytes: int,
                   lo_db: float = -10.0, hi_db: float = 20.0) -> float:
    """Invert the PRR curve: the SNR at which PRR reaches ``target_prr``.

    Bisection over the monotone PRR curve; used by topology planning to
    place nodes at a desired link quality (e.g. "build an 8-hop chain of
    ~95 % links").
    """
    if not 0.0 < target_prr < 1.0:
        raise ValueError(f"target PRR must be in (0, 1), got {target_prr}")
    lo, hi = float(lo_db), float(hi_db)
    if packet_reception_ratio(hi, frame_bytes) < target_prr:
        raise ValueError("target PRR unreachable below hi_db")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if packet_reception_ratio(mid, frame_bytes) < target_prr:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
