"""Radio propagation: log-distance path loss with static per-link shadowing.

The received power of a transmission from *a* to *b* is

    P_rx = P_tx - [ PL(d0) + 10 n log10(d/d0) + X_ab + F ]

where ``X_ab`` is a *static*, per-directed-link log-normal shadowing term
and ``F`` a small per-packet fading draw.  Two modelling choices matter to
the paper's experiments:

* **Directionality** — ``X_ab`` and ``X_ba`` are drawn independently, which
  produces the asymmetric links Figure 6 shows (forward and backward RSSI
  curves differ) and which the abstract calls out as a diagnosis target.
* **Staticness** — ``X_ab`` is drawn once per link, so link quality is a
  stable property of a deployment that probing can actually characterise;
  per-packet variation comes only from the smaller fading term.

The all-pairs deterministic loss is computed as a vectorised numpy matrix
(the hpc-parallel guides' "vectorise the hot loop" idiom) because the
medium recomputes candidate receivers on every transmission.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngRegistry

__all__ = ["LogDistancePropagation", "distance_matrix"]


def distance_matrix(positions: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances for an (N, 2) position array."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (N, 2), got {positions.shape}")
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((deltas ** 2).sum(axis=-1))


class LogDistancePropagation:
    """Log-distance path loss + static directed shadowing + fading.

    Parameters
    ----------
    rng:
        Registry supplying the ``shadowing`` and ``fading`` streams.
    reference_loss_db:
        Path loss at the reference distance (default 40 dB at 1 m, a
        common 2.4 GHz indoor/outdoor-ground value).
    exponent:
        Path-loss exponent ``n`` (3.0 suits near-ground sensor nodes).
    shadowing_sigma_db:
        Standard deviation of the static per-link shadowing term.
    fading_sigma_db:
        Standard deviation of the per-packet fading term.
    """

    def __init__(
        self,
        rng: RngRegistry,
        *,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
        exponent: float = 3.0,
        shadowing_sigma_db: float = 4.0,
        fading_sigma_db: float = 1.0,
    ) -> None:
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if shadowing_sigma_db < 0 or fading_sigma_db < 0:
            raise ValueError("sigmas must be non-negative")
        self.reference_loss_db = float(reference_loss_db)
        self.reference_distance_m = float(reference_distance_m)
        self.exponent = float(exponent)
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self.fading_sigma_db = float(fading_sigma_db)
        self._shadow_rng = rng.stream("propagation.shadowing")
        self._fading_rng = rng.stream("propagation.fading")
        self._shadowing: dict[tuple[int, int], float] = {}
        #: Fault-injection overlay: extra loss (dB) per directed link,
        #: added on top of path loss and shadowing.  Empty outside fault
        #: plans, so the untouched case costs one falsy check.
        self._penalties: dict[tuple[int, int], float] = {}
        #: Bumped whenever the shadowing table changes (a new link drawn or
        #: a value pinned).  The medium keys its cached per-sender
        #: mean-loss rows on this, so pinned links invalidate them.
        self.shadowing_epoch = 0
        #: The most *favorable* (negative) loss adjustment ever pinned or
        #: injected, in dB — never positive, never relaxes.  The medium's
        #: spatial index folds it into its conservative range bound so a
        #: test or fault plan that pins a link 40 dB *better* than the
        #: path-loss model cannot make the bound prune an audible node.
        #: Lazily *drawn* shadowing does not move it: the statistical
        #: margin already covers draws out to many sigma.
        self.pinned_floor_db = 0.0

    # -- deterministic component -------------------------------------------

    def deterministic_loss_db(self, distance_m: float | np.ndarray
                              ) -> float | np.ndarray:
        """Pure log-distance loss, no shadowing or fading.

        Distances below the reference distance clamp to the reference loss
        (the model is not meant for near-field geometry).
        """
        d = np.maximum(np.asarray(distance_m, dtype=float),
                       self.reference_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )
        return float(loss) if np.isscalar(distance_m) else loss

    def loss_matrix(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised all-pairs deterministic loss (diagonal = 0 distance
        clamps to the reference loss; callers never use self-links)."""
        return self.deterministic_loss_db(distance_matrix(positions))

    def range_for_budget_m(self, link_budget_db: float) -> float:
        """The distance at which deterministic loss consumes the budget.

        Inverts :meth:`deterministic_loss_db`; never below the reference
        distance (inside which the loss clamps).  The medium derives its
        spatial-index radius from this with a conservative stochastic
        margin on top — see ``RadioMedium._ensure_range``.
        """
        d = self.reference_distance_m * 10.0 ** (
            (link_budget_db - self.reference_loss_db)
            / (10.0 * self.exponent)
        )
        return max(float(d), self.reference_distance_m)

    # -- stochastic components -------------------------------------------------

    def link_shadowing_db(self, src: int, dst: int) -> float:
        """The static shadowing of the *directed* link src→dst.

        Drawn lazily on first use and cached for the lifetime of the
        model, so a link's character is stable across the whole run.
        """
        key = (src, dst)
        value = self._shadowing.get(key)
        if value is None:
            value = float(
                self._shadow_rng.normal(0.0, self.shadowing_sigma_db)
            )
            self._shadowing[key] = value
            self.shadowing_epoch += 1
        return value

    def set_link_shadowing_db(self, src: int, dst: int, value: float) -> None:
        """Pin a link's shadowing (used by tests and fault injection —
        e.g. forcing a broken or strongly asymmetric link)."""
        self._shadowing[(src, dst)] = float(value)
        if value < self.pinned_floor_db:
            self.pinned_floor_db = float(value)
        self.shadowing_epoch += 1

    # -- fault-injection overlay ------------------------------------------------

    def link_penalty_db(self, src: int, dst: int) -> float:
        """Injected extra loss on the directed link src→dst (0 when sound)."""
        return self._penalties.get((src, dst), 0.0)

    def set_link_penalty_db(self, src: int, dst: int, value: float) -> None:
        """Set the injected extra loss on src→dst (``0`` removes it).

        The fault engine's ``link_degrade`` hook.  Penalties live apart
        from the shadowing table so they can ramp, stack and clear
        without consuming or disturbing any RNG stream; the epoch bump
        makes the medium rebuild its cached mean-loss rows.
        """
        key = (src, dst)
        if value:
            self._penalties[key] = float(value)
            if value < self.pinned_floor_db:
                self.pinned_floor_db = float(value)
        else:
            self._penalties.pop(key, None)
        self.shadowing_epoch += 1

    def shadowing_row(self, src: int, dst_ids: np.ndarray) -> np.ndarray:
        """Shadowing of every directed link ``src -> dst_ids[i]``.

        Missing links are drawn in ``dst_ids`` order as one batched call;
        a numpy Generator fills arrays element-by-element from the same
        bitstream as repeated scalar draws, so the stream consumed here is
        identical to the per-link lazy path.  Callers must pass ``dst_ids``
        sorted ascending (the medium's draw-order contract).
        """
        table = self._shadowing
        out = np.empty(len(dst_ids), dtype=float)
        missing: list[tuple[int, int]] = []
        for i, dst in enumerate(dst_ids.tolist()):
            value = table.get((src, dst))
            if value is None:
                missing.append((i, dst))
            else:
                out[i] = value
        if missing:
            draws = self._shadow_rng.normal(
                0.0, self.shadowing_sigma_db, size=len(missing)
            )
            for (i, dst), draw in zip(missing, draws):
                value = float(draw)
                table[(src, dst)] = value
                out[i] = value
            self.shadowing_epoch += len(missing)
        if self._penalties:
            penalties = self._penalties
            for i, dst in enumerate(dst_ids.tolist()):
                out[i] += penalties.get((src, dst), 0.0)
        return out

    def fading_row(self, count: int) -> np.ndarray:
        """``count`` per-packet fading draws as one batched call.

        Stream-equivalent to ``count`` scalar draws (see
        :meth:`shadowing_row`); only meaningful when ``fading_sigma_db``
        is positive — callers gate on that, as the scalar path does.
        """
        return self._fading_rng.normal(0.0, self.fading_sigma_db, size=count)

    def sample_loss_db(self, src: int, dst: int, distance_m: float) -> float:
        """Total loss for one packet on the directed link src→dst."""
        loss = self.deterministic_loss_db(distance_m)
        loss += self.link_shadowing_db(src, dst)
        if self._penalties:
            loss += self._penalties.get((src, dst), 0.0)
        if self.fading_sigma_db > 0:
            loss += float(self._fading_rng.normal(0.0, self.fading_sigma_db))
        return float(loss)

    def received_power_dbm(self, tx_power_dbm: float, src: int, dst: int,
                           distance_m: float) -> float:
        """Received power for one packet on src→dst at ``tx_power_dbm``."""
        return tx_power_dbm - self.sample_loss_db(src, dst, distance_m)

    def mean_received_power_dbm(self, tx_power_dbm: float, src: int, dst: int,
                                distance_m: float) -> float:
        """Expected received power (no fading draw) — used for planning."""
        return tx_power_dbm - (
            self.deterministic_loss_db(distance_m)
            + self.link_shadowing_db(src, dst)
            + (self._penalties.get((src, dst), 0.0) if self._penalties
               else 0.0)
        )
