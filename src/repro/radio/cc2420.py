"""CC2420 radio chip model: power table, channels, timing, thresholds.

The MicaZ mote carries a TI/Chipcon CC2420, an 802.15.4-compliant 2.4 GHz
transceiver.  The paper's radio-configuration commands expose exactly two
knobs — the PA output level (register values 0..31, −25..0 dBm) and the
channel (16 channels, 11..26) — so this module models those plus the
constants the link-quality observables depend on (RSSI offset, sensitivity,
noise floor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidChannel, InvalidPowerLevel

__all__ = [
    "MIN_POWER_LEVEL",
    "MAX_POWER_LEVEL",
    "MIN_CHANNEL",
    "MAX_CHANNEL",
    "NUM_CHANNELS",
    "RSSI_OFFSET_DBM",
    "SENSITIVITY_DBM",
    "NOISE_FLOOR_DBM",
    "CCA_THRESHOLD_DBM",
    "power_level_to_dbm",
    "channel_frequency_mhz",
    "RadioConfig",
]

#: PA_LEVEL register bounds (CC2420 datasheet, table 9).
MIN_POWER_LEVEL = 0
MAX_POWER_LEVEL = 31

#: 802.15.4 2.4 GHz channel page 0: channels 11..26 (16 channels; the
#: paper says "supports 16 channels" and its sample output uses channel 17).
MIN_CHANNEL = 11
MAX_CHANNEL = 26
NUM_CHANNELS = MAX_CHANNEL - MIN_CHANNEL + 1

#: RSSI register offset: RF power [dBm] = RSSI_VAL + RSSI_OFFSET.  The
#: paper's example — "a RSSI reading of -20 indicates ... approximately
#: -65 dBm" — pins this at -45.
RSSI_OFFSET_DBM = -45.0

#: Detection threshold: frames below this power never synchronise at all.
#: Set below the nominal −95 dBm spec point because the 9 dB DSSS
#: processing gain lets the correlator lock slightly under the noise
#: floor; the SINR→PRR waterfall (−3..+1 dB), not this cutoff, governs
#: the gray region of intermediate-quality links.
SENSITIVITY_DBM = -101.0

#: Effective noise floor used for SNR computation (thermal + NF for the
#: ~2 MHz 802.15.4 channel).
NOISE_FLOOR_DBM = -98.0

#: Clear-channel-assessment threshold (energy detect mode).  The CC2420's
#: CCA threshold is programmable (RSSI.CCA_THR); the -77 dBm reset value
#: is widely considered too deaf, and deployed stacks lower it so that
#: carrier sense covers at least the links they route over.  We default
#: to -85 dBm: adjacent-hop transmissions are sensed, two-hop ones are
#: not — the classic partial-carrier-sense regime of mote testbeds.
CCA_THRESHOLD_DBM = -85.0

# Datasheet anchor points: PA_LEVEL register value -> output power (dBm).
_PA_LEVELS = np.array([3, 7, 11, 15, 19, 23, 27, 31], dtype=float)
_PA_DBM = np.array([-25.0, -15.0, -10.0, -7.0, -5.0, -3.0, -1.0, 0.0])


def power_level_to_dbm(level: int) -> float:
    """Output power in dBm for a PA_LEVEL register value.

    Anchor values come from the datasheet; intermediate register values are
    linearly interpolated (the real PA steps monotonically between the
    documented points).  Levels below the lowest anchor extrapolate the
    first segment, floored at -30 dBm.
    """
    if not MIN_POWER_LEVEL <= level <= MAX_POWER_LEVEL:
        raise InvalidPowerLevel(
            f"PA level {level} outside {MIN_POWER_LEVEL}..{MAX_POWER_LEVEL}"
        )
    if level < _PA_LEVELS[0]:
        # Extrapolate the lowest documented segment, clamped.
        slope = (_PA_DBM[1] - _PA_DBM[0]) / (_PA_LEVELS[1] - _PA_LEVELS[0])
        return max(-30.0, float(_PA_DBM[0] + slope * (level - _PA_LEVELS[0])))
    return float(np.interp(level, _PA_LEVELS, _PA_DBM))


def channel_frequency_mhz(channel: int) -> float:
    """Centre frequency of an 802.15.4 2.4 GHz channel (2405 + 5(k-11))."""
    if not MIN_CHANNEL <= channel <= MAX_CHANNEL:
        raise InvalidChannel(
            f"channel {channel} outside {MIN_CHANNEL}..{MAX_CHANNEL}"
        )
    return 2405.0 + 5.0 * (channel - MIN_CHANNEL)


@dataclass
class RadioConfig:
    """Mutable per-node radio state, as manipulated by LiteView commands."""

    power_level: int = MAX_POWER_LEVEL
    channel: int = 17  # the channel used in the paper's sample output

    # Not dataclass fields: the medium installs ``_listener`` at attach
    # time so channel hops invalidate its per-channel receiver index,
    # ``_power_listener`` so PA changes can shrink or grow its
    # max-range-derived spatial-index radius, and ``_tx_power_dbm``
    # caches the interpolated PA conversion (the medium reads it on
    # every transmit).
    _listener = None
    _power_listener = None
    _tx_power_dbm = power_level_to_dbm(MAX_POWER_LEVEL)

    def __post_init__(self) -> None:
        self.set_power_level(self.power_level)
        self.set_channel(self.channel)

    def set_power_level(self, level: int) -> None:
        """Set the PA level, validating the register range."""
        if not isinstance(level, int) or isinstance(level, bool):
            raise InvalidPowerLevel(f"PA level must be an int, got {level!r}")
        if not MIN_POWER_LEVEL <= level <= MAX_POWER_LEVEL:
            raise InvalidPowerLevel(
                f"PA level {level} outside "
                f"{MIN_POWER_LEVEL}..{MAX_POWER_LEVEL}"
            )
        self.power_level = level
        self._tx_power_dbm = power_level_to_dbm(level)
        if self._power_listener is not None:
            self._power_listener()

    def set_channel(self, channel: int) -> None:
        """Set the channel, validating the 802.15.4 range."""
        if not isinstance(channel, int) or isinstance(channel, bool):
            raise InvalidChannel(f"channel must be an int, got {channel!r}")
        if not MIN_CHANNEL <= channel <= MAX_CHANNEL:
            raise InvalidChannel(
                f"channel {channel} outside {MIN_CHANNEL}..{MAX_CHANNEL}"
            )
        self.channel = channel
        if self._listener is not None:
            self._listener()

    @property
    def tx_power_dbm(self) -> float:
        """Transmit power implied by the current PA level."""
        return self._tx_power_dbm

    @property
    def frequency_mhz(self) -> float:
        """Centre frequency implied by the current channel."""
        return channel_frequency_mhz(self.channel)
