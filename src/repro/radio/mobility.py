"""Time-varying geometry: declarative mobility plans for node motion.

Static geometry was the last world-level constant: faults break links,
workloads shape traffic, but every node stood still.  A
:class:`MobilityPlan` is the motion analogue of a fault plan — a list of
timed, scoped :class:`MobilitySpec` entries (linear drift, fixed
waypoint tours, random-waypoint wandering) that a
:class:`MobilityDriver` compiles into timed
:meth:`~repro.sim.engine.Environment.call_at` position updates, each of
which flows through ``SensorNode.position`` into the medium's per-node
incremental invalidation (see the "Time-varying geometry" section of
:mod:`repro.radio.medium`).

The contracts mirror :mod:`repro.faults` exactly:

* **Determinism** — an inert plan (``enabled=False`` or no specs)
  installs *nothing*: no events, no RNG stream, packet digests are
  byte-identical to a run with no plan at all.  Stochastic motion
  (``random_waypoint``) draws only from the dedicated ``"mobility"``
  stream, itineraries are drawn eagerly at each spec's activation
  instant (never interleaved with traffic-dependent state), so the same
  seed and plan reproduce the same trajectories bit-for-bit.
* **Campaign integration** — plans round-trip through canonical JSON
  (:meth:`MobilityPlan.to_param` / :meth:`MobilityPlan.from_param`), so
  mobility grids shard, cache and derive per-run seeds like any other
  swept campaign parameter.

Motion is discretised on each spec's ``update_every`` cadence (default
1 s): positions move in steps, which is exactly what the medium's
epoch-based invalidation is built to absorb — each step costs
O(local density), not O(N).
"""

from __future__ import annotations

import json
import math
import typing as _t
from dataclasses import dataclass, fields

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = [
    "MOBILITY_KINDS",
    "MobilitySpec",
    "MobilityPlan",
    "MobilityModel",
    "LinearDrift",
    "Waypoint",
    "RandomWaypoint",
    "MobilityDriver",
    "install_mobility",
]

#: The motion vocabulary, in the order the docs describe them.
MOBILITY_KINDS = ("linear_drift", "waypoint", "random_waypoint")


@dataclass(frozen=True)
class MobilitySpec:
    """One timed, scoped motion pattern.

    ``kind`` selects the model; the fields that apply depend on it (see
    :meth:`validate`):

    ===============  ====================================================
    kind             required fields
    ===============  ====================================================
    linear_drift     ``nodes``, ``velocity`` (vx, vy m/s), ``duration``
    waypoint         ``nodes``, ``waypoints`` ((dt, x, y), ... — offsets
                     from ``at``, strictly increasing)
    random_waypoint  ``nodes``, ``duration``, ``area`` (xmin, ymin,
                     xmax, ymax), ``speed`` (vmin, vmax m/s);
                     ``pause_s`` optional
    ===============  ====================================================

    ``at`` is the activation time in simulated seconds.  Motion is
    discretised every ``update_every`` seconds; the final update of a
    drift/leg always lands exactly on its endpoint.
    """

    kind: str
    at: float = 0.0
    duration: float | None = None
    nodes: tuple[int, ...] = ()
    velocity: tuple[float, float] | None = None
    waypoints: tuple[tuple[float, float, float], ...] = ()
    area: tuple[float, float, float, float] | None = None
    speed: tuple[float, float] | None = None
    pause_s: float = 0.0
    update_every: float = 1.0

    def __post_init__(self) -> None:
        # Normalise sequence fields so JSON round-trips compare equal.
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        if self.velocity is not None:
            vx, vy = self.velocity
            object.__setattr__(self, "velocity", (float(vx), float(vy)))
        object.__setattr__(
            self, "waypoints",
            tuple((float(t), float(x), float(y))
                  for t, x, y in self.waypoints))
        if self.area is not None:
            object.__setattr__(
                self, "area", tuple(float(v) for v in self.area))
        if self.speed is not None:
            lo, hi = self.speed
            object.__setattr__(self, "speed", (float(lo), float(hi)))
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless the spec is internally consistent."""
        if self.kind not in MOBILITY_KINDS:
            raise ValueError(
                f"unknown mobility kind {self.kind!r} "
                f"(one of {MOBILITY_KINDS})")
        if self.at < 0:
            raise ValueError(f"activation time must be >= 0, got {self.at}")
        if self.update_every <= 0:
            raise ValueError(
                f"update_every must be positive, got {self.update_every}")
        if not self.nodes:
            raise ValueError(f"{self.kind} requires a non-empty node scope")
        kind = self.kind
        if kind == "linear_drift":
            if self.velocity is None:
                raise ValueError("linear_drift requires velocity=(vx, vy)")
            if self.duration is None or self.duration <= 0:
                raise ValueError(
                    "linear_drift requires a finite positive duration "
                    "(unbounded drift would schedule unbounded events)")
        elif kind == "waypoint":
            if not self.waypoints:
                raise ValueError("waypoint requires at least one waypoint")
            times = [t for t, _, _ in self.waypoints]
            if times[0] < 0:
                raise ValueError("waypoint offsets must be >= 0")
            if any(b <= a for a, b in zip(times, times[1:])):
                raise ValueError(
                    "waypoint offsets must be strictly increasing")
        elif kind == "random_waypoint":
            if self.duration is None or self.duration <= 0:
                raise ValueError(
                    "random_waypoint requires a finite positive duration")
            if self.area is None:
                raise ValueError(
                    "random_waypoint requires area=(xmin, ymin, xmax, ymax)")
            xmin, ymin, xmax, ymax = self.area
            if xmax <= xmin or ymax <= ymin:
                raise ValueError(f"degenerate area {self.area}")
            if self.speed is None:
                raise ValueError(
                    "random_waypoint requires speed=(vmin, vmax)")
            vmin, vmax = self.speed
            if not 0.0 < vmin <= vmax:
                raise ValueError(
                    f"random_waypoint requires 0 < vmin <= vmax, "
                    f"got {self.speed}")
            if self.pause_s < 0:
                raise ValueError(f"pause_s must be >= 0, got {self.pause_s}")

    @property
    def ends_at(self) -> float:
        """The time after which this spec schedules nothing further."""
        if self.kind == "waypoint":
            return self.at + self.waypoints[-1][0]
        return self.at + float(self.duration or 0.0)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form, defaults omitted so encodings stay canonical."""
        out: dict[str, object] = {"kind": self.kind, "at": self.at}
        for f in fields(self):
            if f.name in ("kind", "at"):
                continue
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if f.name in ("nodes", "velocity", "area", "speed"):
                value = list(value)
            elif f.name == "waypoints":
                value = [list(w) for w in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "MobilitySpec":
        kwargs = dict(data)
        for key in ("nodes", "velocity", "area", "speed"):
            if kwargs.get(key) is not None:
                kwargs[key] = tuple(kwargs[key])
        if "waypoints" in kwargs:
            kwargs["waypoints"] = tuple(tuple(w) for w in kwargs["waypoints"])
        return cls(**kwargs)


@dataclass(frozen=True)
class MobilityPlan:
    """An ordered collection of motion specs for one run.

    ``enabled=False`` (or an empty spec list) makes the plan inert: the
    driver installs nothing, consumes no RNG, and the run is
    byte-identical to one with no plan at all — the property the
    mobility determinism tests assert.
    """

    name: str = ""
    specs: tuple[MobilitySpec, ...] = ()
    enabled: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_active(self) -> bool:
        """Whether installing this plan changes anything."""
        return self.enabled and bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "enabled": self.enabled,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "MobilityPlan":
        return cls(
            name=data.get("name", ""),
            enabled=bool(data.get("enabled", True)),
            specs=tuple(MobilitySpec.from_dict(s)
                        for s in data.get("specs", ())),
        )

    def to_param(self) -> str:
        """Canonical JSON — the campaign-parameter form (sorted keys,
        fixed separators: equal plans encode to equal strings)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_param(cls, param: "str | _t.Mapping | MobilityPlan | None",
                   ) -> "MobilityPlan":
        """Decode a campaign parameter back into a plan (accepts the
        canonical JSON string, a mapping, a plan, or ``None``)."""
        if param is None or param == "null":
            return cls(enabled=False)
        if isinstance(param, MobilityPlan):
            return param
        if isinstance(param, str):
            param = json.loads(param)
        return cls.from_dict(param)  # type: ignore[arg-type]


# -- models ------------------------------------------------------------------


class MobilityModel(_t.Protocol):
    """A motion pattern: turns one (spec, node) into a timed itinerary.

    ``activate`` runs at ``spec.at`` via the driver; it reads whatever
    start state it needs (typically the node's current position) and
    returns the itinerary as ``(time, x, y)`` triples for the driver to
    schedule.  Stochastic models draw from ``driver.rng`` — eagerly,
    inside ``activate``, so a spec's entire trajectory is fixed at one
    instant regardless of how traffic interleaves afterwards.
    """

    kind: str

    def activate(self, driver: "MobilityDriver", spec: MobilitySpec,
                 node_id: int) -> list[tuple[float, float, float]]:
        ...  # pragma: no cover


def _ticks(start: float, end: float, step: float) -> list[float]:
    """The update instants for one leg: the cadence grid after ``start``
    plus ``end`` itself (a leg always lands exactly on its endpoint)."""
    out = []
    n = 1
    t = start + step
    while t < end - 1e-12:
        out.append(t)
        n += 1
        t = start + n * step
    out.append(end)
    return out


class LinearDrift:
    """Constant-velocity drift from wherever the node is at activation."""

    kind = "linear_drift"

    def activate(self, driver: "MobilityDriver", spec: MobilitySpec,
                 node_id: int) -> list[tuple[float, float, float]]:
        x0, y0 = driver.testbed.node(node_id).position
        vx, vy = spec.velocity  # type: ignore[misc]
        return [
            (t, x0 + vx * (t - spec.at), y0 + vy * (t - spec.at))
            for t in _ticks(spec.at, spec.at + spec.duration,
                            spec.update_every)
        ]


class Waypoint:
    """A fixed tour: at each waypoint offset the node is exactly there,
    moving piecewise-linearly (on the update cadence) in between.  The
    first waypoint is approached from the node's activation position."""

    kind = "waypoint"

    def activate(self, driver: "MobilityDriver", spec: MobilitySpec,
                 node_id: int) -> list[tuple[float, float, float]]:
        pos = driver.testbed.node(node_id).position
        out: list[tuple[float, float, float]] = []
        leg_start, (px, py) = spec.at, pos
        for dt, wx, wy in spec.waypoints:
            leg_end = spec.at + dt
            span = leg_end - leg_start
            for t in _ticks(leg_start, leg_end, spec.update_every):
                frac = (t - leg_start) / span if span > 0 else 1.0
                out.append((t, px + (wx - px) * frac, py + (wy - py) * frac))
            leg_start, (px, py) = leg_end, (wx, wy)
        return out


class RandomWaypoint:
    """Classic random waypoint inside ``spec.area``: pick a uniform
    target and a uniform speed in ``spec.speed``, travel, pause
    ``spec.pause_s``, repeat until ``spec.duration`` is spent.  All
    draws come from the dedicated mobility stream at activation."""

    kind = "random_waypoint"

    def activate(self, driver: "MobilityDriver", spec: MobilitySpec,
                 node_id: int) -> list[tuple[float, float, float]]:
        rng = driver.rng
        xmin, ymin, xmax, ymax = spec.area  # type: ignore[misc]
        vmin, vmax = spec.speed  # type: ignore[misc]
        x, y = driver.testbed.node(node_id).position
        out: list[tuple[float, float, float]] = []
        t = spec.at
        horizon = spec.at + spec.duration
        while t < horizon - 1e-12:
            tx = float(rng.uniform(xmin, xmax))
            ty = float(rng.uniform(ymin, ymax))
            v = float(rng.uniform(vmin, vmax))
            dist = math.hypot(tx - x, ty - y)
            leg_end = min(t + dist / v, horizon) if dist > 0 else t
            if leg_end > t:
                span = leg_end - t
                # Clip the leg at the horizon: interpolate toward the
                # target only as far as time allows.
                reach = span * v / dist
                for tick in _ticks(t, leg_end, spec.update_every):
                    frac = (tick - t) / span * reach
                    out.append((tick, x + (tx - x) * frac,
                                y + (ty - y) * frac))
                x, y = out[-1][1], out[-1][2]
                t = leg_end
            t += spec.pause_s if spec.pause_s > 0 else 0.0
            if spec.pause_s <= 0 and dist <= 0:
                break  # degenerate: already at the drawn target
        return out


#: kind -> stateless model singleton.
MODELS: dict[str, MobilityModel] = {
    m.kind: m() for m in (LinearDrift, Waypoint, RandomWaypoint)
}


# -- driver ------------------------------------------------------------------


class MobilityDriver:
    """Live mobility state for one run, installed from a plan.

    Construction schedules one activation event per (spec, node); each
    activation materialises its itinerary (reading the node's position,
    drawing any randomness) and schedules the position updates.  After
    that the driver is passive — every update is a plain
    ``node.position = (x, y)`` assignment flowing through the medium's
    incremental invalidation.
    """

    def __init__(self, testbed: "Testbed", plan: MobilityPlan):
        self.testbed = testbed
        self.plan = plan
        self.env = testbed.env
        self.monitor = testbed.monitor
        #: Dedicated stream: stochastic motion draws only from here.
        self.rng = testbed.rng.stream("mobility")
        #: Position updates actually applied, per node.
        self.updates: dict[int, int] = {}
        #: Activation counter per kind, for tests and reports.
        self.activations: dict[str, int] = {}
        self._c_updates = testbed.monitor.counter_obj("mobility.updates")
        for spec in plan.specs:
            model = MODELS[spec.kind]
            for node_id in spec.nodes:
                self.env.call_at(
                    spec.at,
                    lambda m=model, s=spec, n=node_id: self._activate(m, s, n))

    def _activate(self, model: MobilityModel, spec: MobilitySpec,
                  node_id: int) -> None:
        self.activations[spec.kind] = self.activations.get(spec.kind, 0) + 1
        self.monitor.count("mobility.activations")
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit("mobility.activate", self.env.now,
                        mobility_kind=spec.kind, node=node_id)
        for when, x, y in model.activate(self, spec, node_id):
            self.env.call_at(
                when, lambda n=node_id, p=(x, y): self._apply(n, p))

    def _apply(self, node_id: int, position: tuple[float, float]) -> None:
        self.testbed.node(node_id).position = position
        self.updates[node_id] = self.updates.get(node_id, 0) + 1
        self._c_updates.value += 1


def install_mobility(testbed: "Testbed",
                     plan: "MobilityPlan | str | _t.Mapping | None",
                     ) -> MobilityDriver | None:
    """Install ``plan`` on ``testbed``; returns the driver, or ``None``.

    Accepts any form :meth:`MobilityPlan.from_param` does (a plan, its
    canonical JSON, a mapping, or ``None``).  Inert plans return
    ``None`` and leave the world completely untouched — no events
    scheduled, no RNG stream created, no counters registered.
    """
    plan = MobilityPlan.from_param(plan)
    if not plan.is_active:
        return None
    return MobilityDriver(testbed, plan)
