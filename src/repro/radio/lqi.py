"""LQI (Link Quality Indicator) model.

Per 802.15.4 and the CC2420 implementation the paper describes, LQI is
derived from the average chip correlation of the first eight symbols after
the SFD: roughly 110 for the cleanest receivable frames down to about 50
at the decode limit.  Unlike RSSI, LQI responds to *signal quality* (i.e.
SINR), not raw strength — a strong frame hit by interference reports a low
LQI but a high RSSI.  We therefore map SINR through a saturating curve
fitted to the empirical CC2420 correlator behaviour.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.rng import RngRegistry

__all__ = ["LQI_MIN", "LQI_MAX", "LqiModel", "lqi_from_sinr"]

#: Correlator bounds the paper quotes: "around 110 indicates the highest
#: quality while a value of 50 the lowest".
LQI_MIN = 50
LQI_MAX = 110

#: Sigmoid fit: LQI transitions between the bounds around the PRR
#: waterfall (−3..+1 dB for this link model), saturating above ~12 dB —
#: so frames that barely decode report LQI in the 60s-80s and clean links
#: report the paper's 103-110 range.
_MIDPOINT_DB = 0.0
_SLOPE = 0.5


def lqi_from_sinr(sinr_db: float) -> float:
    """Noise-free expected LQI at a given SINR (continuous value)."""
    frac = 1.0 / (1.0 + math.exp(-_SLOPE * (sinr_db - _MIDPOINT_DB)))
    return LQI_MIN + (LQI_MAX - LQI_MIN) * frac


class LqiModel:
    """Produces noisy integer LQI values in [LQI_MIN, LQI_MAX]."""

    def __init__(self, rng: RngRegistry, noise_sigma: float = 1.5):
        if noise_sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        self.noise_sigma = float(noise_sigma)
        self._rng = rng.stream("radio.lqi")

    def reading(self, sinr_db: float) -> int:
        """One measured LQI value for a frame received at ``sinr_db``."""
        value = lqi_from_sinr(sinr_db)
        if self.noise_sigma > 0:
            value += float(self._rng.normal(0.0, self.noise_sigma))
        return int(min(LQI_MAX, max(LQI_MIN, round(value))))

    def readings(self, sinrs_db: np.ndarray) -> list[int]:
        """LQI values for many frames, one batched noise draw.

        Stream-equivalent to ``len(sinrs_db)`` scalar :meth:`reading`
        calls (a Generator fills arrays from the same bitstream), and the
        sigmoid is evaluated with ``math.exp`` per element so the values
        match the scalar path bit-for-bit.
        """
        n = len(sinrs_db)
        if n == 0:
            return []
        values = [lqi_from_sinr(s) for s in np.asarray(sinrs_db).tolist()]
        if self.noise_sigma > 0:
            noise = self._rng.normal(0.0, self.noise_sigma, size=n)
            values = [v + float(d) for v, d in zip(values, noise)]
        return [int(min(LQI_MAX, max(LQI_MIN, round(v)))) for v in values]
