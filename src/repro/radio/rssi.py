"""RSSI register model.

The CC2420 reports RSSI as a signed 8-bit register value averaged over the
first eight symbol periods (128 µs) of a frame; the RF input power is
``RSSI_VAL + RSSI_OFFSET`` with an offset of approximately −45 dBm.  The
paper reports raw register readings (e.g. ``RSSI = -20`` ≈ −65 dBm), so
LiteView results carry register values and this module converts both ways.
"""

from __future__ import annotations

import numpy as np

from repro.radio.cc2420 import RSSI_OFFSET_DBM
from repro.sim.rng import RngRegistry

__all__ = ["RssiModel", "reading_to_dbm", "dbm_to_reading"]

#: Register value bounds (signed byte, further limited by the detector's
#: useful dynamic range per the datasheet).
_MIN_READING = -128
_MAX_READING = 127


def dbm_to_reading(power_dbm: float) -> int:
    """Exact register value for an RF input power (no measurement noise)."""
    value = round(float(power_dbm) - RSSI_OFFSET_DBM)
    if value < _MIN_READING:
        return _MIN_READING
    if value > _MAX_READING:
        return _MAX_READING
    return value


def reading_to_dbm(reading: int) -> float:
    """RF input power implied by a register reading."""
    return float(reading) + RSSI_OFFSET_DBM


class RssiModel:
    """Produces noisy, quantised RSSI register readings.

    The eight-symbol average leaves ~1 dB of measurement noise on real
    hardware; we model it as a Gaussian draw before quantisation.
    """

    def __init__(self, rng: RngRegistry, noise_sigma_db: float = 1.0):
        if noise_sigma_db < 0:
            raise ValueError("noise sigma must be non-negative")
        self.noise_sigma_db = float(noise_sigma_db)
        self._rng = rng.stream("radio.rssi")

    def reading(self, received_power_dbm: float) -> int:
        """One measured register value for a frame at this input power."""
        noisy = received_power_dbm
        if self.noise_sigma_db > 0:
            noisy += float(self._rng.normal(0.0, self.noise_sigma_db))
        return dbm_to_reading(noisy)

    def readings(self, received_powers_dbm: np.ndarray) -> list[int]:
        """Register values for many frames, one batched noise draw.

        A numpy Generator fills an array from the same bitstream as
        repeated scalar draws, so this consumes exactly what ``len(...)``
        calls to :meth:`reading` would.
        """
        n = len(received_powers_dbm)
        if n == 0:
            return []
        noisy = np.asarray(received_powers_dbm, dtype=float)
        if self.noise_sigma_db > 0:
            noisy = noisy + self._rng.normal(0.0, self.noise_sigma_db, size=n)
        return [dbm_to_reading(p) for p in noisy.tolist()]
