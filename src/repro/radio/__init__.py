"""CC2420 PHY substrate: chip model, propagation, link model, medium."""

from repro.radio.cc2420 import (
    CCA_THRESHOLD_DBM,
    MAX_CHANNEL,
    MAX_POWER_LEVEL,
    MIN_CHANNEL,
    MIN_POWER_LEVEL,
    NOISE_FLOOR_DBM,
    NUM_CHANNELS,
    RSSI_OFFSET_DBM,
    SENSITIVITY_DBM,
    RadioConfig,
    channel_frequency_mhz,
    power_level_to_dbm,
)
from repro.radio.lqi import LQI_MAX, LQI_MIN, LqiModel, lqi_from_sinr
from repro.radio.medium import (
    RANGE_MARGIN_SIGMAS,
    FrameArrival,
    RadioMedium,
    Transceiver,
)
from repro.radio.mobility import (
    MOBILITY_KINDS,
    LinearDrift,
    MobilityDriver,
    MobilityModel,
    MobilityPlan,
    MobilitySpec,
    RandomWaypoint,
    Waypoint,
    install_mobility,
)
from repro.radio.partition import PartitionedMedium
from repro.radio.modulation import (
    bit_error_rate,
    packet_reception_ratio,
    snr_db_for_prr,
)
from repro.radio.propagation import LogDistancePropagation, distance_matrix
from repro.radio.rssi import RssiModel, dbm_to_reading, reading_to_dbm
from repro.radio.spatial import SpatialGrid

__all__ = [
    "RadioConfig",
    "power_level_to_dbm",
    "channel_frequency_mhz",
    "MIN_POWER_LEVEL",
    "MAX_POWER_LEVEL",
    "MIN_CHANNEL",
    "MAX_CHANNEL",
    "NUM_CHANNELS",
    "RSSI_OFFSET_DBM",
    "SENSITIVITY_DBM",
    "NOISE_FLOOR_DBM",
    "CCA_THRESHOLD_DBM",
    "LogDistancePropagation",
    "distance_matrix",
    "bit_error_rate",
    "packet_reception_ratio",
    "snr_db_for_prr",
    "RssiModel",
    "dbm_to_reading",
    "reading_to_dbm",
    "LqiModel",
    "lqi_from_sinr",
    "LQI_MIN",
    "LQI_MAX",
    "RadioMedium",
    "PartitionedMedium",
    "MOBILITY_KINDS",
    "MobilitySpec",
    "MobilityPlan",
    "MobilityModel",
    "LinearDrift",
    "Waypoint",
    "RandomWaypoint",
    "MobilityDriver",
    "install_mobility",
    "SpatialGrid",
    "RANGE_MARGIN_SIGMAS",
    "Transceiver",
    "FrameArrival",
]
