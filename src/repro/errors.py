"""Exception hierarchy for the LiteView reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ProcessInterrupt",
    "RadioError",
    "InvalidPowerLevel",
    "InvalidChannel",
    "MacError",
    "QueueOverflow",
    "PacketError",
    "CrcError",
    "HeaderError",
    "PaddingOverflow",
    "PortError",
    "PortInUse",
    "NoSuchPort",
    "RoutingError",
    "NoRoute",
    "TtlExpired",
    "KernelError",
    "MemoryBudgetExceeded",
    "NoSuchNode",
    "NoSuchSyscall",
    "NeighborTableFull",
    "CommandError",
    "UnknownCommand",
    "ParameterError",
    "CommandTimeout",
    "ReliableTransferError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# --------------------------------------------------------------------------
# Simulation substrate
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """Misuse of the discrete-event engine (double trigger, bad yield, ...)."""


class ProcessInterrupt(ReproError):
    """Thrown *into* a simulated process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# --------------------------------------------------------------------------
# Radio / PHY
# --------------------------------------------------------------------------

class RadioError(ReproError):
    """Base class for PHY-level configuration or modelling errors."""


class InvalidPowerLevel(RadioError):
    """PA level outside the CC2420 register range 0..31."""


class InvalidChannel(RadioError):
    """Channel outside the 802.15.4 2.4 GHz range 11..26."""


# --------------------------------------------------------------------------
# MAC
# --------------------------------------------------------------------------

class MacError(ReproError):
    """Base class for MAC-layer errors."""


class QueueOverflow(MacError):
    """The MAC transmit queue rejected a frame because it is full."""


# --------------------------------------------------------------------------
# Packets and the port-based stack
# --------------------------------------------------------------------------

class PacketError(ReproError):
    """Base class for packet construction / parsing errors."""


class CrcError(PacketError):
    """CRC check failed on a received packet."""


class HeaderError(PacketError):
    """Malformed or inconsistent packet header."""


class PaddingOverflow(PacketError):
    """Link-quality padding region exhausted (too many hops recorded)."""


class PortError(ReproError):
    """Base class for port-map errors."""


class PortInUse(PortError):
    """A subscription already exists for this port."""


class NoSuchPort(PortError):
    """Dispatch attempted to a port with no subscriber."""


# --------------------------------------------------------------------------
# Routing
# --------------------------------------------------------------------------

class RoutingError(ReproError):
    """Base class for routing-protocol errors."""


class NoRoute(RoutingError):
    """The protocol could not make forwarding progress toward the target."""


class TtlExpired(RoutingError):
    """A packet exceeded its hop budget."""


# --------------------------------------------------------------------------
# Kernel (LiteOS model)
# --------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for kernel-level errors."""


class MemoryBudgetExceeded(KernelError):
    """Installing a command would exceed the node's flash/RAM budget."""


class NoSuchNode(KernelError):
    """A node name or address does not resolve in the testbed namespace."""


class NoSuchSyscall(KernelError):
    """A thread invoked an unregistered system call."""


class NeighborTableFull(KernelError):
    """The kernel neighbor table has no evictable slot left."""


# --------------------------------------------------------------------------
# LiteView commands
# --------------------------------------------------------------------------

class CommandError(ReproError):
    """Base class for command-interpreter errors."""


class UnknownCommand(CommandError):
    """The shell line does not name a registered command."""


class ParameterError(CommandError):
    """Bad or missing command parameter (e.g. ``round=abc``)."""


class CommandTimeout(CommandError):
    """A command did not complete within its response window."""


# --------------------------------------------------------------------------
# Reliable one-hop protocol (§IV-B)
# --------------------------------------------------------------------------

class ReliableTransferError(ReproError):
    """A reliable transfer exhausted its retry budget.

    Raised (never returned) so a dead link surfaces as a typed failure
    instead of a silent ``False`` — callers either translate it into
    their own timeout semantics or let it propagate loudly.

    Attributes
    ----------
    dest:
        The unreachable peer.
    attempts:
        Consecutive attempts made without progress before giving up.
    pending:
        Chunks still unacknowledged when the budget ran out.
    total:
        Total chunks in the transfer.
    backoff_delays:
        The ack deadline (seconds) used by each attempt, in order —
        monotone non-decreasing across a stall run by construction.
    """

    def __init__(self, dest: int, attempts: int, pending: int, total: int,
                 backoff_delays: tuple = ()):  # type: ignore[type-arg]
        super().__init__(
            f"reliable transfer to node {dest} abandoned after "
            f"{attempts} attempts ({pending}/{total} chunks outstanding)"
        )
        self.dest = dest
        self.attempts = attempts
        self.pending = pending
        self.total = total
        self.backoff_delays = tuple(backoff_delays)
