"""ETX collection-tree routing: the classic WSN data-gathering pattern.

A proactive tree rooted at a designated sink, in the style of MintRoute/
CTP: the root beacons cost 0, every other node picks the parent that
minimises *path ETX* — the expected number of transmissions to reach the
root, estimated from the kernel neighbor table's beacon delivery ratio —
and advertises its own cost.  Data flows strictly upward.

Two roles in the reproduction:

* a third full routing protocol for the §IV-A.1 protocol-independence
  story (ping/traceroute toward the sink work unchanged via ``port=``);
* the ETX-vs-hop-count contrast: unlike DSDV's hop metric, the tree
  prefers two good links over one marginal one, which is exactly the
  link-quality-awareness the LiteView observables exist to support.

Only root-bound traffic is routable ("collection"); packets for any
other destination get ``no_route``, which is honest to the pattern.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProcessInterrupt
from repro.net.packet import ANY_NODE, Packet
from repro.net.routing.base import RoutingProtocol
from repro.radio.medium import FrameArrival

__all__ = ["TreeRouting", "TREE_PORT", "MSG_COST_ADVERT"]

#: Default port for the collection tree.
TREE_PORT = 13

MSG_COST_ADVERT = 0x20

_ADVERT_FMT = ">BH"  # msg type, path cost (ETX x 10, saturating)

#: Cost value meaning "no route to root".
INFINITE_COST = 0xFFFF


@dataclass
class ParentLink:
    """The current parent and the cost it advertised."""

    parent: int
    advertised_cost: int  # parent's path ETX x 10
    link_etx10: int       # our link to the parent, ETX x 10
    updated_at: float

    @property
    def path_cost(self) -> int:
        return min(INFINITE_COST, self.advertised_cost + self.link_etx10)


class TreeRouting(RoutingProtocol):
    """ETX collection tree on port 13."""

    protocol_kind = "tree"

    def __init__(self, node, port: int = TREE_PORT, name: str = "tree",
                 root: int | None = None,
                 advert_interval: float = 5.0,
                 parent_lifetime_factor: float = 3.5):
        super().__init__(node, port, name)
        if advert_interval <= 0:
            raise ValueError("advert interval must be positive")
        #: The sink this tree collects toward.
        self.root = node.id if root is None else int(root)
        self.advert_interval = float(advert_interval)
        self.parent_lifetime = parent_lifetime_factor * advert_interval
        self._parent: ParentLink | None = None
        self._jitter_rng = node.rng.stream(f"tree.jitter.{node.id}")
        self._advert_process = node.env.process(
            self._advert_loop(), name=f"tree-advert-{node.id}"
        )

    # -- state inspection ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """Whether this node is the collection sink."""
        return self.node.id == self.root

    def parent(self) -> int | None:
        """Current parent toward the root (None when detached)."""
        self._expire()
        return self._parent.parent if self._parent else None

    def path_cost10(self) -> int:
        """Own path ETX x 10 (0 at the root, INFINITE when detached)."""
        if self.is_root:
            return 0
        self._expire()
        return self._parent.path_cost if self._parent else INFINITE_COST

    # -- forwarding -------------------------------------------------------------

    def next_hop(self, packet: Packet) -> int | None:
        if packet.dest != self.root:
            return None  # collection trees only route to the sink
        if self.is_root:
            return None
        parent = self.parent()
        if parent is None or self.node.neighbors.is_blacklisted(parent):
            return None
        return parent

    # -- cost adverts ------------------------------------------------------------

    def _advert_loop(self):
        try:
            yield self.node.env.timeout(
                float(self._jitter_rng.uniform(0.0, self.advert_interval))
            )
            while True:
                self._broadcast_cost()
                jitter = float(self._jitter_rng.uniform(-0.1, 0.1))
                yield self.node.env.timeout(
                    self.advert_interval * (1 + jitter)
                )
        except ProcessInterrupt:
            return

    def _broadcast_cost(self) -> None:
        cost = self.path_cost10()
        if cost >= INFINITE_COST and not self.is_root:
            return  # nothing useful to advertise while detached
        payload = struct.pack(_ADVERT_FMT, MSG_COST_ADVERT, cost)
        packet = Packet(port=self.port, origin=self.node.id,
                        dest=ANY_NODE, payload=payload, ttl=1)
        self.node.stack.broadcast(packet, kind="tree-advert")
        self.node.monitor.count("tree.adverts_sent")

    def _handle_control(self, msg_type: int, packet: Packet,
                        arrival: FrameArrival | None) -> None:
        if msg_type != MSG_COST_ADVERT or arrival is None:
            self.node.monitor.count("routing.unknown_control")
            return
        if self.is_root:
            return
        try:
            _type, advertised = struct.unpack_from(
                _ADVERT_FMT, packet.payload)
        except struct.error:
            self.node.monitor.count("tree.malformed_adverts")
            return
        self.node.monitor.count("tree.adverts_received")
        neighbor = arrival.sender
        entry = self.node.neighbors.lookup(neighbor)
        if entry is None or not entry.enabled:
            return
        link_etx10 = self._link_etx10(entry)
        candidate = ParentLink(
            parent=neighbor, advertised_cost=advertised,
            link_etx10=link_etx10, updated_at=self.node.env.now,
        )
        self._expire()
        current = self._parent
        if current is None or candidate.path_cost < current.path_cost or \
                current.parent == neighbor:
            # Adopt strictly better parents; refresh the current one on
            # every advert (its freshness, and any cost change, matter).
            self._parent = candidate

    @staticmethod
    def _link_etx10(entry) -> int:
        """Link ETX x 10 from the neighbor table's beacon PRR estimate.

        ETX = 1 / (PRR_fwd * PRR_bwd); with only the inbound PRR
        observable we use the standard single-direction approximation
        ETX ≈ 1 / PRR², floored to avoid division blow-ups.
        """
        prr = max(0.1, min(1.0, entry.prr_estimate))
        return min(INFINITE_COST, int(round(10.0 / (prr * prr))))

    def _expire(self) -> None:
        if (self._parent is not None
                and self.node.env.now - self._parent.updated_at
                > self.parent_lifetime):
            self._parent = None
            self.node.monitor.count("tree.parent_expired")

    def stop(self) -> None:
        self._advert_process.interrupt("protocol stopped")
        super().stop()
