"""Greedy geographic forwarding — the protocol of the paper's traceroute
example ("we let the geographic forwarding protocol listen on the port
number 10").

Each hop forwards to the usable neighbor that is geometrically closest to
the destination, provided that neighbor makes strict progress.  Neighbor
positions come from kernel beacons (the neighbor table); the destination's
position comes from the node's location lookup.  Greedy failure — no
neighbor closer than ourselves — drops the packet with a ``no_route``
count, the honest mote behaviour (we deliberately do not implement
perimeter recovery; the paper's protocol does not either).
"""

from __future__ import annotations

import math

from repro.net.packet import ANY_NODE, Packet
from repro.net.ports import WellKnownPorts
from repro.net.routing.base import RoutingProtocol

__all__ = ["GeographicForwarding"]


class GeographicForwarding(RoutingProtocol):
    """Greedy geographic routing on the paper's port 10.

    ``min_lqi`` filters forwarding candidates by their beacon-estimated
    link quality: greedy progress over a barely-audible fringe neighbor
    loses more to retransmission-free packet loss than it gains in
    distance, so (like production geographic stacks) we only route over
    links whose EWMA LQI clears a floor.  The destination itself is always
    eligible as a last hop, whatever its quality — there is no alternative.
    """

    protocol_kind = "geographic"

    def __init__(self, node, port: int = WellKnownPorts.GEOGRAPHIC,
                 name: str = "geographic forwarding",
                 min_lqi: float = 90.0):
        super().__init__(node, port, name)
        self.min_lqi = float(min_lqi)

    def next_hop(self, packet: Packet) -> int | None:
        dest = packet.dest
        if dest == ANY_NODE:
            return None  # greedy routing has no notion of "everywhere"
        neighbors = self.node.neighbors.usable()
        dest_pos = self.node.lookup_position(dest)
        if dest_pos is None:
            return None
        my_distance = _distance(self.node.position, dest_pos)
        best_id: int | None = None
        best_distance = my_distance
        for entry in neighbors:
            if entry.position is None or entry.lqi < self.min_lqi:
                continue
            # The destination itself scores distance 0 and wins outright.
            d = 0.0 if entry.node_id == dest else _distance(
                entry.position, dest_pos
            )
            if d < best_distance - 1e-12:
                best_distance = d
                best_id = entry.node_id
        if best_id is not None:
            return best_id
        # Last resort: a fringe-quality direct link to the destination
        # beats dropping the packet.
        for entry in neighbors:
            if entry.node_id == dest:
                return dest
        return None


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
