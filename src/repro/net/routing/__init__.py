"""Routing protocols: port-isolated, runtime-selectable (§IV-A.1)."""

from repro.net.routing.base import MSG_DATA, RoutingProtocol
from repro.net.routing.dsdv import DsdvRouting, Route
from repro.net.routing.flooding import FloodingProtocol
from repro.net.routing.geographic import GeographicForwarding
from repro.net.routing.tree import TREE_PORT, TreeRouting

__all__ = [
    "RoutingProtocol",
    "MSG_DATA",
    "GeographicForwarding",
    "FloodingProtocol",
    "DsdvRouting",
    "Route",
    "TreeRouting",
    "TREE_PORT",
]
