"""Controlled flooding: sequence-number-deduplicated rebroadcast.

The simplest protocol that can carry ping/traceroute traffic — useful as
a baseline in the protocol-comparison experiment (§IV-A.1: users "may
install each protocol sequentially, and measure the protocol
performance") and as the delivery mechanism of last resort when greedy
geographic forwarding gets stuck.

Every node rebroadcasts each packet it has not seen before, until the TTL
budget runs out.  Duplicate suppression is a bounded LRU of (origin, seq)
pairs, sized for mote-class memory.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mac.frame import BROADCAST
from repro.net.packet import ANY_NODE, Packet
from repro.net.ports import WellKnownPorts
from repro.net.routing.base import MSG_DATA, RoutingProtocol
from repro.radio.medium import FrameArrival

__all__ = ["FloodingProtocol"]

#: Default hop budget for floods (chains in the paper's testbed are 8 hops).
DEFAULT_FLOOD_TTL = 10


class FloodingProtocol(RoutingProtocol):
    """Dedup-controlled flooding on port 12."""

    protocol_kind = "flood"

    def __init__(self, node, port: int = WellKnownPorts.FLOODING,
                 name: str = "flooding", dedup_capacity: int = 64,
                 forward_jitter: float = 0.02):
        super().__init__(node, port, name)
        if dedup_capacity < 1:
            raise ValueError("dedup capacity must be >= 1")
        self._seen: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._dedup_capacity = dedup_capacity
        #: Max random delay before rebroadcasting.  Without it every node
        #: that heard a packet rebroadcasts within one CSMA backoff window
        #: and the flood's second generation collides with itself.
        self.forward_jitter = float(forward_jitter)
        self._jitter_rng = node.rng.stream(f"flood.jitter.{node.id}")

    def send(self, dest: int, inner_port: int, payload: bytes = b"", *,
             padding: bool = False, ttl: int = DEFAULT_FLOOD_TTL,
             kind: str | None = None,
             initial_quality=None) -> bool:
        return super().send(dest, inner_port, payload, padding=padding,
                            ttl=ttl, kind=kind,
                            initial_quality=initial_quality)

    # -- dedup ------------------------------------------------------------

    def _already_seen(self, packet: Packet) -> bool:
        key = (packet.origin, packet.seq)
        if key in self._seen:
            self._seen.move_to_end(key)
            return True
        self._seen[key] = None
        if len(self._seen) > self._dedup_capacity:
            self._seen.popitem(last=False)
        return False

    # -- receive/forward -------------------------------------------------------

    def _on_packet(self, packet: Packet, arrival: FrameArrival | None) -> None:
        monitor = self.node.monitor
        if arrival is not None and self.node.neighbors.is_blacklisted(
                arrival.sender):
            monitor.count("routing.blacklist_drops")
            self._trace_drop(packet, "blacklisted", sender=arrival.sender)
            return
        msg_type = packet.payload[0] if packet.payload else MSG_DATA
        if msg_type != MSG_DATA:
            self._handle_control(msg_type, packet, arrival)
            return
        if self._already_seen(packet):
            monitor.count("flood.duplicates")
            self._trace_drop(packet, "duplicate")
            return
        if arrival is not None and packet.padding_enabled:
            try:
                packet.add_hop_quality(arrival.lqi, arrival.rssi)
            except Exception:
                monitor.count("routing.padding_drops")
                self._trace_drop(packet, "padding_overflow")
                return
        if packet.dest in (self.node.id, ANY_NODE):
            self._deliver(packet, arrival)
            if packet.dest != ANY_NODE:
                return
        # Not (only) for us: keep the flood going while TTL lasts.  The
        # origin's first transmission goes out immediately (via send());
        # rebroadcasts at intermediate hops are jittered to desynchronise
        # the flood generations.
        if arrival is None or self.forward_jitter <= 0:
            self._forward(packet, kind=self.protocol_kind)
        else:
            self.node.env.process(
                self._jittered_forward(packet),
                name=f"flood-fwd-{self.node.id}",
            )

    def _jittered_forward(self, packet: Packet):
        yield self.node.env.timeout(
            float(self._jitter_rng.uniform(0.0, self.forward_jitter))
        )
        self._forward(packet, kind=self.protocol_kind)

    def next_hop(self, packet: Packet) -> int | None:
        return BROADCAST
