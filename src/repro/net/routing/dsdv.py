"""DSDV-style distance-vector routing.

A proactive protocol in the spirit of the destination-sequenced
distance-vector family: every node periodically broadcasts its routing
table (one-hop adverts), neighbors run the Bellman-Ford update, and
destination-issued sequence numbers keep the tables loop-free.  It is the
second full routing protocol of the toolkit, demonstrating the paper's
protocol-independence claim: ping and traceroute run over it by changing
one ``port=`` parameter, with no other code involved.

Advert payload layout (one-hop broadcast, ``dest = ANY_NODE``, ttl 1)::

    msg_type  1 B    MSG_ADVERT
    count     1 B
    entries   count * (dest 2 B | metric 1 B | seq 2 B)

With the 64-byte payload region this caps at 12 entries per advert;
larger tables are split across several adverts per round.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.packet import ANY_NODE, Packet
from repro.net.ports import WellKnownPorts
from repro.net.routing.base import RoutingProtocol
from repro.radio.medium import FrameArrival

__all__ = ["DsdvRouting", "Route", "MSG_ADVERT"]

MSG_ADVERT = 0x10

_ENTRY_FMT = ">HBH"
_ENTRY_BYTES = struct.calcsize(_ENTRY_FMT)
#: payload region (64) minus msg_type and count bytes, per advert.
MAX_ENTRIES_PER_ADVERT = (64 - 2) // _ENTRY_BYTES

#: Metric value meaning "unreachable".
INFINITE_METRIC = 255


@dataclass
class Route:
    """One routing-table entry."""

    dest: int
    next_hop: int
    metric: int
    seq: int
    updated_at: float


class DsdvRouting(RoutingProtocol):
    """Proactive distance-vector routing on port 11."""

    protocol_kind = "dsdv"

    def __init__(self, node, port: int = WellKnownPorts.DSDV,
                 name: str = "dsdv",
                 advert_interval: float = 5.0,
                 route_lifetime_factor: float = 3.5,
                 min_lqi: float = 90.0):
        super().__init__(node, port, name)
        if advert_interval <= 0:
            raise ValueError("advert interval must be positive")
        self.advert_interval = float(advert_interval)
        #: Adverts heard below this LQI are ignored: learning a route over
        #: a fringe link trades one hop of metric for heavy silent loss
        #: (hop-count metrics famously prefer long bad links otherwise).
        self.min_lqi = float(min_lqi)
        self.route_lifetime = route_lifetime_factor * self.advert_interval
        self._table: dict[int, Route] = {}
        self._own_seq = 0
        self._jitter_rng = node.rng.stream(f"dsdv.jitter.{node.id}")
        self._advert_process = node.env.process(
            self._advert_loop(), name=f"dsdv-advert-{node.id}"
        )

    # -- table inspection ---------------------------------------------------

    def routes(self) -> list[Route]:
        """A snapshot of live routing-table entries."""
        self._expire()
        return sorted(self._table.values(), key=lambda r: r.dest)

    def route_to(self, dest: int) -> Route | None:
        """The live route toward ``dest``, if any."""
        self._expire()
        return self._table.get(dest)

    # -- forwarding ---------------------------------------------------------------

    def next_hop(self, packet: Packet) -> int | None:
        dest = packet.dest
        if dest == ANY_NODE:
            return None
        direct = None
        for entry in self.node.neighbors.usable():
            if entry.node_id == dest:
                if entry.lqi >= self.min_lqi:
                    return dest  # a good direct link always wins
                direct = dest   # fringe direct link: fallback only
        route = self.route_to(dest)
        if (route is not None and route.metric < INFINITE_METRIC
                and not self.node.neighbors.is_blacklisted(route.next_hop)):
            return route.next_hop
        return direct

    # -- advertising ---------------------------------------------------------------

    def _advert_loop(self):
        from repro.errors import ProcessInterrupt
        try:
            # Desynchronise nodes so adverts do not all collide forever.
            yield self.node.env.timeout(
                float(self._jitter_rng.uniform(0.0, self.advert_interval))
            )
            while True:
                self._broadcast_table()
                jitter = float(self._jitter_rng.uniform(-0.1, 0.1))
                yield self.node.env.timeout(
                    self.advert_interval * (1 + jitter)
                )
        except ProcessInterrupt:
            return  # protocol stopped

    def _broadcast_table(self) -> None:
        self._own_seq = (self._own_seq + 2) & 0xFFFF
        self._expire()
        entries = [(self.node.id, 0, self._own_seq)]
        entries.extend(
            (r.dest, r.metric, r.seq) for r in self._table.values()
        )
        for start in range(0, len(entries), MAX_ENTRIES_PER_ADVERT):
            chunk = entries[start:start + MAX_ENTRIES_PER_ADVERT]
            payload = bytes([MSG_ADVERT, len(chunk)]) + b"".join(
                struct.pack(_ENTRY_FMT, d, m, s) for d, m, s in chunk
            )
            packet = Packet(
                port=self.port, origin=self.node.id, dest=ANY_NODE,
                payload=payload, ttl=1,
            )
            self.node.stack.broadcast(packet, kind="dsdv-advert")
            self.node.monitor.count("dsdv.adverts_sent")

    # -- table updates -----------------------------------------------------------

    def _handle_control(self, msg_type: int, packet: Packet,
                        arrival: FrameArrival | None) -> None:
        if msg_type != MSG_ADVERT or arrival is None:
            self.node.monitor.count("routing.unknown_control")
            return
        if arrival.lqi < self.min_lqi:
            self.node.monitor.count("dsdv.fringe_adverts_ignored")
            return
        neighbor = arrival.sender
        try:
            entries = _parse_advert(packet.payload)
        except (struct.error, ValueError):
            self.node.monitor.count("dsdv.malformed_adverts")
            return
        self.node.monitor.count("dsdv.adverts_received")
        now = self.node.env.now
        for dest, metric, seq in entries:
            if dest == self.node.id:
                continue
            new_metric = min(metric + 1, INFINITE_METRIC)
            current = self._table.get(dest)
            # A route stays alive only on destination-issued freshness
            # (newer seq) or a strict improvement.  Deliberately *not*
            # refreshed on same-seq re-adverts from the current next hop:
            # that mutual-refresh loop keeps routes to dead nodes alive
            # forever (the count-to-infinity variant of route staleness).
            accept = (
                current is None
                or _seq_newer(seq, current.seq)
                or (seq == current.seq and new_metric < current.metric)
            )
            if accept:
                self._table[dest] = Route(
                    dest=dest, next_hop=neighbor, metric=new_metric,
                    seq=seq, updated_at=now,
                )

    def _expire(self) -> None:
        now = self.node.env.now
        stale = [d for d, r in self._table.items()
                 if now - r.updated_at > self.route_lifetime]
        for dest in stale:
            del self._table[dest]
            self.node.monitor.count("dsdv.routes_expired")

    def stop(self) -> None:
        self._advert_process.interrupt("protocol stopped")
        super().stop()


def _parse_advert(payload: bytes) -> list[tuple[int, int, int]]:
    if len(payload) < 2:
        raise ValueError("advert too short")
    count = payload[1]
    expected = 2 + count * _ENTRY_BYTES
    if len(payload) != expected:
        raise ValueError(
            f"advert length {len(payload)} does not match count {count}"
        )
    return [
        struct.unpack_from(_ENTRY_FMT, payload, 2 + i * _ENTRY_BYTES)
        for i in range(count)
    ]


def _seq_newer(a: int, b: int) -> bool:
    """Is sequence number ``a`` newer than ``b`` (mod-2^16 wraparound)?"""
    return ((a - b) & 0xFFFF) < 0x8000 and a != b
