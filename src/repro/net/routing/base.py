"""Routing-protocol framework: port-isolated, padding-aware forwarding.

Every routing protocol is a subscriber on its own port (the paper's
traceroute example: "we let the geographic forwarding protocol listen on
the port number 10").  Applications hand a payload and an *inner port* to
a protocol; the protocol wraps it, moves it hop by hop, and at the final
destination re-dispatches it on the inner port.  Protocols therefore need
zero knowledge of the applications above them and vice versa — the
paper's "complete isolation between the command module and the protocol
module", which is what lets ping/traceroute switch protocols at runtime
via a ``port=`` parameter.

Routed payload layout::

    msg_type    1 B   MSG_DATA for application traffic; protocols may
                      define further types (e.g. DSDV route adverts)
    inner_port  1 B   (MSG_DATA only) port to dispatch at the destination
    body        rest

Link-quality padding (§IV-C.3) is applied here, at each receiving hop,
before any forwarding decision: when a packet has padding enabled, the
incoming link's (LQI, RSSI) pair is appended to the padding region.
"""

from __future__ import annotations

import abc
import typing as _t
from dataclasses import replace

from repro.errors import PaddingOverflow
from repro.net.packet import ANY_NODE, DEFAULT_TTL, Packet
from repro.net.padding import PAYLOAD_REGION_BYTES
from repro.obs.trace import packet_trace_id
from repro.radio.medium import FrameArrival

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["RoutingProtocol", "MSG_DATA"]

#: First payload byte of application traffic.
MSG_DATA = 0x00

#: Bytes the routing layer steals from the payload region (msg type +
#: inner port).
ROUTING_OVERHEAD_BYTES = 2


class RoutingProtocol(abc.ABC):
    """Base class wiring a protocol into a node's stack and neighbor table."""

    #: Monitor label for frames this protocol originates on its own behalf.
    protocol_kind = "routing"

    def __init__(self, node: "SensorNode", port: int,
                 name: str | None = None):
        self.node = node
        self.port = port
        self.name = name or type(self).__name__
        self._seq = 0
        self._subscription = node.stack.ports.subscribe(
            port, self._on_packet, name=self.name
        )

    # -- public API -----------------------------------------------------------

    @property
    def max_payload(self) -> int:
        """Largest application payload this protocol can carry."""
        return PAYLOAD_REGION_BYTES - ROUTING_OVERHEAD_BYTES

    def send(self, dest: int, inner_port: int, payload: bytes = b"", *,
             padding: bool = False, ttl: int = DEFAULT_TTL,
             kind: str | None = None,
             initial_quality: _t.Sequence | None = None) -> bool:
        """Route ``payload`` to the process on ``inner_port`` at ``dest``.

        ``initial_quality`` pre-seeds the padding region with hop-quality
        entries already collected — the multi-hop ping reply uses it to
        carry the probe's forward-path record back, letting one padding
        region accumulate over the whole round trip (the paper's "a
        packet could at most travel 24 hops").

        Returns False when no forwarding progress could be made (no route,
        MAC queue full, ...).  Loss en route is silent, as on real motes —
        reliability belongs to the layers above.
        """
        if not 0 <= inner_port <= 255:
            raise ValueError(f"inner port {inner_port} outside 0..255")
        if len(payload) > self.max_payload:
            raise ValueError(
                f"payload {len(payload)} B exceeds the protocol limit of "
                f"{self.max_payload} B"
            )
        self._seq = (self._seq + 1) & 0xFFFF
        packet = Packet(
            port=self.port, origin=self.node.id, dest=dest,
            payload=bytes([MSG_DATA, inner_port]) + payload,
            seq=self._seq, ttl=ttl, padding_enabled=padding,
            hop_quality=list(initial_quality or ()),
        )
        if packet.padding_room < 0:
            raise ValueError(
                "payload plus seeded padding exceed the payload region"
            )
        if dest == self.node.id:
            # Localhost path: no radio involved.
            return self._deliver(packet, None)
        return self._forward(packet, kind=kind or self.protocol_kind)

    def stop(self) -> None:
        """Release the port subscription (protocol uninstall)."""
        self.node.stack.ports.unsubscribe(self._subscription)

    # -- receive path ------------------------------------------------------------

    def _on_packet(self, packet: Packet, arrival: FrameArrival | None) -> None:
        monitor = self.node.monitor
        if arrival is not None:
            if self.node.neighbors.is_blacklisted(arrival.sender):
                # Blacklisting "temporarily modifies the behavior of
                # communication protocols": traffic from the neighbor is
                # ignored outright.
                monitor.count("routing.blacklist_drops")
                self._trace_drop(packet, "blacklisted", sender=arrival.sender)
                return
            if packet.padding_enabled:
                try:
                    packet.add_hop_quality(arrival.lqi, arrival.rssi)
                except PaddingOverflow:
                    monitor.count("routing.padding_drops")
                    self._trace_drop(packet, "padding_overflow")
                    return
        msg_type = packet.payload[0] if packet.payload else MSG_DATA
        if msg_type != MSG_DATA:
            self._handle_control(msg_type, packet, arrival)
            return
        if packet.dest in (self.node.id, ANY_NODE):
            self._deliver(packet, arrival)
            if packet.dest != ANY_NODE:
                return
        if packet.dest != self.node.id:
            self._forward(packet, kind=self.protocol_kind)

    def _handle_control(self, msg_type: int, packet: Packet,
                        arrival: FrameArrival | None) -> None:
        """Hook for protocol-internal messages; unknown types are counted."""
        self.node.monitor.count("routing.unknown_control")

    def _deliver(self, packet: Packet, arrival: FrameArrival | None) -> bool:
        """Unwrap a DATA packet and dispatch it on its inner port."""
        if len(packet.payload) < ROUTING_OVERHEAD_BYTES:
            self.node.monitor.count("routing.malformed_data")
            self._trace_drop(packet, "malformed_data")
            return False
        inner = replace(
            packet,
            port=packet.payload[1],
            payload=packet.payload[ROUTING_OVERHEAD_BYTES:],
            hop_quality=list(packet.hop_quality),
        )
        delivered = self.node.stack.ports.dispatch(inner, arrival)
        if not delivered:
            self.node.monitor.count("routing.undeliverable")
        tracer = self.node.env.tracer
        if tracer.enabled:
            tracer.emit("route.deliver", self.node.env.now,
                        node=self.node.id, packet=self._trace_id(packet),
                        inner_port=inner.port, accepted=delivered,
                        hop_count=packet.hop_count)
        return delivered

    # -- forwarding -----------------------------------------------------------

    def _forward(self, packet: Packet, kind: str) -> bool:
        monitor = self.node.monitor
        if packet.ttl == 0:
            monitor.count("routing.ttl_drops")
            self._trace_drop(packet, "ttl_expired")
            return False
        hop = self.next_hop(packet)
        if hop is None:
            monitor.count("routing.no_route")
            self._trace_drop(packet, "no_route")
            return False
        outgoing = packet.copy()
        outgoing.ttl -= 1
        outgoing.hop_count += 1
        tracer = self.node.env.tracer
        if tracer.enabled:
            tracer.emit("route.forward", self.node.env.now,
                        node=self.node.id, packet=self._trace_id(packet),
                        next_hop=hop, ttl=outgoing.ttl,
                        hop_count=outgoing.hop_count, protocol=self.name)
        return self.node.stack.send(outgoing, hop, kind=kind)

    # -- tracing helpers ------------------------------------------------------

    def _trace_id(self, packet: Packet) -> str:
        """Lifecycle key of a routed packet (enabled-path only)."""
        return packet_trace_id(packet.origin, packet.port, packet.seq)

    def _trace_drop(self, packet: Packet, reason: str,
                    **detail: object) -> None:
        """Emit a routing-layer drop event when tracing is on."""
        tracer = self.node.env.tracer
        if tracer.enabled:
            tracer.emit("route.drop", self.node.env.now, node=self.node.id,
                        packet=self._trace_id(packet), reason=reason,
                        protocol=self.name, **detail)

    def route_next_hop(self, dest: int) -> int | None:
        """Where this protocol would forward a fresh packet for ``dest``.

        Used by traceroute to discover the path one hop at a time without
        the protocol exposing its internals (the probe asks "who's next?"
        and then measures that link itself).
        """
        probe = Packet(port=self.port, origin=self.node.id, dest=dest)
        return self.next_hop(probe)

    @abc.abstractmethod
    def next_hop(self, packet: Packet) -> int | None:
        """The MAC address to forward ``packet`` to, or None if stuck."""
