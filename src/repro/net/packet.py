"""Network-layer packet: header, payload, padding region, CRC trailer.

Wire layout (big-endian)::

    port        1 B   destination port (process subscription key)
    origin      2 B   node that created the packet
    dest        2 B   final destination node (0xFFFF = every node)
    seq         2 B   origin-scoped sequence number
    ttl         1 B   remaining hop budget
    flags       1 B   bit 0: link-quality padding enabled
    hop_count   1 B   hops traversed so far
    payload_len 1 B   data payload length (<= 64)
    pad_count   1 B   number of (LQI, RSSI) padding entries
    payload     payload_len B
    padding     2 * pad_count B
    crc         2 B   CRC16-CCITT over everything above

The header carries both the *final* destination (routing decides next
hops; the MAC address on the frame is the next hop) and the *port*, which
is how the paper's stack achieves protocol/application isolation: "the
thread that has a match in port number is considered the right thread for
the incoming packet".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.errors import HeaderError, PaddingOverflow
from repro.net.crc import append_crc, split_and_verify
from repro.net.padding import (
    PAD_ENTRY_BYTES,
    PAYLOAD_REGION_BYTES,
    HopQuality,
    decode_entries,
    encode_entries,
)

__all__ = ["Packet", "ANY_NODE", "HEADER_BYTES", "DEFAULT_TTL"]

#: Network-level "all nodes" destination.
ANY_NODE = 0xFFFF
#: Default hop budget.
DEFAULT_TTL = 32

_HEADER_FMT = ">BHHHBBBBB"
HEADER_BYTES = struct.calcsize(_HEADER_FMT)

_FLAG_PADDING = 0x01


@dataclass
class Packet:
    """One network-layer packet.

    Instances are mutable along the forwarding path (hop count, ttl,
    padding entries) but payload bytes never change after construction.
    """

    port: int
    origin: int
    dest: int
    payload: bytes = b""
    seq: int = 0
    ttl: int = DEFAULT_TTL
    padding_enabled: bool = False
    hop_count: int = 0
    hop_quality: list[HopQuality] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 255:
            raise HeaderError(f"port {self.port} outside 0..255")
        for label, value in (("origin", self.origin), ("dest", self.dest),
                             ("seq", self.seq)):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"{label} {value} outside 0..65535")
        if not 0 <= self.ttl <= 255:
            raise HeaderError(f"ttl {self.ttl} outside 0..255")
        if not 0 <= self.hop_count <= 255:
            raise HeaderError(f"hop_count {self.hop_count} outside 0..255")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise HeaderError("payload must be bytes")
        self.payload = bytes(self.payload)
        if len(self.payload) > PAYLOAD_REGION_BYTES:
            raise HeaderError(
                f"payload {len(self.payload)} B exceeds the "
                f"{PAYLOAD_REGION_BYTES} B payload region"
            )

    # -- padding ------------------------------------------------------------

    @property
    def padding_room(self) -> int:
        """How many more hops the padding region can still record."""
        free = (PAYLOAD_REGION_BYTES - len(self.payload)
                - PAD_ENTRY_BYTES * len(self.hop_quality))
        return free // PAD_ENTRY_BYTES

    def add_hop_quality(self, lqi: int, rssi: int) -> None:
        """Append one hop's (LQI, RSSI) pair to the padding region.

        Raises :class:`PaddingOverflow` when the 64-byte region is
        exhausted — the hop-budget limit §IV-C.3 describes.
        """
        if not self.padding_enabled:
            raise PaddingOverflow("padding is not enabled on this packet")
        if self.padding_room <= 0:
            raise PaddingOverflow(
                f"padding region full after {len(self.hop_quality)} hops "
                f"(payload {len(self.payload)} B)"
            )
        self.hop_quality.append(HopQuality(lqi=lqi, rssi=rssi))

    # -- serialisation --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise, appending the CRC trailer."""
        flags = _FLAG_PADDING if self.padding_enabled else 0
        header = struct.pack(
            _HEADER_FMT, self.port, self.origin, self.dest, self.seq,
            self.ttl, flags, self.hop_count, len(self.payload),
            len(self.hop_quality),
        )
        body = header + self.payload + encode_entries(self.hop_quality)
        return append_crc(body)

    #: Last successful (raw bytes, parsed template) pair.  A broadcast
    #: frame is parsed once per receiver with the *same* bytes object;
    #: repeats skip the CRC walk and header unpack and get a fresh
    #: mutable copy of the template instead.  Identity-keyed, so a hit
    #: is only possible while the cache itself keeps the key alive, and
    #: only immutable ``bytes`` keys are ever cached.
    _parse_memo: "tuple[bytes, Packet] | None" = None

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse and CRC-verify a serialised packet.

        Raises :class:`~repro.errors.CrcError` on corruption and
        :class:`HeaderError` on structurally impossible layouts.
        """
        memo = Packet._parse_memo
        if memo is not None and memo[0] is data:
            return memo[1]._fast_copy(cls)
        body = split_and_verify(data)
        if len(body) < HEADER_BYTES:
            raise HeaderError(f"packet body of {len(body)} B has no header")
        (port, origin, dest, seq, ttl, flags, hop_count, payload_len,
         pad_count) = struct.unpack(_HEADER_FMT, body[:HEADER_BYTES])
        expected = HEADER_BYTES + payload_len + PAD_ENTRY_BYTES * pad_count
        if len(body) != expected:
            raise HeaderError(
                f"length mismatch: header promises {expected} B, got "
                f"{len(body)} B"
            )
        if payload_len > PAYLOAD_REGION_BYTES:
            raise HeaderError(
                f"payload {payload_len} B exceeds the "
                f"{PAYLOAD_REGION_BYTES} B payload region"
            )
        payload = body[HEADER_BYTES:HEADER_BYTES + payload_len]
        pad_bytes = body[HEADER_BYTES + payload_len:]
        # Every field came out of a fixed-width wire slot, so the range
        # checks __post_init__ performs cannot fail here (the payload
        # region is the one exception, checked above); building the
        # instance directly skips them on the per-frame receive path.
        packet = cls.__new__(cls)
        packet.port = port
        packet.origin = origin
        packet.dest = dest
        packet.payload = payload
        packet.seq = seq
        packet.ttl = ttl
        packet.padding_enabled = bool(flags & _FLAG_PADDING)
        packet.hop_count = hop_count
        packet.hop_quality = decode_entries(pad_bytes)
        if type(data) is bytes:
            # A bytearray could mutate under the cache; never key on one.
            # The template is a private copy: callers mutate the packets
            # they are handed (ttl, padding) and must not taint the memo.
            Packet._parse_memo = (data, packet._fast_copy(cls))
        return packet

    def _fast_copy(self, cls: "type[Packet]") -> "Packet":
        """Field-for-field copy skipping ``__init__`` validation."""
        packet = cls.__new__(cls)
        packet.port = self.port
        packet.origin = self.origin
        packet.dest = self.dest
        packet.payload = self.payload
        packet.seq = self.seq
        packet.ttl = self.ttl
        packet.padding_enabled = self.padding_enabled
        packet.hop_count = self.hop_count
        packet.hop_quality = list(self.hop_quality)
        return packet

    @property
    def wire_size(self) -> int:
        """Serialised size in bytes (header + payload + padding + CRC)."""
        return (HEADER_BYTES + len(self.payload)
                + PAD_ENTRY_BYTES * len(self.hop_quality) + 2)

    def copy(self) -> "Packet":
        """An independent copy (padding list not shared)."""
        return replace(self, hop_quality=list(self.hop_quality))
