"""The port map: subscription-based dispatch (Figure 2 of the paper).

Processes subscribe to ports; incoming packets are matched against the
port map and handed to the matching subscriber's handler.  This is the
mechanism that gives LiteView its protocol independence: the ping and
traceroute processes, the runtime controller and every routing protocol
are all just subscribers — "the only shared data between layers are
packets themselves".
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import PortInUse

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.radio.medium import FrameArrival

__all__ = ["PortMap", "Subscription", "WellKnownPorts"]


class WellKnownPorts:
    """Port assignments used across the toolkit.

    GEOGRAPHIC is 10 to match the paper's traceroute example ("we let the
    geographic forwarding protocol listen on the port number 10").
    """

    CONTROL = 1        # runtime controller <-> command interpreter
    NEIGHBOR = 2       # kernel neighbor beacons
    GEOGRAPHIC = 10    # geographic forwarding routing protocol
    DSDV = 11          # distance-vector routing protocol
    FLOODING = 12      # controlled flooding protocol
    PING = 20          # ping command processes
    TRACEROUTE = 21    # traceroute command processes


#: Handler signature: (packet, arrival) — ``arrival`` carries the PHY
#: observables of the hop the packet came in on, or None for loopback.
PortHandler = _t.Callable[["Packet", "_t.Optional[FrameArrival]"], None]


@dataclass
class Subscription:
    """One process's claim on a port."""

    port: int
    name: str
    handler: PortHandler


class PortMap:
    """Port-number → subscriber table with dispatch accounting."""

    def __init__(self) -> None:
        self._subs: dict[int, Subscription] = {}
        #: Packets dropped because no process was listening.
        self.unmatched = 0

    def subscribe(self, port: int, handler: PortHandler,
                  name: str = "?") -> Subscription:
        """Claim ``port``; raises :class:`PortInUse` on conflict."""
        if port in self._subs:
            raise PortInUse(
                f"port {port} already held by {self._subs[port].name!r}"
            )
        sub = Subscription(port=port, name=name, handler=handler)
        self._subs[port] = sub
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Release a subscription (no-op if already released)."""
        current = self._subs.get(sub.port)
        if current is sub:
            del self._subs[sub.port]

    def holder(self, port: int) -> Subscription | None:
        """The current subscription on ``port``, if any."""
        return self._subs.get(port)

    def ports(self) -> list[int]:
        """Sorted list of subscribed ports."""
        return sorted(self._subs)

    def dispatch(self, packet: "Packet",
                 arrival: "_t.Optional[FrameArrival]") -> bool:
        """Deliver a packet to its port's subscriber.

        Returns False (and counts the miss) when nobody listens — an
        unmatched packet is silently dropped, like on the motes.
        """
        sub = self._subs.get(packet.port)
        if sub is None:
            self.unmatched += 1
            return False
        sub.handler(packet, arrival)
        return True
