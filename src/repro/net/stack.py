"""The per-node communication stack: serialise, CRC-check, port-dispatch.

This is the receive/send pipeline of Figure 2: outgoing packets get their
header and CRC and go to the MAC; incoming frames are CRC-checked, parsed,
and matched against the port map.  A "localhost" path short-circuits
packets a node sends to itself, mirroring the figure's *Localhost packet*
arrow.

The stack does **not** route.  A packet whose final destination is another
node is still dispatched to its port — which is exactly how multi-hop
forwarding works here: the subscriber on that port *is* the routing
protocol, and forwarding is its job ("this listening thread could be the
routing protocol that will continue to forward the packet along the
path").
"""

from __future__ import annotations


from repro.errors import CrcError, HeaderError, PacketError
from repro.mac.csma import CsmaMac
from repro.mac.frame import BROADCAST, Frame
from repro.net.packet import Packet
from repro.net.ports import PortMap
from repro.obs.trace import packet_trace_id
from repro.radio.medium import FrameArrival
from repro.sim.engine import Environment
from repro.sim.monitor import Monitor

__all__ = ["CommunicationStack"]


class CommunicationStack:
    """One node's packet sender/receiver plus port map."""

    def __init__(self, env: Environment, mac: CsmaMac, monitor: Monitor,
                 node_id: int):
        self.env = env
        self.mac = mac
        self.monitor = monitor
        self.tracer = env.tracer
        self.node_id = node_id
        self.ports = PortMap()
        # Lazily bound handle for the hottest receive counter (created
        # on first increment so it stays out of untouched snapshots).
        self._c_received = None
        mac.set_receive_handler(self._on_frame)

    # -- send path -----------------------------------------------------------

    def send(self, packet: Packet, next_hop: int, kind: str = "data") -> bool:
        """Serialise ``packet`` and hand it to the MAC for ``next_hop``.

        ``next_hop`` is a MAC address (a neighbor id, or
        :data:`~repro.mac.frame.BROADCAST`); the packet's own ``dest``
        field still names the final destination.  Returns False if the
        MAC queue rejected the frame.
        """
        tracer = self.tracer
        trace_id = None
        if tracer.enabled:
            trace_id = packet_trace_id(packet.origin, packet.port, packet.seq)
            tracer.emit("stack.send", self.env.now, node=self.node_id,
                        packet=trace_id, next_hop=next_hop, traffic=kind,
                        dest=packet.dest, ttl=packet.ttl,
                        hop_count=packet.hop_count)
        frame = Frame(
            src=self.node_id, dst=next_hop, payload=packet.to_bytes(),
            kind=kind, port=packet.port, trace_id=trace_id,
        )
        self.monitor.count("stack.sent_packets")
        return self.mac.send(frame)

    def broadcast(self, packet: Packet, kind: str = "data") -> bool:
        """One-hop broadcast of ``packet`` (beacons, adverts, commands)."""
        return self.send(packet, BROADCAST, kind=kind)

    def send_local(self, packet: Packet) -> bool:
        """Loopback: dispatch a packet on this node without radio.

        Mirrors the *Localhost packet* path of Figure 2.  Returns whether
        a subscriber accepted it.
        """
        self.monitor.count("stack.local_packets")
        return self.ports.dispatch(packet, None)

    # -- receive path ------------------------------------------------------------

    def _on_frame(self, arrival: FrameArrival) -> None:
        """CRC-check, parse, and port-match one incoming frame."""
        tracer = self.tracer
        try:
            packet = Packet.from_bytes(arrival.payload)
        except CrcError:
            self.monitor.count("stack.crc_drops")
            if tracer.enabled:
                # The payload is garbage, so the packet id comes from the
                # frame metadata the sender stamped.
                tracer.emit("stack.drop", self.env.now, node=self.node_id,
                            packet=arrival.frame.trace_id,
                            reason="crc_fail", sender=arrival.sender)
            return
        except (HeaderError, PacketError):
            # A frame can be corrupted into a shape whose CRC accidentally
            # re-validates but whose header is impossible; or genuinely
            # malformed senders exist.  Either way: drop and count.
            self.monitor.count("stack.header_drops")
            if tracer.enabled:
                tracer.emit("stack.drop", self.env.now, node=self.node_id,
                            packet=arrival.frame.trace_id,
                            reason="header_invalid", sender=arrival.sender)
            return
        c = self._c_received
        if c is None:
            c = self._c_received = self.monitor.counter_obj(
                "stack.received_packets")
        c.value += 1
        if tracer.enabled:
            tracer.emit("stack.rx", self.env.now, node=self.node_id,
                        packet=packet_trace_id(packet.origin, packet.port,
                                               packet.seq),
                        sender=arrival.sender, port=packet.port)
        if not self.ports.dispatch(packet, arrival):
            self.monitor.count("stack.unmatched_packets")
