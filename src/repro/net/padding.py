"""Link-quality padding (§IV-C.3 of the paper).

The routing layer reserves a fixed 64-byte payload region.  When a packet
carries fewer data bytes than that, the *unused tail* — bytes that would
normally not be transmitted at all — can be progressively filled with one
(LQI, RSSI) pair per hop.  The packet grows by two bytes per hop, and the
hop budget is whatever fits: a 16-byte probe can record 24 hops, which the
paper deems "sufficient for most applications".

The mechanism never touches the data payload itself (the paper's third
implementation challenge: "we should not directly store link quality
information into the original payload of packets").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PaddingOverflow

__all__ = ["PAYLOAD_REGION_BYTES", "PAD_ENTRY_BYTES", "HopQuality",
           "max_padded_hops", "encode_entries", "decode_entries"]

#: The routing layer's fixed payload region ("a default payload of 64
#: bytes, serving as the upper limit on the length of data payloads").
PAYLOAD_REGION_BYTES = 64
#: Each hop appends LQI (1 B) and RSSI (1 B, signed).
PAD_ENTRY_BYTES = 2


@dataclass(frozen=True)
class HopQuality:
    """One hop's recorded link quality: the padding's unit of storage."""

    lqi: int
    rssi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lqi <= 255:
            raise ValueError(f"LQI {self.lqi} outside 0..255")
        if not -128 <= self.rssi <= 127:
            raise ValueError(f"RSSI {self.rssi} outside signed-byte range")


def max_padded_hops(payload_bytes: int) -> int:
    """How many hops a payload of this size can record before the region
    is exhausted.  The paper's example: 16-byte probe → 24 hops."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload size {payload_bytes}")
    if payload_bytes > PAYLOAD_REGION_BYTES:
        raise ValueError(
            f"payload {payload_bytes} B exceeds the {PAYLOAD_REGION_BYTES} B "
            "payload region"
        )
    return (PAYLOAD_REGION_BYTES - payload_bytes) // PAD_ENTRY_BYTES


def encode_entries(entries: list[HopQuality]) -> bytes:
    """Serialise pad entries (LQI byte, RSSI signed byte, per hop)."""
    out = bytearray()
    for entry in entries:
        out.append(entry.lqi)
        out.append(entry.rssi & 0xFF)
    return bytes(out)


def decode_entries(data: bytes) -> list[HopQuality]:
    """Parse a padding byte region back into hop-quality entries."""
    if len(data) % PAD_ENTRY_BYTES:
        raise PaddingOverflow(
            f"padding region of {len(data)} B is not a whole number of "
            f"{PAD_ENTRY_BYTES}-byte entries"
        )
    entries = []
    for i in range(0, len(data), PAD_ENTRY_BYTES):
        lqi = data[i]
        rssi = data[i + 1]
        if rssi >= 128:
            rssi -= 256
        entries.append(HopQuality(lqi=lqi, rssi=rssi))
    return entries
