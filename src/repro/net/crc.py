"""CRC16-CCITT, the integrity check of the communication stack.

Figure 2 of the paper places a "CRC Checker" at the bottom of the receive
path: every incoming packet's CRC field is verified before port matching.
We implement the CCITT-FALSE variant (polynomial 0x1021, initial value
0xFFFF) with a precomputed 256-entry table — the same check the CC2420's
hardware FCS performs, applied here at packet granularity so corrupted
deliveries from the medium are actually caught by real arithmetic.
"""

from __future__ import annotations

from repro.errors import CrcError

__all__ = ["crc16", "append_crc", "split_and_verify", "CRC_BYTES"]

#: Size of the CRC trailer appended to every serialised packet.
CRC_BYTES = 2

_POLY = 0x1021
_INIT = 0xFFFF


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) if crc & 0x8000 else (crc << 1)
            crc &= 0xFFFF
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc16(data: bytes) -> int:
    """CRC16-CCITT (FALSE) of ``data``."""
    crc = _INIT
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def append_crc(data: bytes) -> bytes:
    """``data`` with its big-endian CRC16 trailer appended."""
    return data + crc16(data).to_bytes(CRC_BYTES, "big")


def split_and_verify(data: bytes) -> bytes:
    """Strip and check the CRC trailer; returns the body.

    Raises :class:`CrcError` on mismatch or truncation — the stack counts
    these and drops the packet, as the paper's receive path does.
    """
    if len(data) < CRC_BYTES:
        raise CrcError(f"packet too short for a CRC trailer ({len(data)} B)")
    body, trailer = data[:-CRC_BYTES], data[-CRC_BYTES:]
    expected = int.from_bytes(trailer, "big")
    actual = crc16(body)
    if actual != expected:
        raise CrcError(
            f"CRC mismatch: computed {actual:#06x}, trailer {expected:#06x}"
        )
    return body
