"""CRC16-CCITT, the integrity check of the communication stack.

Figure 2 of the paper places a "CRC Checker" at the bottom of the receive
path: every incoming packet's CRC field is verified before port matching.
We use the CCITT-FALSE variant (polynomial 0x1021, initial value 0xFFFF)
— the same check the CC2420's hardware FCS performs, applied here at
packet granularity so corrupted deliveries from the medium are actually
caught by real arithmetic.  The stdlib's ``binascii.crc_hqx`` computes
exactly this CRC (CRC-CCITT as used by XMODEM/HQX) in C; the stack runs
it twice per forwarded packet, so the table loop it replaced showed up
in profiles.
"""

from __future__ import annotations

from binascii import crc_hqx

from repro.errors import CrcError

__all__ = ["crc16", "append_crc", "split_and_verify", "CRC_BYTES"]

#: Size of the CRC trailer appended to every serialised packet.
CRC_BYTES = 2

_INIT = 0xFFFF


def crc16(data: bytes) -> int:
    """CRC16-CCITT (FALSE) of ``data``."""
    return crc_hqx(data, _INIT)


def append_crc(data: bytes) -> bytes:
    """``data`` with its big-endian CRC16 trailer appended."""
    return data + crc16(data).to_bytes(CRC_BYTES, "big")


def split_and_verify(data: bytes) -> bytes:
    """Strip and check the CRC trailer; returns the body.

    Raises :class:`CrcError` on mismatch or truncation — the stack counts
    these and drops the packet, as the paper's receive path does.
    """
    if len(data) < CRC_BYTES:
        raise CrcError(f"packet too short for a CRC trailer ({len(data)} B)")
    body, trailer = data[:-CRC_BYTES], data[-CRC_BYTES:]
    expected = int.from_bytes(trailer, "big")
    actual = crc16(body)
    if actual != expected:
        raise CrcError(
            f"CRC mismatch: computed {actual:#06x}, trailer {expected:#06x}"
        )
    return body
