"""Port-based communication stack (Figure 2 of the paper)."""

from repro.net.crc import append_crc, crc16, split_and_verify
from repro.net.packet import ANY_NODE, DEFAULT_TTL, HEADER_BYTES, Packet
from repro.net.padding import (
    PAD_ENTRY_BYTES,
    PAYLOAD_REGION_BYTES,
    HopQuality,
    max_padded_hops,
)
from repro.net.ports import PortMap, Subscription, WellKnownPorts
from repro.net.routing import (
    TREE_PORT,
    DsdvRouting,
    TreeRouting,
    FloodingProtocol,
    GeographicForwarding,
    RoutingProtocol,
)
from repro.net.stack import CommunicationStack

__all__ = [
    "crc16",
    "append_crc",
    "split_and_verify",
    "Packet",
    "ANY_NODE",
    "DEFAULT_TTL",
    "HEADER_BYTES",
    "HopQuality",
    "max_padded_hops",
    "PAYLOAD_REGION_BYTES",
    "PAD_ENTRY_BYTES",
    "PortMap",
    "Subscription",
    "WellKnownPorts",
    "CommunicationStack",
    "RoutingProtocol",
    "GeographicForwarding",
    "FloodingProtocol",
    "DsdvRouting",
    "TreeRouting",
    "TREE_PORT",
]
