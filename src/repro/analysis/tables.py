"""ASCII rendering of experiment tables and figure series.

The benchmark harness prints every regenerated table/figure in a uniform
format so EXPERIMENTS.md can quote bench output verbatim.
"""

from __future__ import annotations

import typing as _t

__all__ = ["render_table", "render_series", "render_kv"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence[object]],
                 title: str | None = None) -> str:
    """A fixed-width ASCII table."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: _t.Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(title: str, pairs: _t.Sequence[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A two-column series (one paper figure's data)."""
    return render_table([x_label, y_label], list(pairs), title=title)


def render_kv(title: str, items: _t.Mapping[str, object]) -> str:
    """Key/value block for scalar experiment outputs."""
    width = max((len(k) for k in items), default=0)
    lines = [title]
    lines.extend(f"  {k.ljust(width)} : {_stringify(v)}"
                 for k, v in items.items())
    return "\n".join(lines)
