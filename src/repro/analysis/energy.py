"""Radio energy accounting from the packet log.

LiteView's efficiency goal (§III-A) is "measured by the footprint of
LiteView and its communication overhead".  Communication overhead *is*
transmit energy on a mote: every logged transmission's on-air time,
multiplied by the CC2420's transmit current at the sender's power level.
This module derives per-node and per-traffic-class energy from the
monitor's packet log — no extra instrumentation in the protocols.

Receive/idle-listening energy is deliberately excluded: with an
always-on radio it is a constant ~19.7 mA regardless of what LiteView
does, so the *differential* cost of management traffic is all in the
transmissions (plus the receivers' decode time, proportional to the same
airtime).
"""

from __future__ import annotations

import typing as _t
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.sim.monitor import PacketRecord
from repro.units import BYTE_AIRTIME

__all__ = ["TX_CURRENT_MA", "SUPPLY_VOLTAGE", "tx_current_ma",
           "EnergyReport", "energy_report"]

#: CC2420 transmit current draw (mA) at selected PA levels (datasheet
#: table 9): level → mA.
TX_CURRENT_MA = {31: 17.4, 27: 16.5, 23: 15.2, 19: 13.9,
                 15: 12.5, 11: 11.2, 7: 9.9, 3: 8.5}
#: Typical mote supply voltage.
SUPPLY_VOLTAGE = 3.0

_LEVELS = np.array(sorted(TX_CURRENT_MA), dtype=float)
_CURRENTS = np.array([TX_CURRENT_MA[int(l)] for l in _LEVELS])


def tx_current_ma(power_level: int) -> float:
    """Interpolated transmit current at a PA level."""
    if not 0 <= power_level <= 31:
        raise ValueError(f"PA level {power_level} outside 0..31")
    return float(np.interp(power_level, _LEVELS, _CURRENTS))


@dataclass(frozen=True)
class EnergyReport:
    """Transmit airtime and energy, grouped by node and traffic class."""

    airtime_by_node: dict[int, float]        # seconds
    airtime_by_kind: dict[str, float]        # seconds
    energy_mj_by_node: dict[int, float]      # millijoules
    total_airtime: float
    total_energy_mj: float

    def kind_fraction(self, kind: str) -> float:
        """Share of total airtime attributable to one traffic class."""
        if self.total_airtime == 0:
            return 0.0
        return self.airtime_by_kind.get(kind, 0.0) / self.total_airtime


def energy_report(records: _t.Iterable[PacketRecord],
                  power_levels: _t.Mapping[int, int] | None = None,
                  ) -> EnergyReport:
    """Aggregate transmit energy from a packet log.

    ``power_levels`` maps node id → PA level; nodes missing from the map
    are assumed at full power.  (The log does not carry per-frame power;
    pass the levels in force during the analysed window.)
    """
    airtime_node: dict[int, float] = defaultdict(float)
    airtime_kind: dict[str, float] = defaultdict(float)
    energy_node: dict[int, float] = defaultdict(float)
    for record in records:
        airtime = record.size_bytes * BYTE_AIRTIME
        airtime_node[record.sender] += airtime
        airtime_kind[record.kind] += airtime
        level = 31 if power_levels is None else power_levels.get(
            record.sender, 31)
        current_a = tx_current_ma(level) / 1000.0
        energy_node[record.sender] += (
            airtime * current_a * SUPPLY_VOLTAGE * 1000.0  # mJ
        )
    total_airtime = sum(airtime_node.values())
    return EnergyReport(
        airtime_by_node=dict(airtime_node),
        airtime_by_kind=dict(airtime_kind),
        energy_mj_by_node=dict(energy_node),
        total_airtime=total_airtime,
        total_energy_mj=sum(energy_node.values()),
    )
