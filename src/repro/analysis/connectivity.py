"""Predicted connectivity: vectorised all-pairs link-quality matrices.

The deployment-planning side of LiteView's workflow: before (or instead
of) probing every pair over the air, compute what the propagation model
*predicts* — expected received power, SNR and PRR for every directed
pair at a given power level — as dense numpy matrices.  The benches use
this to design testbeds ("what spacing makes adjacent links clean and
two-hop links gray?"), and the diagnosis examples compare prediction
against the live survey to locate anomalies.

Everything here is vectorised per the hpc-parallel guides: one
``loss_matrix`` evaluation plus elementwise PRR, no Python-level pair
loops.  Shadowing is included from the model's per-link cache, so
predictions match what the simulated radio will actually do in
expectation (fading excluded — it is zero-mean per packet).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.radio.cc2420 import NOISE_FLOOR_DBM, power_level_to_dbm
from repro.radio.modulation import packet_reception_ratio, snr_db_for_prr

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = [
    "received_power_matrix",
    "snr_matrix",
    "prr_matrix",
    "connected_pairs",
    "max_clean_spacing",
]


def _positions(testbed: "Testbed") -> tuple[list[int], np.ndarray]:
    nodes = testbed.nodes()
    ids = [n.id for n in nodes]
    positions = np.array([n.position for n in nodes], dtype=float)
    return ids, positions


def received_power_matrix(testbed: "Testbed",
                          power_level: int = 31) -> np.ndarray:
    """Expected rx power (dBm) for every directed pair (i → j).

    Row/column order follows ``testbed.nodes()``; the diagonal is NaN
    (no self-links).  Includes each directed link's static shadowing.
    """
    ids, positions = _positions(testbed)
    n = len(ids)
    tx_dbm = power_level_to_dbm(power_level)
    loss = testbed.propagation.loss_matrix(positions)
    shadow = np.zeros((n, n))
    for i, a in enumerate(ids):
        for j, b in enumerate(ids):
            if i != j:
                shadow[i, j] = testbed.propagation.link_shadowing_db(a, b)
    rx = tx_dbm - (loss + shadow)
    np.fill_diagonal(rx, np.nan)
    return rx


def snr_matrix(testbed: "Testbed", power_level: int = 31) -> np.ndarray:
    """Expected SNR (dB) for every directed pair."""
    return received_power_matrix(testbed, power_level) - NOISE_FLOOR_DBM


def prr_matrix(testbed: "Testbed", frame_bytes: int = 50,
               power_level: int = 31) -> np.ndarray:
    """Expected packet reception ratio for every directed pair."""
    snr = snr_matrix(testbed, power_level)
    flat = snr.ravel()
    valid = ~np.isnan(flat)
    prr = np.zeros_like(flat)
    prr[valid] = packet_reception_ratio(flat[valid], frame_bytes)
    out = prr.reshape(snr.shape)
    np.fill_diagonal(out, np.nan)
    return out


def connected_pairs(testbed: "Testbed", *, min_prr: float = 0.9,
                    frame_bytes: int = 50, power_level: int = 31,
                    ) -> list[tuple[int, int]]:
    """Directed pairs predicted to exceed ``min_prr`` — the survey list
    a site engineer would walk."""
    ids, _ = _positions(testbed)
    prr = prr_matrix(testbed, frame_bytes, power_level)
    pairs = []
    for i, a in enumerate(ids):
        for j, b in enumerate(ids):
            if i != j and prr[i, j] >= min_prr:
                pairs.append((a, b))
    return pairs


def max_clean_spacing(target_prr: float = 0.95, *,
                      frame_bytes: int = 50, power_level: int = 31,
                      reference_loss_db: float = 40.0,
                      exponent: float = 3.0) -> float:
    """The farthest spacing at which a (shadowing-free) link still meets
    ``target_prr`` — chain/grid design in one call.

    Inverts the PRR curve for the required SNR, then the log-distance
    model for the distance.
    """
    required_snr = snr_db_for_prr(target_prr, frame_bytes)
    budget = power_level_to_dbm(power_level) - NOISE_FLOOR_DBM
    allowed_loss = budget - required_snr - reference_loss_db
    if allowed_loss <= 0:
        raise ValueError(
            f"target PRR {target_prr} unreachable at power level "
            f"{power_level} even at the reference distance"
        )
    return float(10.0 ** (allowed_loss / (10.0 * exponent)))
