"""Analysis helpers: metric aggregation and table rendering."""

from repro.analysis.aggregate import (
    CellAggregate,
    aggregate_cells,
    mean_ci,
)
from repro.analysis.connectivity import (
    connected_pairs,
    max_clean_spacing,
    prr_matrix,
    received_power_matrix,
    snr_matrix,
)
from repro.analysis.energy import (
    EnergyReport,
    energy_report,
    tx_current_ma,
)
from repro.analysis.metrics import (
    SeriesSummary,
    count_by_kind,
    packets_between,
    summarize,
)
from repro.analysis.tables import render_kv, render_series, render_table

__all__ = [
    "CellAggregate",
    "aggregate_cells",
    "mean_ci",
    "received_power_matrix",
    "snr_matrix",
    "prr_matrix",
    "connected_pairs",
    "max_clean_spacing",
    "EnergyReport",
    "energy_report",
    "tx_current_ma",
    "SeriesSummary",
    "summarize",
    "packets_between",
    "count_by_kind",
    "render_table",
    "render_series",
    "render_kv",
]
