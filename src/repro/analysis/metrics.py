"""Metric aggregation for experiments and benches."""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.sim.monitor import Monitor, PacketRecord

__all__ = ["SeriesSummary", "summarize", "packets_between", "count_by_kind"]


@dataclass(frozen=True)
class SeriesSummary:
    """Descriptive statistics of one series of observations."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    maximum: float

    def render(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.2f}{suffix} "
            f"std={self.std:.2f} min={self.minimum:.2f} "
            f"p50={self.p50:.2f} p90={self.p90:.2f} "
            f"max={self.maximum:.2f}{suffix}"
        )


def summarize(values: _t.Iterable[float]) -> SeriesSummary:
    """Summary statistics (empty input yields NaNs with count 0)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = math.nan
        return SeriesSummary(0, nan, nan, nan, nan, nan, nan)
    return SeriesSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
    )


def packets_between(monitor: Monitor, start: float, end: float, *,
                    exclude_kinds: _t.Sequence[str] = ("beacon",),
                    ) -> list[PacketRecord]:
    """Transmissions logged in a time window, minus excluded kinds.

    This is how the Figure 7 bench attributes packets to a command
    invocation on an otherwise idle network: everything transmitted in
    the window except the kernel's beacons belongs to the command.
    """
    return [
        r for r in monitor.packets
        if start <= r.time < end and r.kind not in exclude_kinds
    ]


def count_by_kind(records: _t.Iterable[PacketRecord]) -> dict[str, int]:
    """Tally transmissions by traffic class."""
    out: dict[str, int] = {}
    for record in records:
        out[record.kind] = out.get(record.kind, 0) + 1
    return out
