"""Merge per-run campaign metrics into means and confidence intervals.

A campaign produces many independent seeded replicates per parameter
cell; what the evaluation tables want is the cell-level summary — mean
and a Student-t confidence interval, the standard treatment for a small
number of i.i.d. trials.  This module is deliberately independent of
:mod:`repro.campaign`: it aggregates any ``(params, values)`` rows, so
hand-rolled sweeps and cached campaign results merge the same way.
"""

from __future__ import annotations

import json
import math
import typing as _t
from dataclasses import dataclass

__all__ = ["CellAggregate", "mean_ci", "aggregate_cells"]


def _t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value at ``confidence`` for ``df``."""
    from scipy.stats import t
    return float(t.ppf(0.5 + confidence / 2.0, df))


def mean_ci(values: _t.Sequence[float], confidence: float = 0.95,
            ) -> tuple[float, float]:
    """``(mean, half_width)`` of the two-sided Student-t interval.

    ``half_width`` is NaN for fewer than two samples — a single trial
    has no spread estimate, and pretending otherwise would make tables
    lie.  Empty input raises.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("mean_ci of no samples")
    n = len(vals)
    mean = math.fsum(vals) / n
    if n < 2:
        return mean, math.nan
    var = math.fsum((v - mean) ** 2 for v in vals) / (n - 1)
    half = _t_critical(confidence, n - 1) * math.sqrt(var / n)
    return mean, half


@dataclass(frozen=True)
class CellAggregate:
    """Summary of one metric over one parameter cell's replicates."""

    params: dict
    metric: str
    n: int
    mean: float
    std: float            # sample standard deviation (ddof=1; 0 if n == 1)
    ci_low: float         # NaN bounds when n == 1
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def render(self) -> str:
        if math.isnan(self.ci_low):
            return f"{self.mean:.3g} (n={self.n})"
        return (f"{self.mean:.3g} ± {self.half_width:.2g} "
                f"(n={self.n}, {self.confidence:.0%})")


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_cells(
    rows: _t.Iterable[tuple[_t.Mapping[str, object],
                            _t.Mapping[str, object]]],
    metrics: _t.Sequence[str] | None = None,
    confidence: float = 0.95,
) -> list[CellAggregate]:
    """Combine ``(params, values)`` rows into per-cell, per-metric stats.

    Rows sharing an identical ``params`` mapping form a cell.  With
    ``metrics=None`` every numeric observable seen in the cell is
    aggregated; otherwise only the named ones (rows lacking a name or
    holding a non-numeric value simply don't contribute to it).  Output
    is ordered by cell key then metric name.
    """
    cells: dict[str, tuple[dict, dict[str, list[float]]]] = {}
    for params, values in rows:
        key = json.dumps(sorted((str(k), v) for k, v in params.items()),
                         sort_keys=True)
        if key not in cells:
            cells[key] = (dict(params), {})
        _, series = cells[key]
        for name, value in values.items():
            if metrics is not None and name not in metrics:
                continue
            if _numeric(value):
                series.setdefault(name, []).append(float(value))

    out: list[CellAggregate] = []
    for key in sorted(cells):
        params, series = cells[key]
        for metric in sorted(series):
            vals = series[metric]
            mean, half = mean_ci(vals, confidence)
            n = len(vals)
            if n < 2:
                std, lo, hi = 0.0, math.nan, math.nan
            else:
                std = math.sqrt(
                    math.fsum((v - mean) ** 2 for v in vals) / (n - 1))
                lo, hi = mean - half, mean + half
            out.append(CellAggregate(
                params=params, metric=metric, n=n, mean=mean, std=std,
                ci_low=lo, ci_high=hi, confidence=confidence,
            ))
    return out
