"""Kernel event log: on-demand logging of internal events.

The paper positions LiteView alongside LiteOS's "support for
understanding system dynamics based on on-demand logging of internal
events".  This is that facility: a bounded ring of time-stamped events
the kernel services append to (radio reconfigurations, blacklist
changes, neighbor evictions, command thread launches), retrievable over
the air through the runtime controller (`events` in the shell).

The ring is sized for mote RAM: old events fall off the back, and the
total dropped count is retained so a reader can tell the log wrapped.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from dataclasses import dataclass

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

__all__ = ["KernelEvent", "EventLog", "DEFAULT_CAPACITY"]

#: Ring size: 32 events × ~40 B fits easily in mote RAM.
DEFAULT_CAPACITY = 32


@dataclass(frozen=True)
class KernelEvent:
    """One logged kernel event."""

    time: float
    code: str      # short machine-readable tag, e.g. "radio.power"
    detail: str    # human-readable specifics, e.g. "31 -> 10"

    def render(self) -> str:
        return f"[{self.time:10.3f}] {self.code}: {self.detail}"


class EventLog:
    """Bounded ring of kernel events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 tracer: "Tracer | None" = None, node_id: int | None = None):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[KernelEvent] = deque(maxlen=capacity)
        #: Events that fell off the back of the ring.
        self.dropped = 0
        #: Total events ever logged.
        self.logged = 0
        #: Optional lifecycle tracer: when attached and enabled, kernel
        #: events are mirrored into the shared trace timeline so ``events``
        #: output and exported traces tell one story.
        self._tracer = tracer
        self._node_id = node_id

    def log(self, time: float, code: str, detail: str = "") -> None:
        """Append one event (oldest entry evicted when full)."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(KernelEvent(time=time, code=code, detail=detail))
        self.logged += 1
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(f"kernel.{code}", time, node=self._node_id,
                        detail=detail)

    def recent(self, limit: int | None = None) -> list[KernelEvent]:
        """The most recent ``limit`` events, oldest first.

        ``limit=None`` returns the whole ring; ``limit=0`` returns an
        empty list (a ``[-0:]`` slice used to return everything — the
        one Python slice where "last n" arithmetic betrays you).
        """
        events = list(self._ring)
        if limit is None:
            return events
        if limit < 0:
            raise ValueError(f"event log limit must be >= 0, got {limit}")
        return events[-limit:] if limit > 0 else []

    def clear(self) -> None:
        """Empty the ring (the dropped/logged totals are kept)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)
