"""Kernel event log: on-demand logging of internal events.

The paper positions LiteView alongside LiteOS's "support for
understanding system dynamics based on on-demand logging of internal
events".  This is that facility: a bounded ring of time-stamped events
the kernel services append to (radio reconfigurations, blacklist
changes, neighbor evictions, command thread launches), retrievable over
the air through the runtime controller (`events` in the shell).

The ring is sized for mote RAM: old events fall off the back, and the
total dropped count is retained so a reader can tell the log wrapped.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from dataclasses import dataclass

__all__ = ["KernelEvent", "EventLog", "DEFAULT_CAPACITY"]

#: Ring size: 32 events × ~40 B fits easily in mote RAM.
DEFAULT_CAPACITY = 32


@dataclass(frozen=True)
class KernelEvent:
    """One logged kernel event."""

    time: float
    code: str      # short machine-readable tag, e.g. "radio.power"
    detail: str    # human-readable specifics, e.g. "31 -> 10"

    def render(self) -> str:
        return f"[{self.time:10.3f}] {self.code}: {self.detail}"


class EventLog:
    """Bounded ring of kernel events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[KernelEvent] = deque(maxlen=capacity)
        #: Events that fell off the back of the ring.
        self.dropped = 0
        #: Total events ever logged.
        self.logged = 0

    def log(self, time: float, code: str, detail: str = "") -> None:
        """Append one event (oldest entry evicted when full)."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(KernelEvent(time=time, code=code, detail=detail))
        self.logged += 1

    def recent(self, limit: int | None = None) -> list[KernelEvent]:
        """The most recent events, oldest first."""
        events = list(self._ring)
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    def clear(self) -> None:
        """Empty the ring (the dropped/logged totals are kept)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)
