"""The testbed: one simulated deployment of sensor nodes.

Owns the world-level singletons — event loop, RNG registry, monitor,
propagation model, radio medium, namespace — and the node population.
Everything the benches and examples build starts from a
:class:`Testbed`.
"""

from __future__ import annotations

from itertools import count

from repro.errors import NoSuchNode
from repro.kernel.filesystem import Namespace
from repro.kernel.node import SensorNode
from repro.radio.medium import RadioMedium
from repro.radio.partition import PartitionedMedium
from repro.radio.propagation import LogDistancePropagation
from repro.sim.engine import Environment
from repro.sim.monitor import Monitor
from repro.sim.rng import RngRegistry

__all__ = ["Testbed"]


class Testbed:
    """A simulated deployment: shared world plus its nodes."""

    # Not a test class, despite the name pytest pattern-matches.
    __test__ = False

    def __init__(self, seed: int = 1, *,
                 propagation_kwargs: dict | None = None,
                 corrupt_delivery_fraction: float = 0.3,
                 partitioned: bool = False):
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.monitor = Monitor()
        self.propagation = LogDistancePropagation(
            self.rng, **(propagation_kwargs or {})
        )
        #: ``partitioned=True`` swaps in the multi-medium facade: each
        #: radio-connected component runs on its own RadioMedium (see
        #: repro.radio.partition).  With uniform transmit power the run
        #: is bit-for-bit identical to the single-medium one.
        medium_cls = PartitionedMedium if partitioned else RadioMedium
        self.medium = medium_cls(
            self.env, self.rng, self.monitor, self.propagation,
            corrupt_delivery_fraction=corrupt_delivery_fraction,
        )
        self.namespace = Namespace()
        self._nodes: dict[int, SensorNode] = {}
        self._next_id = count(1)

    # -- population ----------------------------------------------------------

    def add_node(self, name: str, position: tuple[float, float], *,
                 node_id: int | None = None, power_level: int = 31,
                 channel: int = 17,
                 neighbor_kwargs: dict | None = None) -> SensorNode:
        """Create, register and attach one node."""
        if node_id is None:
            node_id = next(self._next_id)
            while node_id in self._nodes:
                node_id = next(self._next_id)
        self.namespace.register(node_id, name)
        node = SensorNode(
            self, node_id, name, position,
            power_level=power_level, channel=channel,
            neighbor_kwargs=neighbor_kwargs,
        )
        self._nodes[node_id] = node
        return node

    def node(self, ref: "int | str") -> SensorNode:
        """Look up a node by id, name, or shell path."""
        node_id = self.namespace.resolve(ref)
        return self._nodes[node_id]

    def nodes(self) -> list[SensorNode]:
        """All nodes, sorted by id."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def position_of(self, node_id: int) -> tuple[float, float] | None:
        """The testbed's location directory (geographic routing's
        fallback when a destination is not a beaconed neighbor)."""
        node = self._nodes.get(node_id)
        return node.position if node else None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, ref: object) -> bool:
        try:
            self.namespace.resolve(ref)  # type: ignore[arg-type]
        except NoSuchNode:
            return False
        return True

    # -- convenience --------------------------------------------------------------

    @property
    def tracer(self):
        """The world's packet-lifecycle tracer (lives on the event loop)."""
        return self.env.tracer

    def install_protocol_everywhere(
        self, protocol_cls: type, **kwargs: object
    ) -> list[object]:
        """Install the same routing protocol on every node."""
        return [
            node.install_protocol(protocol_cls, **kwargs)
            for node in self.nodes()
        ]

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (see :meth:`Environment.run`)."""
        self.env.run(until=until)

    def warm_up(self, duration: float = 10.0) -> None:
        """Run long enough for beacons/adverts to settle neighbor tables
        and routing tables before an experiment starts."""
        self.env.run(until=self.env.now + duration)
