"""Thread table: LiteView commands run as individual kernel threads.

"Unlike other built-in commands supported by LiteOS, the commands
supported by LiteView are executed as individual processes."  The thread
table models that: a bounded registry of named simulated processes with
spawn/kill/list — the process-level control LiteView has over its command
executables.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.errors import KernelError, ProcessInterrupt
from repro.sim.engine import Environment
from repro.sim.process import Process, ProcessGenerator

__all__ = ["ThreadInfo", "ThreadTable", "MAX_THREADS"]

#: LiteOS-class kernels run a handful of threads on the ATmega128.
MAX_THREADS = 8


@dataclass
class ThreadInfo:
    """One kernel thread: a simulated process plus metadata."""

    tid: int
    name: str
    process: Process
    started_at: float

    @property
    def alive(self) -> bool:
        """True while the thread's process has not finished."""
        return self.process.is_alive


class ThreadTable:
    """Bounded registry of a node's running threads."""

    def __init__(self, env: Environment, node_id: int,
                 max_threads: int = MAX_THREADS):
        if max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.env = env
        self.node_id = node_id
        self.max_threads = max_threads
        self._tids = count(1)
        self._threads: dict[int, ThreadInfo] = {}

    def spawn(self, name: str, generator: ProcessGenerator) -> ThreadInfo:
        """Start ``generator`` as a named thread.

        Raises :class:`KernelError` when every slot holds a live thread —
        the admission control a 4 KB-RAM mote actually enforces.
        """
        self._reap()
        if len(self._threads) >= self.max_threads:
            raise KernelError(
                f"node {self.node_id}: thread table full "
                f"({self.max_threads} threads)"
            )
        tid = next(self._tids)
        info = ThreadInfo(
            tid=tid, name=name,
            process=self.env.process(
                _absorb_kill(generator), name=f"{name}@{self.node_id}"
            ),
            started_at=self.env.now,
        )
        self._threads[tid] = info
        return info

    def alive(self) -> list[ThreadInfo]:
        """Live threads, oldest first."""
        self._reap()
        return sorted(self._threads.values(), key=lambda t: t.tid)

    def find(self, name: str) -> ThreadInfo | None:
        """The oldest live thread with this name, if any."""
        for info in self.alive():
            if info.name == name:
                return info
        return None

    def kill(self, tid: int) -> bool:
        """Interrupt a live thread; returns whether one was found."""
        info = self._threads.get(tid)
        if info is None or not info.alive:
            return False
        info.process.interrupt("killed")
        return True

    def _reap(self) -> None:
        finished = [tid for tid, t in self._threads.items() if not t.alive]
        for tid in finished:
            del self._threads[tid]


def _absorb_kill(generator: ProcessGenerator):
    """Driver that turns ``kill`` into a clean death.

    Threads are killed by throwing :class:`ProcessInterrupt` into their
    generator; a command that does not handle it just stops — the
    kernel's semantics for killing a process — rather than crashing the
    scheduler with an unhandled failure.
    """
    try:
        result = yield from generator
        return result
    except ProcessInterrupt:
        return None
