"""LiteOS kernel model: nodes, testbeds, and kernel services."""

from repro.kernel.eventlog import EventLog, KernelEvent
from repro.kernel.filesystem import DEFAULT_MOUNT, Namespace
from repro.kernel.memory import (
    FLASH_BUDGET_BYTES,
    PAPER_FOOTPRINTS,
    RAM_BUDGET_BYTES,
    InstalledImage,
    MemoryModel,
)
from repro.kernel.neighbors import (
    DEFAULT_BEACON_INTERVAL,
    NeighborEntry,
    NeighborTable,
)
from repro.kernel.node import SensorNode
from repro.kernel.syscalls import ParameterBuffer, SyscallTable
from repro.kernel.testbed import Testbed
from repro.kernel.threads import MAX_THREADS, ThreadInfo, ThreadTable

__all__ = [
    "Testbed",
    "EventLog",
    "KernelEvent",
    "SensorNode",
    "Namespace",
    "DEFAULT_MOUNT",
    "NeighborTable",
    "NeighborEntry",
    "DEFAULT_BEACON_INTERVAL",
    "ThreadTable",
    "ThreadInfo",
    "MAX_THREADS",
    "SyscallTable",
    "ParameterBuffer",
    "MemoryModel",
    "InstalledImage",
    "PAPER_FOOTPRINTS",
    "FLASH_BUDGET_BYTES",
    "RAM_BUDGET_BYTES",
]
