"""System calls and the parameter-passing buffer (§IV-C.4).

LiteOS "does not provide a mechanism for passing parameters to processes
by default", so the paper adds a kernel buffer plus a system call that
returns its address.  We model exactly that: commands are started with
their parameter string staged in a per-node :class:`ParameterBuffer`, and
the command process reads it back through the ``get_parameters`` syscall.
Per the paper, a buffer with no parameters "will start with a '\\0'", and
multiple parameters are space-separated.
"""

from __future__ import annotations

import typing as _t

from repro.errors import NoSuchSyscall

__all__ = ["SyscallTable", "ParameterBuffer"]


class ParameterBuffer:
    """The kernel-held buffer commands read their runtime parameters from."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.capacity = capacity
        self._content = "\0"

    def stage(self, parameters: str) -> None:
        """Place a parameter string for the next process to pick up.

        Raises :class:`ValueError` when the string exceeds the buffer —
        mote RAM is finite and the kernel cannot grow it.
        """
        if len(parameters) > self.capacity:
            raise ValueError(
                f"parameter string of {len(parameters)} chars exceeds the "
                f"{self.capacity}-char kernel buffer"
            )
        self._content = parameters if parameters else "\0"

    def clear(self) -> None:
        """Reset to the empty marker."""
        self._content = "\0"

    def read(self) -> str:
        """Raw buffer content ('\\0' marks "no parameters supplied")."""
        return self._content

    def argv(self) -> list[str]:
        """Parsed parameter list (space-separated, per the paper)."""
        if self._content.startswith("\0"):
            return []
        return [tok for tok in self._content.split(" ") if tok]


class SyscallTable:
    """Name → function registry modelling the kernel's syscall interface."""

    def __init__(self) -> None:
        self._calls: dict[str, _t.Callable[..., object]] = {}

    def register(self, name: str,
                 fn: _t.Callable[..., object]) -> None:
        """Expose ``fn`` as syscall ``name`` (later registration wins,
        like a kernel jump-table update)."""
        self._calls[name] = fn

    def invoke(self, name: str, /, *args: object, **kwargs: object) -> object:
        """Invoke a syscall; unknown names raise :class:`NoSuchSyscall`."""
        fn = self._calls.get(name)
        if fn is None:
            raise NoSuchSyscall(f"no syscall named {name!r}")
        return fn(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted names of registered syscalls."""
        return sorted(self._calls)
