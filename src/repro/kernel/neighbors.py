"""Kernel-maintained neighbor table with beacons and blacklists (§III-B.2).

The paper's design decision, reproduced here: neighborhood state lives in
the *kernel*, not in any protocol — "it is more efficient to provide
neighborhood management as part of kernel services, which both users and
applications can access via system calls."  Every node broadcasts periodic
beacons carrying its name and position; receivers maintain entries with
EWMA link-quality estimates.  LiteView's neighborhood commands then just
expose this table: list it, blacklist entries (a per-entry *enabled* flag
that all routing protocols honour), and retune the beacon frequency.
"""

from __future__ import annotations

import struct
import typing as _t
from dataclasses import dataclass, field

from repro.errors import ProcessInterrupt
from repro.net.packet import ANY_NODE, Packet
from repro.net.ports import WellKnownPorts
from repro.radio.medium import FrameArrival

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import SensorNode

__all__ = ["NeighborEntry", "NeighborTable", "DEFAULT_BEACON_INTERVAL"]

#: Default beacon period (seconds); the `update` command retunes it.
DEFAULT_BEACON_INTERVAL = 2.0

_BEACON_FMT = ">ffB"  # x, y, name length; name bytes follow
_BEACON_HEADER_BYTES = struct.calcsize(_BEACON_FMT)

#: Last successfully decoded beacon payload: (payload bytes, x, y, name).
#: One broadcast beacon reaches every in-range receiver as the *same*
#: payload object (the parse memo in Packet.from_bytes shares the slice),
#: so repeats skip the struct unpack and UTF-8 decode.  Identity-keyed on
#: immutable bytes; the decoded fields are immutable and safe to share.
_beacon_memo: tuple[bytes, float, float, str] | None = None


@dataclass(slots=True)
class NeighborEntry:
    """One row of the kernel neighbor table.

    Slotted: a large deployment keeps tens of thousands of these rows
    live and rewrites them on every beacon, so dropping the per-instance
    dict both shrinks the table's footprint and speeds the EWMA updates.
    """

    node_id: int
    name: str
    position: tuple[float, float] | None
    lqi: float = 0.0          # EWMA of beacon LQI
    rssi: float = 0.0         # EWMA of beacon RSSI readings
    first_heard: float = 0.0
    last_heard: float = 0.0
    beacons_received: int = 0
    first_seq: int = 0
    last_seq: int = 0
    #: The paper's blacklist flag: "the kernel associates a field to each
    #: neighbor entry that specifies whether or not the current neighbor
    #: is considered enabled".
    enabled: bool = True

    @property
    def prr_estimate(self) -> float:
        """Beacon delivery ratio estimated from sequence-number gaps."""
        expected = ((self.last_seq - self.first_seq) & 0xFFFF) + 1
        if expected <= 0:
            return 0.0
        return min(1.0, self.beacons_received / expected)


class NeighborTable:
    """Kernel neighbor service: beaconing, estimation, blacklist."""

    def __init__(self, node: "SensorNode", *,
                 capacity: int = 16,
                 beacon_interval: float = DEFAULT_BEACON_INTERVAL,
                 lifetime_factor: float = 3.5,
                 ewma_alpha: float = 0.3,
                 beaconing: bool = True):
        if capacity < 1:
            raise ValueError("neighbor table capacity must be >= 1")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("EWMA alpha must be in (0, 1]")
        self.node = node
        self.capacity = capacity
        self.lifetime_factor = float(lifetime_factor)
        self.ewma_alpha = float(ewma_alpha)
        self._beacon_interval = float(beacon_interval)
        self._entries: dict[int, NeighborEntry] = {}
        self._blacklist: set[int] = set()
        self._seq = 0
        self._rng = node.rng.stream(f"neighbors.jitter.{node.id}")
        # Lazily bound handle for the per-beacon receive counter (created
        # on first increment so it stays out of untouched snapshots).
        self._c_received = None
        node.stack.ports.subscribe(
            WellKnownPorts.NEIGHBOR, self._on_beacon, name="neighbor-beacons"
        )
        #: A non-beaconing node (e.g. the management workstation) hears
        #: its neighborhood but never advertises itself, so routing
        #: protocols on other nodes cannot pick it as a next hop.
        self.beaconing = beaconing
        self._beacon_process = None
        if beaconing:
            self._beacon_process = node.env.process(
                self._beacon_loop(), name=f"beacons-{node.id}"
            )

    # -- configuration ------------------------------------------------------

    @property
    def beacon_interval(self) -> float:
        """Current beacon period (the `update` command's knob)."""
        return self._beacon_interval

    def set_beacon_interval(self, interval: float) -> None:
        """Retune the beacon frequency (takes effect next period)."""
        if interval <= 0:
            raise ValueError(f"beacon interval must be positive: {interval}")
        self.node.events.log(self.node.env.now, "neighbor.beacon_interval",
                             f"{self._beacon_interval:g}s -> {interval:g}s")
        self._beacon_interval = float(interval)

    @property
    def entry_lifetime(self) -> float:
        """How long a silent neighbor stays in the table."""
        return self.lifetime_factor * self._beacon_interval

    # -- table access ---------------------------------------------------------

    def entries(self) -> list[NeighborEntry]:
        """Live entries, sorted by node id (expired ones purged first)."""
        self._expire()
        return sorted(self._entries.values(), key=lambda e: e.node_id)

    def usable(self) -> list[NeighborEntry]:
        """Live entries that are not blacklisted — what protocols use."""
        return [e for e in self.entries() if e.enabled]

    def usable_ids(self) -> list[int]:
        """Node ids of usable neighbors."""
        return [e.node_id for e in self.usable()]

    def lookup(self, node_id: int) -> NeighborEntry | None:
        """The live entry for ``node_id``, if present."""
        self._expire()
        return self._entries.get(node_id)

    def position_of(self, node_id: int) -> tuple[float, float] | None:
        """A neighbor's beaconed position, if known."""
        entry = self.lookup(node_id)
        return entry.position if entry else None

    # -- blacklist -----------------------------------------------------------------

    def blacklist(self, node_id: int) -> None:
        """Temporarily stop communicating with a neighbor."""
        self._blacklist.add(node_id)
        entry = self._entries.get(node_id)
        if entry:
            entry.enabled = False
        self.node.events.log(self.node.env.now, "neighbor.blacklist",
                             f"node {node_id} disabled")

    def unblacklist(self, node_id: int) -> None:
        """Re-enable a previously blacklisted neighbor."""
        self._blacklist.discard(node_id)
        entry = self._entries.get(node_id)
        if entry:
            entry.enabled = True
        self.node.events.log(self.node.env.now, "neighbor.blacklist",
                             f"node {node_id} re-enabled")

    def clear(self) -> None:
        """Forget every neighbor and restart the beacon sequence.

        Models the RAM loss of a reboot: the table and the sequence
        counter live in kernel RAM, so a power cycle empties both.  The
        blacklist is also RAM-resident and clears with them — re-applying
        operator intent after a reboot is the controller's job, exactly
        the stale-state hazard the diagnosis tooling exists to surface.
        """
        self._entries.clear()
        self._blacklist.clear()
        self._seq = 0

    def is_blacklisted(self, node_id: int) -> bool:
        """Whether traffic to/from ``node_id`` is currently suppressed."""
        return node_id in self._blacklist

    def blacklisted_ids(self) -> list[int]:
        """Sorted blacklisted node ids."""
        return sorted(self._blacklist)

    # -- beaconing ------------------------------------------------------------------

    def _beacon_loop(self):
        # Timers tick in *local* clock units: a node whose oscillator
        # runs fast (clock_rate > 1) exhausts a beacon period in fewer
        # true seconds, hence the division.  Rate 1.0 divides exactly,
        # so undrifted runs are bit-identical to the unscaled code.
        try:
            yield self.node.env.timeout(
                float(self._rng.uniform(0.0, self._beacon_interval))
                / self.node.clock_rate
            )
            while True:
                self._send_beacon()
                jitter = float(self._rng.uniform(-0.1, 0.1))
                yield self.node.env.timeout(
                    self._beacon_interval * (1.0 + jitter)
                    / self.node.clock_rate
                )
        except ProcessInterrupt:
            return

    def _send_beacon(self) -> None:
        self._seq = (self._seq + 1) & 0xFFFF
        name_bytes = self.node.name.encode("utf-8")[:40]
        x, y = self.node.position
        payload = struct.pack(_BEACON_FMT, x, y, len(name_bytes)) + name_bytes
        packet = Packet(
            port=WellKnownPorts.NEIGHBOR, origin=self.node.id,
            dest=ANY_NODE, payload=payload, seq=self._seq, ttl=1,
        )
        self.node.stack.broadcast(packet, kind="beacon")
        self.node.monitor.count("neighbors.beacons_sent")

    def _on_beacon(self, packet: Packet, arrival: FrameArrival | None) -> None:
        global _beacon_memo
        if arrival is None or packet.origin == self.node.id:
            return
        payload = packet.payload
        memo = _beacon_memo
        if memo is not None and memo[0] is payload:
            x, y, name = memo[1], memo[2], memo[3]
        else:
            try:
                x, y, name_len = struct.unpack_from(_BEACON_FMT, payload)
                name = payload[
                    _BEACON_HEADER_BYTES:_BEACON_HEADER_BYTES + name_len
                ].decode("utf-8")
            except (struct.error, UnicodeDecodeError):
                self.node.monitor.count("neighbors.malformed_beacons")
                return
            if type(payload) is bytes:
                _beacon_memo = (payload, x, y, name)
        monitor = self.node.monitor
        c = self._c_received
        if c is None:
            c = self._c_received = monitor.counter_obj(
                "neighbors.beacons_received")
        c.value += 1
        self._update(packet.origin, name, (x, y), packet.seq, arrival)
        taps = monitor.beacon_taps
        if taps:
            for tap in taps:
                tap(self.node.id, packet.origin, packet.seq, arrival)

    def _update(self, node_id: int, name: str,
                position: tuple[float, float], seq: int,
                arrival: FrameArrival) -> None:
        now = self.node.env.now
        entry = self._entries.get(node_id)
        if entry is None:
            self._expire()
            if len(self._entries) >= self.capacity:
                self._evict()
            entry = NeighborEntry(
                node_id=node_id, name=name, position=position,
                lqi=float(arrival.lqi), rssi=float(arrival.rssi),
                first_heard=now, last_heard=now, beacons_received=1,
                first_seq=seq, last_seq=seq,
                enabled=node_id not in self._blacklist,
            )
            self._entries[node_id] = entry
            return
        alpha = self.ewma_alpha
        entry.name = name
        entry.position = position
        entry.lqi = (1 - alpha) * entry.lqi + alpha * arrival.lqi
        entry.rssi = (1 - alpha) * entry.rssi + alpha * arrival.rssi
        entry.last_heard = now
        entry.beacons_received += 1
        entry.last_seq = seq

    def _expire(self) -> None:
        now = self.node.env.now
        lifetime = self.entry_lifetime
        stale = [nid for nid, e in self._entries.items()
                 if now - e.last_heard > lifetime]
        for nid in stale:
            del self._entries[nid]
            self.node.monitor.count("neighbors.expired")
            self.node.events.log(now, "neighbor.expired",
                                 f"node {nid} fell silent")

    def _evict(self) -> None:
        """Drop the longest-silent entry to make room (LRU policy)."""
        oldest = min(self._entries.values(), key=lambda e: e.last_heard)
        del self._entries[oldest.node_id]
        self.node.monitor.count("neighbors.evicted")

    def stop(self) -> None:
        """Stop beaconing (used when a node is shut down)."""
        if self._beacon_process is not None:
            self._beacon_process.interrupt("node stopped")
