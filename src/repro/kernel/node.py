"""The sensor node: radio + MAC + stack + kernel services, wired together.

A :class:`SensorNode` is one simulated MicaZ mote running the LiteOS-like
kernel: its CC2420 transceiver attaches to the testbed's shared medium,
the CSMA MAC feeds the port-based communication stack, and the kernel
services (neighbor table, thread table, syscalls, parameter buffer,
memory ledger) sit on top.  Routing protocols install onto ports at
runtime — the "no recompilation" property the paper's protocol-
independence challenge demands.
"""

from __future__ import annotations

import typing as _t

from repro.errors import KernelError
from repro.kernel.eventlog import EventLog
from repro.kernel.memory import (
    KERNEL_FLASH_BYTES,
    KERNEL_RAM_BYTES,
    MemoryModel,
)
from repro.kernel.neighbors import NeighborTable
from repro.kernel.syscalls import ParameterBuffer, SyscallTable
from repro.kernel.threads import ThreadTable
from repro.mac.csma import CsmaMac
from repro.net.routing.base import RoutingProtocol
from repro.net.stack import CommunicationStack
from repro.radio.cc2420 import RadioConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = ["SensorNode"]


class SensorNode:
    """One mote: hardware model plus kernel services."""

    def __init__(self, testbed: "Testbed", node_id: int, name: str,
                 position: tuple[float, float], *,
                 power_level: int = 31, channel: int = 17,
                 neighbor_kwargs: dict | None = None):
        self.testbed = testbed
        self.id = node_id
        self.name = name
        self.env = testbed.env
        self.rng = testbed.rng
        self.monitor = testbed.monitor

        self.xcvr = testbed.medium.attach(
            node_id, position,
            RadioConfig(power_level=power_level, channel=channel),
        )
        self.mac = CsmaMac(
            self.env, testbed.medium, self.xcvr, self.rng, self.monitor
        )
        self.stack = CommunicationStack(
            self.env, self.mac, self.monitor, node_id
        )
        self.memory = MemoryModel()
        self.memory.install("kernel", KERNEL_FLASH_BYTES, KERNEL_RAM_BYTES)
        self.events = EventLog(tracer=self.env.tracer, node_id=node_id)
        self.threads = ThreadTable(self.env, node_id)
        self.syscalls = SyscallTable()
        self.params = ParameterBuffer()
        #: Local clock rate relative to true simulated time (1.0 = perfect;
        #: the fault engine's ``clock_drift`` sets e.g. 1.02 for a clock
        #: running 2% fast).  Kernel timers — beacon scheduling — tick in
        #: local time, so drift skews beacon spacing the way a bad
        #: oscillator does on a real mote.
        self.clock_rate = 1.0
        self._clock_base = 0.0
        self._clock_ref = 0.0
        self.neighbors = NeighborTable(self, **(neighbor_kwargs or {}))
        #: Installed routing protocols, keyed by port.
        self.protocols: dict[int, RoutingProtocol] = {}
        #: Installed services (ping, traceroute, controller, ...) by name.
        self.services: dict[str, object] = {}
        self._register_default_syscalls()

    # -- syscalls ----------------------------------------------------------

    def _register_default_syscalls(self) -> None:
        """The kernel APIs the runtime controller reads state through."""
        sc = self.syscalls
        sc.register("get_parameters", self.params.read)
        sc.register("neighbor_table", self.neighbors.entries)
        sc.register("queue_occupancy", lambda: self.mac.queue_occupancy)
        sc.register("radio_get", lambda: {
            "power_level": self.radio.power_level,
            "channel": self.radio.channel,
        })
        sc.register("radio_set_power", self._set_power_logged)
        sc.register("radio_set_channel", self._set_channel_logged)
        sc.register("rssi_sample", self._sample_rssi)
        sc.register("event_log", self.events.recent)
        sc.register("thread_table", self.threads.alive)
        sc.register("thread_kill", self._kill_thread_logged)

    def _kill_thread_logged(self, tid: int) -> bool:
        killed = self.threads.kill(tid)
        if killed:
            self.events.log(self.env.now, "thread.killed", f"tid {tid}")
        return killed

    def _set_power_logged(self, level: int) -> None:
        before = self.radio.power_level
        self.radio.set_power_level(level)
        self.events.log(self.env.now, "radio.power", f"{before} -> {level}")

    def _set_channel_logged(self, channel: int) -> None:
        before = self.radio.channel
        self.radio.set_channel(channel)
        self.events.log(self.env.now, "radio.channel",
                        f"{before} -> {channel}")

    def _sample_rssi(self) -> int:
        """One ambient RSSI register sample on the current channel
        (energy detect — no frame reception involved)."""
        medium = self.testbed.medium
        return medium.rssi_model.reading(
            medium.ambient_power_dbm(self.xcvr)
        )

    # -- geometry / radio -------------------------------------------------------

    @property
    def position(self) -> tuple[float, float]:
        """The node's physical position (metres)."""
        return self.xcvr.position

    @position.setter
    def position(self, value: tuple[float, float]) -> None:
        # Repositioning a node is exactly the deployment-phase adjustment
        # LiteView exists to support.
        self.xcvr.position = (float(value[0]), float(value[1]))

    @property
    def radio(self) -> RadioConfig:
        """The node's radio configuration (power level, channel)."""
        return self.xcvr.config

    def lookup_position(self, node_id: int) -> tuple[float, float] | None:
        """Location lookup used by geographic forwarding.

        Prefers the beaconed position in the neighbor table; falls back to
        the testbed's location directory (modelling the location service a
        real geographic-forwarding deployment configures at install time).
        """
        beaconed = self.neighbors.position_of(node_id)
        if beaconed is not None:
            return beaconed
        return self.testbed.position_of(node_id)

    # -- protocol management -------------------------------------------------------

    def install_protocol(self, protocol_cls: type[RoutingProtocol],
                         **kwargs: object) -> RoutingProtocol:
        """Instantiate a routing protocol on this node.

        The protocol subscribes to its port in its constructor; a port
        conflict surfaces as :class:`~repro.errors.PortInUse`.
        """
        protocol = protocol_cls(self, **kwargs)  # type: ignore[arg-type]
        self.protocols[protocol.port] = protocol
        return protocol

    def protocol_on(self, port: int) -> RoutingProtocol:
        """The routing protocol installed on ``port``."""
        try:
            return self.protocols[port]
        except KeyError:
            raise KernelError(
                f"node {self.id}: no routing protocol on port {port}"
            ) from None

    def uninstall_protocol(self, port: int) -> None:
        """Stop and remove the protocol on ``port``."""
        protocol = self.protocol_on(port)
        protocol.stop()
        del self.protocols[port]

    # -- local clock -------------------------------------------------------

    def local_time(self) -> float:
        """The node's own clock reading (true time scaled by drift).

        Piecewise-linear: each :meth:`set_clock_rate` rebases so the
        local clock is continuous across rate changes, as a real
        oscillator's accumulated error would be.
        """
        return self._clock_base + (
            self.env.now - self._clock_ref
        ) * self.clock_rate

    def set_clock_rate(self, rate: float) -> None:
        """Change the local oscillator rate (fault engine hook).

        ``rate`` is local seconds per true second; 1.0 restores a
        perfect clock going forward (accumulated offset persists).
        """
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        self._clock_base = self.local_time()
        self._clock_ref = self.env.now
        self.clock_rate = float(rate)

    # -- failure injection -------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """Whether the node is currently powered."""
        return self.xcvr.enabled

    def fail(self) -> None:
        """Crash the node: radio off, transmit queue lost.

        Models a battery death or reset — the failure mode deployed
        networks exhibit and the diagnosis tools must surface (the node
        simply falls silent; its neighbors' tables age it out).
        """
        if not self.xcvr.enabled:
            return
        self.xcvr.enabled = False
        self.mac.queue.clear()
        self.monitor.count("kernel.failures")
        self.events.log(self.env.now, "kernel.failed", "node down")

    def recover(self) -> None:
        """Power the node back up (beaconing resumes on schedule).

        A recovery is a *reboot*: kernel RAM is gone, so the neighbor
        table (entries, blacklist, beacon sequence) is cleared rather
        than carried over.  Before this clear, a rebooted node kept
        months-stale neighbor entries and routed through ghosts — the
        exact stale-state failure the chaos suite pins down.
        """
        if self.xcvr.enabled:
            return
        self.xcvr.enabled = True
        self.neighbors.clear()
        self.monitor.count("kernel.recoveries")
        self.events.log(self.env.now, "kernel.recovered", "node up")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SensorNode {self.id} {self.name!r} at {self.position}>"
