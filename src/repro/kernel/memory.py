"""Flash/RAM footprint accounting against MicaZ budgets.

The paper reports compiled image sizes — ping: 2148 B flash / 278 B RAM;
traceroute: 2820 B flash / 272 B RAM — and argues they are "well
acceptable even on the resource-constrained MicaZ nodes" (128 KB flash,
4 KB RAM).  Binary sizes are a property of AVR compilation and cannot be
reproduced in Python, so per DESIGN.md we reproduce the *accounting and
admission* model instead: installed components register their paper-
reported footprints, and installation fails when a budget would be
exceeded.  The footprint bench replays the paper's numbers through this
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError, MemoryBudgetExceeded

__all__ = [
    "FLASH_BUDGET_BYTES",
    "RAM_BUDGET_BYTES",
    "KERNEL_FLASH_BYTES",
    "KERNEL_RAM_BYTES",
    "PAPER_FOOTPRINTS",
    "InstalledImage",
    "MemoryModel",
]

#: MicaZ: "an Atmega128 microcontroller, 4KB RAM, and 128K programmable
#: flash".
FLASH_BUDGET_BYTES = 128 * 1024
RAM_BUDGET_BYTES = 4 * 1024

#: LiteOS base system occupancy (order-of-magnitude from the LiteOS paper).
KERNEL_FLASH_BYTES = 30 * 1024
KERNEL_RAM_BYTES = 1600

#: The footprints §IV-C.5/6 report, keyed by command name.
PAPER_FOOTPRINTS: dict[str, tuple[int, int]] = {
    "ping": (2148, 278),
    "traceroute": (2820, 272),
}


@dataclass(frozen=True)
class InstalledImage:
    """One installed binary's accounting record."""

    name: str
    flash_bytes: int
    ram_bytes: int


class MemoryModel:
    """Per-node flash/RAM ledger with budget enforcement."""

    def __init__(self, flash_budget: int = FLASH_BUDGET_BYTES,
                 ram_budget: int = RAM_BUDGET_BYTES):
        self.flash_budget = flash_budget
        self.ram_budget = ram_budget
        self._images: dict[str, InstalledImage] = {}

    # -- queries ------------------------------------------------------------

    @property
    def flash_used(self) -> int:
        """Flash bytes consumed by installed images."""
        return sum(i.flash_bytes for i in self._images.values())

    @property
    def ram_used(self) -> int:
        """Static RAM bytes consumed by installed images."""
        return sum(i.ram_bytes for i in self._images.values())

    @property
    def flash_free(self) -> int:
        """Remaining flash budget."""
        return self.flash_budget - self.flash_used

    @property
    def ram_free(self) -> int:
        """Remaining RAM budget."""
        return self.ram_budget - self.ram_used

    def installed(self) -> list[InstalledImage]:
        """Installed images, sorted by name."""
        return sorted(self._images.values(), key=lambda i: i.name)

    def lookup(self, name: str) -> InstalledImage | None:
        """The accounting record for ``name``, if installed."""
        return self._images.get(name)

    # -- mutation ------------------------------------------------------------------

    def install(self, name: str, flash_bytes: int, ram_bytes: int
                ) -> InstalledImage:
        """Admit an image, enforcing both budgets.

        Raises :class:`MemoryBudgetExceeded` when either budget would go
        negative and :class:`KernelError` on duplicate names.
        """
        if flash_bytes < 0 or ram_bytes < 0:
            raise ValueError("footprints must be non-negative")
        if name in self._images:
            raise KernelError(f"image {name!r} already installed")
        if flash_bytes > self.flash_free:
            raise MemoryBudgetExceeded(
                f"{name!r} needs {flash_bytes} B flash; only "
                f"{self.flash_free} B free"
            )
        if ram_bytes > self.ram_free:
            raise MemoryBudgetExceeded(
                f"{name!r} needs {ram_bytes} B RAM; only "
                f"{self.ram_free} B free"
            )
        image = InstalledImage(name, flash_bytes, ram_bytes)
        self._images[name] = image
        return image

    def uninstall(self, name: str) -> None:
        """Remove an image; unknown names raise :class:`KernelError`."""
        if name not in self._images:
            raise KernelError(f"image {name!r} is not installed")
        del self._images[name]

    def report(self) -> dict[str, int]:
        """A usage summary (used by diagnostics and the footprint bench)."""
        return {
            "flash_used": self.flash_used,
            "flash_free": self.flash_free,
            "ram_used": self.ram_used,
            "ram_free": self.ram_free,
        }
