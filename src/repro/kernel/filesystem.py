"""Hierarchical node naming: the ``/sn01/192.168.0.1`` namespace.

The LiteOS shell presents the network as a file system — the paper's
sample sessions start with ``$pwd`` → ``/sn01/192.168.0.1``.  Nodes are
named "following IP conventions" in the testbed; the namespace maps names
to node ids and back, and renders shell paths.
"""

from __future__ import annotations

from repro.errors import NoSuchNode

__all__ = ["Namespace", "DEFAULT_MOUNT"]

#: The sensor-network mount point the paper's sessions show.
DEFAULT_MOUNT = "/sn01"


class Namespace:
    """Bidirectional node-id ↔ node-name directory plus path rendering."""

    def __init__(self, mount: str = DEFAULT_MOUNT):
        if not mount.startswith("/") or mount.endswith("/"):
            raise ValueError(f"mount must look like '/sn01', got {mount!r}")
        self.mount = mount
        self._by_name: dict[str, int] = {}
        self._by_id: dict[int, str] = {}

    def register(self, node_id: int, name: str) -> None:
        """Bind ``name`` to ``node_id``; both must be unused."""
        if name in self._by_name:
            raise ValueError(f"name {name!r} already registered")
        if node_id in self._by_id:
            raise ValueError(f"node id {node_id} already registered")
        if "/" in name or " " in name or not name:
            raise ValueError(f"invalid node name {name!r}")
        self._by_name[name] = node_id
        self._by_id[node_id] = name

    def resolve(self, ref: "int | str") -> int:
        """Node id for a name, a path, or an id passed through.

        Accepts bare names (``192.168.0.2``), full paths
        (``/sn01/192.168.0.2``) and integer ids.  Unknown references raise
        :class:`NoSuchNode`.
        """
        if isinstance(ref, int):
            if ref not in self._by_id:
                raise NoSuchNode(f"no node with id {ref}")
            return ref
        name = ref
        if name.startswith(self.mount + "/"):
            name = name[len(self.mount) + 1:]
        if name in self._by_name:
            return self._by_name[name]
        # Shell convenience: a purely numeric reference that is not a
        # registered name addresses the node id directly.
        if name.isdigit() and int(name) in self._by_id:
            return int(name)
        raise NoSuchNode(f"no node named {ref!r}")

    def name_of(self, node_id: int) -> str:
        """Registered name of a node id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise NoSuchNode(f"no node with id {node_id}") from None

    def path_of(self, node_id: int) -> str:
        """Shell path of a node (``/sn01/<name>``)."""
        return f"{self.mount}/{self.name_of(node_id)}"

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._by_name)

    def ids(self) -> list[int]:
        """All registered node ids, sorted."""
        return sorted(self._by_id)

    def __contains__(self, ref: object) -> bool:
        try:
            self.resolve(ref)  # type: ignore[arg-type]
        except NoSuchNode:
            return False
        return True

    def __len__(self) -> int:
        return len(self._by_id)
