"""Discrete-event simulation substrate.

The engine is a minimal generator-coroutine kernel (in the style of
SimPy): an :class:`Environment` owns the clock and event heap, processes
are generators that ``yield`` events, and conditions (:class:`AnyOf` /
:class:`AllOf`) compose waits.  :class:`RngRegistry` provides named seeded
random streams and :class:`Monitor` collects the observables the paper's
evaluation reports.
"""

from repro.sim.engine import Environment, Infinity
from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.monitor import Monitor, PacketRecord, Sample
from repro.sim.process import Process
from repro.sim.rng import RngRegistry, stable_hash

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "Process",
    "Monitor",
    "Sample",
    "PacketRecord",
    "RngRegistry",
    "stable_hash",
]
