"""Counters, time series and packet traces.

The evaluation section of the paper reports three kinds of observables:
delays (Fig. 5), per-hop link-quality readings (Fig. 6) and control-packet
counts (Fig. 7).  :class:`Monitor` is the single collection point for all
of them: subsystems increment named counters and append to named series,
and the analysis layer reads them back without reaching into protocol
internals.
"""

from __future__ import annotations

import typing as _t
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Monitor", "Sample", "PacketRecord"]


@dataclass(frozen=True)
class Sample:
    """One time-stamped observation in a named series."""

    time: float
    value: float
    tags: tuple[tuple[str, object], ...] = ()

    def tag(self, key: str) -> object:
        """Look up a tag by key (None if absent)."""
        for k, v in self.tags:
            if k == key:
                return v
        return None


@dataclass(frozen=True)
class PacketRecord:
    """One radio transmission, as logged by the medium.

    ``kind`` distinguishes traffic classes so the overhead bench can count
    only *control* packets the way the paper does.
    """

    time: float
    sender: int
    receiver: int | None  # None for broadcast
    kind: str
    port: int | None
    size_bytes: int
    delivered: bool


class Monitor:
    """Aggregates counters, series and packet logs for one simulation."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self._series: dict[str, list[Sample]] = defaultdict(list)
        self.packets: list[PacketRecord] = []

    # -- counters ------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    # -- series ----------------------------------------------------------------

    def record(self, name: str, time: float, value: float,
               **tags: object) -> None:
        """Append a sample to series ``name``."""
        self._series[name].append(
            Sample(time=time, value=value, tags=tuple(sorted(tags.items())))
        )

    def series(self, name: str) -> list[Sample]:
        """All samples recorded under ``name`` (empty list if none)."""
        return list(self._series.get(name, ()))

    def series_values(self, name: str) -> list[float]:
        """Just the values of series ``name``, in record order."""
        return [s.value for s in self._series.get(name, ())]

    def series_names(self) -> list[str]:
        """Names of series that hold at least one sample."""
        return sorted(k for k, v in self._series.items() if v)

    # -- packets ---------------------------------------------------------------

    def log_packet(self, record: PacketRecord) -> None:
        """Append a transmission record (called by the radio medium)."""
        self.packets.append(record)

    def packet_count(self, kind: str | None = None,
                     predicate: _t.Callable[[PacketRecord], bool] | None = None,
                     ) -> int:
        """Count logged transmissions, optionally filtered.

        ``kind`` filters on the record's traffic class; ``predicate`` is an
        arbitrary extra filter applied after the kind match.
        """
        records: _t.Iterable[PacketRecord] = self.packets
        if kind is not None:
            records = (r for r in records if r.kind == kind)
        if predicate is not None:
            records = (r for r in records if predicate(r))
        return sum(1 for _ in records)

    def reset(self) -> None:
        """Clear all collected data (counters, series and packet log)."""
        self.counters.clear()
        self._series.clear()
        self.packets.clear()
