"""Counters, time series and packet traces.

The evaluation section of the paper reports three kinds of observables:
delays (Fig. 5), per-hop link-quality readings (Fig. 6) and control-packet
counts (Fig. 7).  :class:`Monitor` is the single collection point for all
of them: subsystems increment named counters and append to named series,
and the analysis layer reads them back without reaching into protocol
internals.

Storage lives in a :class:`~repro.obs.metrics.MetricsRegistry`: counters
are registry counters, and every series sample also feeds a same-named
histogram, so percentile summaries (p50/p90/p99 of RTT, LQI, queue
occupancy) come for free via :attr:`Monitor.registry` and the ``stats``
shell command.  The list-of-samples API below is unchanged — existing
benches and tests read series exactly as before.
"""

from __future__ import annotations

import hashlib
import typing as _t
from collections import defaultdict
from dataclasses import dataclass

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = ["Monitor", "Sample", "PacketRecord"]


@dataclass(frozen=True, slots=True)
class Sample:
    """One time-stamped observation in a named series."""

    time: float
    value: float
    tags: tuple[tuple[str, object], ...] = ()

    def tag(self, key: str) -> object:
        """Look up a tag by key (None if absent)."""
        for k, v in self.tags:
            if k == key:
                return v
        return None


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """One radio transmission, as logged by the medium.

    ``kind`` distinguishes traffic classes so the overhead bench can count
    only *control* packets the way the paper does.

    Slotted: one is created per transmission and a long run keeps every
    record live for the digest, so skipping the per-instance dict
    matters at the 1k-node tier (~31k records per simulated minute).
    """

    time: float
    sender: int
    receiver: int | None  # None for broadcast
    kind: str
    port: int | None
    size_bytes: int
    delivered: bool


class Monitor:
    """Aggregates counters, series and packet logs for one simulation."""

    def __init__(self) -> None:
        #: The typed metrics store behind this facade.
        self.registry = MetricsRegistry()
        self._series: dict[str, list[Sample]] = defaultdict(list)
        self.packets: list[PacketRecord] = []
        # Hot-path memos of registry lookups (count/observe run per
        # frame); dropped on reset() together with the registry contents.
        self._counter_memo: dict[str, Counter] = {}
        self._histogram_memo: dict[str, Histogram] = {}
        #: Read-only per-beacon listeners (``repro.diag.online``), called
        #: as ``tap(receiver_id, origin_id, seq, arrival)`` on every
        #: decoded beacon reception.  A tuple so the disabled check in
        #: the kernel hot path is one attribute read + truth test, and
        #: so iteration never races a registration.
        self.beacon_taps: tuple = ()

    # -- beacon taps -----------------------------------------------------------

    def add_beacon_tap(self, tap: _t.Callable) -> None:
        """Register a per-beacon listener (idempotent).

        Taps must be read-only with respect to the simulation: they may
        not send packets, schedule events or draw randomness — the
        determinism suite asserts that attaching one leaves the packet
        digest unchanged.
        """
        if tap not in self.beacon_taps:
            self.beacon_taps = (*self.beacon_taps, tap)

    def remove_beacon_tap(self, tap: _t.Callable) -> None:
        """Unregister a per-beacon listener (no-op if absent)."""
        self.beacon_taps = tuple(t for t in self.beacon_taps if t is not tap)

    # -- counters ------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counter = self._counter_memo.get(name)
        if counter is None:
            counter = self.registry.counter(name)
            self._counter_memo[name] = counter
        counter.inc(amount)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        metric = self.registry.get(name)
        return metric.value if isinstance(metric, Counter) else 0

    def counter_obj(self, name: str) -> Counter:
        """The live :class:`Counter` behind ``name`` (get-or-create).

        Hot paths bind this once and bump ``.value`` directly instead of
        paying a name lookup per frame.  Creation still only happens at
        the first call, so counters keep appearing in snapshots only
        once something actually counted.
        """
        counter = self._counter_memo.get(name)
        if counter is None:
            counter = self.registry.counter(name)
            self._counter_memo[name] = counter
        return counter

    def histogram_obj(self, name: str) -> Histogram:
        """The live :class:`Histogram` behind ``name`` (get-or-create);
        the :meth:`counter_obj` pattern for high-rate observables."""
        histogram = self._histogram_memo.get(name)
        if histogram is None:
            histogram = self.registry.histogram(name)
            self._histogram_memo[name] = histogram
        return histogram

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of all counters (read-only view of the registry)."""
        return self.registry.counters()

    # -- series ----------------------------------------------------------------

    def record(self, name: str, time: float, value: float,
               **tags: object) -> None:
        """Append a sample to series ``name`` (and its histogram)."""
        self._series[name].append(
            Sample(time=time, value=value, tags=tuple(sorted(tags.items())))
        )
        self.registry.histogram(name).observe(value)

    def observe(self, name: str, value: float) -> None:
        """Feed a value to histogram ``name`` without keeping a Sample.

        The cheap path for high-rate observables (per-frame queue
        occupancy) where only the distribution matters, not the
        individual time-stamped points.
        """
        histogram = self._histogram_memo.get(name)
        if histogram is None:
            histogram = self.registry.histogram(name)
            self._histogram_memo[name] = histogram
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The histogram behind series/observations named ``name``."""
        return self.registry.histogram(name)

    def percentiles(self, name: str) -> dict[str, float | int | None]:
        """Summary (count/min/mean/max/p50/p90/p99) of ``name``."""
        return self.registry.histogram(name).summary()

    def series(self, name: str) -> list[Sample]:
        """All samples recorded under ``name`` (empty list if none)."""
        return list(self._series.get(name, ()))

    def series_values(self, name: str) -> list[float]:
        """Just the values of series ``name``, in record order."""
        return [s.value for s in self._series.get(name, ())]

    def series_names(self) -> list[str]:
        """Names of series that hold at least one sample."""
        return sorted(k for k, v in self._series.items() if v)

    # -- packets ---------------------------------------------------------------

    def log_packet(self, record: PacketRecord) -> None:
        """Append a transmission record (called by the radio medium)."""
        self.packets.append(record)

    def packet_count(self, kind: str | None = None,
                     predicate: _t.Callable[[PacketRecord], bool] | None = None,
                     ) -> int:
        """Count logged transmissions, optionally filtered.

        ``kind`` filters on the record's traffic class; ``predicate`` is an
        arbitrary extra filter applied after the kind match.
        """
        records: _t.Iterable[PacketRecord] = self.packets
        if kind is not None:
            records = (r for r in records if r.kind == kind)
        if predicate is not None:
            records = (r for r in records if predicate(r))
        return sum(1 for _ in records)

    def packet_digest(self) -> str:
        """Order-sensitive SHA-256 of the full packet log.

        The bit-for-bit identity the golden-determinism suite and the
        campaign runner compare: two runs share a digest iff every
        transmission matched in time (exact float), endpoints, kind,
        port, size and delivery outcome, in the same order.
        """
        h = hashlib.sha256()
        for r in self.packets:
            h.update(repr((r.time.hex(), r.sender, r.receiver, r.kind,
                           r.port, r.size_bytes, r.delivered)).encode())
        return h.hexdigest()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, *, include_series: bool = True,
                 include_packets: bool = True) -> dict:
        """Plain-data dump of everything collected — picklable and
        JSON-ready, for cross-process return from campaign workers.

        ``counters``/``gauges``/``histograms`` mirror
        :meth:`MetricsRegistry.snapshot`; the packet log is summarised
        as its count and order-sensitive digest rather than shipped
        record by record.

        The flags exist for frequent pollers (the live fleet server):
        ``include_series=False`` skips copying every time series and
        ``include_packets=False`` skips the O(packets) digest hash, so
        a registry-only snapshot stays cheap on a long-lived sim.
        """
        snap = self.registry.snapshot()
        if include_series:
            snap["series"] = {
                name: [[s.time, s.value] for s in samples]
                for name, samples in sorted(self._series.items()) if samples
            }
        snap["n_packets"] = len(self.packets)
        if include_packets:
            snap["packet_sha256"] = self.packet_digest()
        return snap

    def reset(self) -> None:
        """Clear all collected data (counters, series and packet log)."""
        self.registry.reset()
        self._series.clear()
        self.packets.clear()
        self._counter_memo.clear()
        self._histogram_memo.clear()
