"""Named, seeded random streams.

Every stochastic component in the simulator (shadowing, packet loss,
backoff jitter, ...) draws from its own named stream derived from a single
master seed.  Two properties follow:

* **Reproducibility** — the same master seed regenerates the exact same
  world, so benches and examples are deterministic.
* **Insensitivity to call order** — adding draws to one subsystem does not
  perturb any other subsystem's sequence, because streams are independent
  generators rather than interleaved consumers of one generator.

Streams are derived with :class:`numpy.random.SeedSequence` keyed by a
stable CRC32 of the stream name (Python's ``hash`` is salted per process
and therefore unusable here).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "stable_hash"]


def stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (CRC32)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """Factory and cache for named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError(f"master seed must be >= 0, got {master_seed}")
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=(stable_hash(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one.

        Used by parameter sweeps to give each trial its own world while
        keeping trials reproducible: ``registry.fork(trial_index)``.
        """
        return RngRegistry((self.master_seed * 0x9E3779B1 + salt) & 0x7FFFFFFF)

    def names(self) -> list[str]:
        """Names of streams that have been materialised so far."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RngRegistry seed={self.master_seed} "
            f"streams={len(self._streams)}>"
        )
