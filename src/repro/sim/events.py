"""Event primitives for the discrete-event engine.

The engine follows the classic generator-coroutine design: simulated
activities are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events *process*.  This module defines the event
types; the scheduler lives in :mod:`repro.sim.engine` and the coroutine
driver in :mod:`repro.sim.process`.

Lifecycle of an event::

    created -> triggered (has a value, sits in the heap) -> processed
               (callbacks have run)

``succeed``/``fail`` trigger an event explicitly; :class:`Timeout` triggers
itself at construction time for ``delay`` seconds in the future.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AnyOf", "AllOf"]

#: Sentinel for "this event has no value yet".
PENDING = object()

#: Scheduling priority for urgent bookkeeping events (process init,
#: interrupts).  Lower sorts earlier at equal timestamps.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Event:
    """A happening at a point in simulated time.

    Events carry a *value* (delivered to a waiting process via ``yield``)
    or an *exception* (thrown into the waiting process).  Callbacks added
    after the event has processed fire immediately, which keeps condition
    composition free of races.
    """

    # Events are the engine's unit of allocation — tens of thousands per
    # simulated minute — so they carry no __dict__.
    __slots__ = ("env", "callbacks", "_value", "_exc", "_ok", "_processed",
                 "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[_t.Callable[[Event], None]] | None = []
        self._value: object = PENDING
        self._exc: BaseException | None = None
        self._ok: bool | None = None
        self._processed = False
        #: Set when a failure has been delivered somewhere (a process or a
        #: condition absorbed it); unabsorbed failures crash ``env.run``.
        self.defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and sits in the schedule."""
        return self._value is not PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The event's value (or raises its stored exception)."""
        if self._exc is not None:
            raise self._exc
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The stored failure, if the event failed."""
        return self._exc

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with ``exc``."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._exc = exc
        self.env.schedule(self)
        return self

    # -- callback plumbing --------------------------------------------------

    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event processes.

        If the event has already processed the callback fires immediately;
        this makes late subscription (e.g. conditions over already-finished
        processes) well defined.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Unsubscribe a callback previously added (no-op if absent)."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def _process(self) -> None:
        """Run the callbacks.  Called exactly once by the scheduler."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after it is created."""

    #: ``_pooled`` marks instances owned by the environment's timeout
    #: pool (see :meth:`Environment.pooled_timeout`); the dispatch loop
    #: recycles those after their callbacks run.
    __slots__ = ("delay", "_pooled")

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._pooled = False
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Condition(Event):
    """Base for composite events over a fixed list of sub-events.

    Succeeds with a dict mapping each *triggered-and-successful* sub-event
    to its value once the subclass-specific quorum is reached.  Fails with
    the first sub-event failure (absorbing/defusing it).
    """

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: _t.Sequence[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            ev.add_callback(self._check)

    def _quorum(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._quorum(self._count, len(self._events)):
            self.succeed(
                {ev: ev._value for ev in self._events if ev.processed and ev.ok}
            )


class AnyOf(Condition):
    """Succeeds as soon as any sub-event succeeds (or the list is empty)."""

    __slots__ = ()

    def _quorum(self, count: int, total: int) -> bool:
        return count >= 1


class AllOf(Condition):
    """Succeeds once every sub-event has succeeded."""

    __slots__ = ()

    def _quorum(self, count: int, total: int) -> bool:
        return count == total
