"""Generator-coroutine processes for the discrete-event engine.

A *process* wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the engine; the generator resumes when
that event processes, receiving the event's value (or having its exception
thrown in).  A process is itself an event that triggers when the generator
returns, so processes compose: one process can ``yield`` another to wait
for it, or pass it to :class:`~repro.sim.events.AnyOf` for timeouts.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import URGENT, Event

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Process"]

ProcessGenerator = _t.Generator[Event, object, object]


class Process(Event):
    """Drives a generator through the event loop.

    The process event succeeds with the generator's return value, or fails
    with any exception that escapes the generator (including an uncaught
    :class:`~repro.errors.ProcessInterrupt`).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process() needs a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None when running or
        #: finished).
        self._target: Event | None = None
        # Bootstrap: resume the generator for the first time as an urgent
        # event at the current instant.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the generator.

        The interrupt is delivered as an urgent event at the current
        simulated instant.  Interrupting a finished process is a no-op,
        matching the "best effort cancellation" semantics the LiteView
        controller relies on when it tears down command threads.
        """
        if self.triggered:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        poke = Event(self.env)
        poke._ok = False
        poke._exc = ProcessInterrupt(cause)
        poke.defused = True  # delivery into the generator absorbs it
        poke.add_callback(self._resume)
        self.env.schedule(poke, priority=URGENT)

    # -- engine plumbing ----------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            # An interrupt raced the bootstrap (or another interrupt) and
            # the generator already finished; late resumes are no-ops.
            if not event._ok:
                event.defused = True
            return
        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._exc)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}, not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        if next_event.env is not self.env:
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another "
                "environment"
            ))
            return
        self._target = next_event
        next_event.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"
