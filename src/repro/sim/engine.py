"""The discrete-event scheduler.

:class:`Environment` owns the simulated clock and the event heap.  It is
deliberately small: deterministic ordering, a handful of factory helpers,
and strict failure propagation (an event that fails with nobody listening
crashes ``run`` — silent losses hide protocol bugs).

Determinism: events at equal timestamps order by (priority, insertion
sequence), so two runs of the same seeded scenario produce identical
traces.  This property is load-bearing for the benchmark suite, which
regenerates the paper's figures bit-for-bit.
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.errors import SimulationError
from repro.obs.trace import Tracer
from repro.sim.events import NORMAL, AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SimProfiler

__all__ = ["Environment", "Infinity"]

#: Sentinel horizon for "run until the heap drains".
Infinity = float("inf")


class Environment:
    """A single simulated world: clock + event heap + factories."""

    #: Recycled pooled timeouts kept per environment (see
    #: :meth:`pooled_timeout`); bounded so a burst cannot pin memory.
    _POOL_LIMIT = 1024

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        #: Structured tracer shared by every subsystem of this world.
        #: Disabled by default; call sites guard on ``tracer.enabled``.
        self.tracer = Tracer()
        #: Opt-in wall-clock profiler (see :mod:`repro.obs.profiler`).
        #: ``None`` keeps dispatch on the unmeasured fast path.
        self.profiler: "SimProfiler | None" = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap ``delay`` seconds ahead."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Timestamp of the next event, or ``Infinity`` if none pending."""
        return self._heap[0][0] if self._heap else Infinity

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _eid, event = heapq.heappop(self._heap)
        self._now = when
        profiler = self.profiler
        if profiler is None:
            event._process()
        else:
            profiler.measure(event)
        if not event._ok and not event.defused:
            # A failure nobody absorbed: surface it loudly.
            raise event._exc  # type: ignore[misc]
        if event.__class__ is Timeout and event._pooled:
            self._recycle(event)

    def _recycle(self, timeout: Timeout) -> None:
        if len(self._timeout_pool) < self._POOL_LIMIT:
            self._timeout_pool.append(timeout)

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        * ``until=None`` — run until the heap drains.
        * ``until=<number>`` — run until simulated time reaches it (the
          clock lands exactly on ``until`` even if the heap drains early).
        * ``until=<Event>`` — run until that event processes and return its
          value; raise :class:`SimulationError` if the heap drains first.

        With no profiler attached, dispatch is inlined here instead of
        going through :meth:`step` — one Python frame per event is the
        difference between interactive and sluggish on 100-node testbeds.
        """
        if until is None:
            heap = self._heap
            pop = heapq.heappop
            pool = self._timeout_pool
            while heap:
                # Attached mid-run (the shell's `profile on`)?  Hand the
                # rest of the run to the measured dispatch path.
                if self.profiler is not None:
                    while self._heap:
                        self.step()
                    return None
                when, _prio, _eid, event = pop(heap)
                self._now = when
                event._process()
                if not event._ok and not event.defused:
                    raise event._exc  # type: ignore[misc]
                if (event.__class__ is Timeout and event._pooled
                        and len(pool) < self._POOL_LIMIT):
                    pool.append(event)
            return None

        if isinstance(until, Event):
            target = until
            if target.processed:
                return target.value
            done: list[Event] = []
            target.add_callback(done.append)
            heap = self._heap
            pop = heapq.heappop
            pool = self._timeout_pool
            while heap and not done:
                if self.profiler is not None:
                    self.step()
                    continue
                when, _prio, _eid, event = pop(heap)
                self._now = when
                event._process()
                if not event._ok and not event.defused:
                    raise event._exc  # type: ignore[misc]
                if (event.__class__ is Timeout and event._pooled
                        and len(pool) < self._POOL_LIMIT):
                    pool.append(event)
            if not done:
                raise SimulationError(
                    f"schedule drained before {target!r} triggered"
                )
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        heap = self._heap
        pop = heapq.heappop
        pool = self._timeout_pool
        while heap and heap[0][0] <= horizon:
            if self.profiler is not None:
                self.step()
                continue
            when, _prio, _eid, event = pop(heap)
            self._now = when
            event._process()
            if not event._ok and not event.defused:
                raise event._exc  # type: ignore[misc]
            if (event.__class__ is Timeout and event._pooled
                    and len(pool) < self._POOL_LIMIT):
                pool.append(event)
        self._now = horizon
        return None

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """A bare, untriggered event (trigger with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: object = None) -> Timeout:
        """A recycled timeout for yield-and-forget delays.

        Identical to :meth:`timeout` except the instance returns to a
        per-environment free pool right after its callbacks run, skipping
        an allocation per delay — CSMA backoffs alone account for tens of
        thousands per simulated minute.

        Use it **only** where the sole consumer is the immediate ``yield``
        (or a single ``add_callback``): holding a pooled timeout past its
        firing — storing it, putting it in a :class:`Condition`, passing
        it to ``run(until=...)`` — reads recycled state.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            if delay < 0:
                pool.append(timeout)
                raise SimulationError(f"negative timeout delay {delay!r}")
            timeout.delay = delay
            timeout.callbacks = []
            timeout._value = value
            timeout._exc = None
            timeout._ok = True
            timeout._processed = False
            timeout.defused = False
            self.schedule(timeout, delay=delay)
            return timeout
        timeout = Timeout(self, delay, value)
        timeout._pooled = True
        return timeout

    def call_at(self, when: float, fn: _t.Callable[[], None]) -> Event:
        """Schedule ``fn()`` to run at absolute simulated time ``when``.

        The hook the fault-injection engine compiles plans through: a
        plan's activations are plain callbacks at fixed times, ordered
        against same-instant traffic by insertion order like every
        other event.  ``when`` in the past (including "now") fires on
        the next dispatch without moving the clock backwards.
        """
        event = Timeout(self, max(0.0, when - self._now))
        event.add_callback(lambda _ev: fn())
        return event

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Launch ``generator`` as a simulated process."""
        return Process(self, generator, name=name)

    def any_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition that succeeds when all of ``events`` succeed."""
        return AllOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now:.6f}s pending={len(self._heap)}>"
