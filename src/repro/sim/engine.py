"""The discrete-event scheduler.

:class:`Environment` owns the simulated clock and the event heap.  It is
deliberately small: deterministic ordering, a handful of factory helpers,
and strict failure propagation (an event that fails with nobody listening
crashes ``run`` — silent losses hide protocol bugs).

Determinism: events at equal timestamps order by (priority, insertion
sequence), so two runs of the same seeded scenario produce identical
traces.  This property is load-bearing for the benchmark suite, which
regenerates the paper's figures bit-for-bit.
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.errors import SimulationError
from repro.obs.trace import Tracer
from repro.sim.events import NORMAL, AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SimProfiler

__all__ = ["Environment", "Infinity"]

#: Sentinel horizon for "run until the heap drains".
Infinity = float("inf")


class Environment:
    """A single simulated world: clock + event heap + factories."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Process | None = None
        #: Structured tracer shared by every subsystem of this world.
        #: Disabled by default; call sites guard on ``tracer.enabled``.
        self.tracer = Tracer()
        #: Opt-in wall-clock profiler (see :mod:`repro.obs.profiler`).
        #: ``None`` keeps dispatch on the unmeasured fast path.
        self.profiler: "SimProfiler | None" = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap ``delay`` seconds ahead."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Timestamp of the next event, or ``Infinity`` if none pending."""
        return self._heap[0][0] if self._heap else Infinity

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _eid, event = heapq.heappop(self._heap)
        self._now = when
        profiler = self.profiler
        if profiler is None:
            event._process()
        else:
            profiler.measure(event)
        if not event._ok and not event.defused:
            # A failure nobody absorbed: surface it loudly.
            raise event._exc  # type: ignore[misc]

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        * ``until=None`` — run until the heap drains.
        * ``until=<number>`` — run until simulated time reaches it (the
          clock lands exactly on ``until`` even if the heap drains early).
        * ``until=<Event>`` — run until that event processes and return its
          value; raise :class:`SimulationError` if the heap drains first.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            target = until
            if target.processed:
                return target.value
            done: list[Event] = []
            target.add_callback(done.append)
            while self._heap and not done:
                self.step()
            if not done:
                raise SimulationError(
                    f"schedule drained before {target!r} triggered"
                )
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """A bare, untriggered event (trigger with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Launch ``generator`` as a simulated process."""
        return Process(self, generator, name=name)

    def any_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition that succeeds when all of ``events`` succeed."""
        return AllOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now:.6f}s pending={len(self._heap)}>"
