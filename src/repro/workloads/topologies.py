"""Topology generators: node placements for testbeds.

All generators return position lists; the ``build_*`` helpers wrap them
into ready :class:`~repro.kernel.testbed.Testbed` instances with the
paper's IP-convention node names ("we assign names following IP
conventions to each node").
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.kernel.testbed import Testbed
from repro.sim.rng import RngRegistry

__all__ = [
    "chain_positions",
    "grid_positions",
    "random_disk_positions",
    "city_positions",
    "ip_names",
    "build_chain",
    "build_grid",
    "build_random_field",
    "build_city",
]

#: Default adjacent-node spacing (metres) tuned so, at full power with the
#: default propagation model, adjacent links are strong (~ -93 dBm,
#: SNR ≈ 5 dB) while two-hop links sit below the routing quality filter —
#: which is what forces genuinely multi-hop paths, as in the paper's
#: eight-hop testbed.
DEFAULT_SPACING = 60.0


def chain_positions(n_nodes: int,
                    spacing: float = DEFAULT_SPACING
                    ) -> list[tuple[float, float]]:
    """``n_nodes`` in a straight line, ``spacing`` metres apart."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return [(i * spacing, 0.0) for i in range(n_nodes)]


def grid_positions(rows: int, cols: int,
                   spacing: float = DEFAULT_SPACING,
                   jitter: float = 0.0,
                   rng: RngRegistry | None = None
                   ) -> list[tuple[float, float]]:
    """A rows×cols lattice with optional uniform position jitter."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    if jitter and rng is None:
        raise ValueError("jitter needs an RngRegistry")
    stream = rng.stream("topology.grid") if rng else None
    positions = []
    for r in range(rows):
        for c in range(cols):
            x, y = c * spacing, r * spacing
            if stream is not None and jitter > 0:
                x += float(stream.uniform(-jitter, jitter))
                y += float(stream.uniform(-jitter, jitter))
            positions.append((x, y))
    return positions


def random_disk_positions(n_nodes: int, radius: float,
                          rng: RngRegistry,
                          min_separation: float = 5.0,
                          max_tries: int = 10_000
                          ) -> list[tuple[float, float]]:
    """Uniform placements in a disk with a minimum pairwise separation."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    stream = rng.stream("topology.disk")
    positions: list[tuple[float, float]] = []
    tries = 0
    while len(positions) < n_nodes:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {n_nodes} nodes with separation "
                f"{min_separation} in radius {radius}"
            )
        r = radius * float(np.sqrt(stream.uniform(0, 1)))
        theta = float(stream.uniform(0, 2 * np.pi))
        candidate = (r * float(np.cos(theta)), r * float(np.sin(theta)))
        if all((candidate[0] - p[0]) ** 2 + (candidate[1] - p[1]) ** 2
               >= min_separation ** 2 for p in positions):
            positions.append(candidate)
    return positions


def city_positions(districts_x: int, districts_y: int, per_district: int,
                   *, pitch: float = 1500.0,
                   spacing: float = 45.0,
                   jitter: float | None = None,
                   rng: RngRegistry | None = None,
                   bridges: bool = True) -> list[tuple[float, float]]:
    """A city-scale deployment: dense districts, sparse bridges.

    ``districts_x × districts_y`` clustered districts of ``per_district``
    nodes each (jittered sub-grids at ``spacing``), their origins
    ``pitch`` metres apart — far enough that, under the realistic
    propagation model, no node in one district can hear any node in the
    next.  With ``bridges=True`` a relay node sits at the midpoint of
    every adjacent district pair, stitching the city into one connected
    network; with ``bridges=False`` each district is its own radio
    island (the multi-medium partitioning demo).

    Order is deterministic: districts row-major, nodes within a district
    row-major, then all bridge relays (horizontal sweeps before vertical).
    """
    if districts_x < 1 or districts_y < 1:
        raise ValueError("city needs positive district dimensions")
    if per_district < 1:
        raise ValueError("districts need at least one node")
    if jitter is None:
        jitter = spacing * 0.15
    if jitter and rng is None:
        raise ValueError("jitter needs an RngRegistry")
    stream = rng.stream("topology.city") if rng else None

    rows = max(1, int(np.sqrt(per_district)))
    cols = -(-per_district // rows)  # ceil
    extent_x = (cols - 1) * spacing
    extent_y = (rows - 1) * spacing

    def jittered(x: float, y: float) -> tuple[float, float]:
        if stream is not None and jitter > 0:
            x += float(stream.uniform(-jitter, jitter))
            y += float(stream.uniform(-jitter, jitter))
        return (x, y)

    positions: list[tuple[float, float]] = []
    for dy in range(districts_y):
        for dx in range(districts_x):
            ox, oy = dx * pitch, dy * pitch
            placed = 0
            for r in range(rows):
                for c in range(cols):
                    if placed == per_district:
                        break
                    positions.append(jittered(ox + c * spacing,
                                              oy + r * spacing))
                    placed += 1
    if bridges:
        # Relays at the midpoints of adjacent district *centers*: close
        # enough to both districts' fringes to carry traffic between
        # them, and to nothing else.
        cx_of = [dx * pitch + extent_x / 2.0 for dx in range(districts_x)]
        cy_of = [dy * pitch + extent_y / 2.0 for dy in range(districts_y)]
        for dy in range(districts_y):
            for dx in range(districts_x - 1):
                positions.append(jittered(
                    (cx_of[dx] + cx_of[dx + 1]) / 2.0, cy_of[dy]))
        for dy in range(districts_y - 1):
            for dx in range(districts_x):
                positions.append(jittered(
                    cx_of[dx], (cy_of[dy] + cy_of[dy + 1]) / 2.0))
    return positions


def ip_names(count: int, subnet: str = "192.168.0") -> list[str]:
    """IP-convention node names, as in the paper's testbed.

    Past 254 hosts the subnet's last octet rolls over (``192.168.0.254``
    is followed by ``192.168.1.1``), keeping the names IP-plausible for
    the 1k-node city tier.
    """
    if count <= 254 or "." not in subnet:
        return [f"{subnet}.{i + 1}" for i in range(count)]
    head, _, base = subnet.rpartition(".")
    start = int(base)
    return [
        f"{head}.{start + i // 254}.{i % 254 + 1}" for i in range(count)
    ]


def _populate(testbed: Testbed, positions: _t.Sequence[tuple[float, float]],
              **node_kwargs: object) -> Testbed:
    for name, pos in zip(ip_names(len(positions)), positions):
        testbed.add_node(name, pos, **node_kwargs)  # type: ignore[arg-type]
    return testbed


def build_chain(n_nodes: int, *, spacing: float = DEFAULT_SPACING,
                seed: int = 1, propagation_kwargs: dict | None = None,
                **node_kwargs: object) -> Testbed:
    """A chain testbed (n_nodes - 1 hops end to end)."""
    testbed = Testbed(seed=seed, propagation_kwargs=propagation_kwargs)
    return _populate(testbed, chain_positions(n_nodes, spacing),
                     **node_kwargs)


def build_grid(rows: int, cols: int, *, spacing: float = DEFAULT_SPACING,
               jitter: float = 0.0, seed: int = 1,
               propagation_kwargs: dict | None = None,
               **node_kwargs: object) -> Testbed:
    """A grid testbed, optionally position-jittered."""
    testbed = Testbed(seed=seed, propagation_kwargs=propagation_kwargs)
    positions = grid_positions(rows, cols, spacing, jitter, testbed.rng)
    return _populate(testbed, positions, **node_kwargs)


def build_random_field(n_nodes: int, radius: float, *, seed: int = 1,
                       min_separation: float = 20.0,
                       propagation_kwargs: dict | None = None,
                       **node_kwargs: object) -> Testbed:
    """Nodes scattered uniformly in a disk."""
    testbed = Testbed(seed=seed, propagation_kwargs=propagation_kwargs)
    positions = random_disk_positions(
        n_nodes, radius, testbed.rng, min_separation
    )
    return _populate(testbed, positions, **node_kwargs)


def build_city(districts_x: int, districts_y: int, per_district: int, *,
               pitch: float = 1500.0, spacing: float = 45.0,
               bridges: bool = True, seed: int = 1,
               propagation_kwargs: dict | None = None,
               partitioned: bool = False,
               **node_kwargs: object) -> Testbed:
    """A city testbed (see :func:`city_positions`)."""
    testbed = Testbed(seed=seed, propagation_kwargs=propagation_kwargs,
                      partitioned=partitioned)
    positions = city_positions(
        districts_x, districts_y, per_district,
        pitch=pitch, spacing=spacing, rng=testbed.rng, bridges=bridges,
    )
    return _populate(testbed, positions, **node_kwargs)
