"""Workloads: topology generators, canned scenarios, background traffic."""

from repro.workloads.scenarios import (
    corridor_chain,
    QUIET_PROPAGATION,
    REALISTIC_PROPAGATION,
    eight_hop_chain,
    hundred_node_field,
    thirty_node_field,
    thousand_node_city,
)
from repro.workloads.topologies import (
    build_chain,
    build_city,
    build_grid,
    build_random_field,
    chain_positions,
    city_positions,
    grid_positions,
    ip_names,
    random_disk_positions,
)
from repro.workloads.traffic import APP_SINK_PORT, Flow, TrafficGenerator

__all__ = [
    "chain_positions",
    "grid_positions",
    "random_disk_positions",
    "ip_names",
    "city_positions",
    "build_chain",
    "build_city",
    "build_grid",
    "build_random_field",
    "eight_hop_chain",
    "thirty_node_field",
    "hundred_node_field",
    "thousand_node_city",
    "corridor_chain",
    "QUIET_PROPAGATION",
    "REALISTIC_PROPAGATION",
    "Flow",
    "TrafficGenerator",
    "APP_SINK_PORT",
]
