"""Canned testbed scenarios matching the paper's evaluation setups.

* :func:`eight_hop_chain` — "a testbed of eight hops in diameter"
  (Figures 5, 6, 7).
* :func:`thirty_node_field` — "a testbed composed of thirty MicaZ nodes"
  (§III-B.3), as a jittered 6×5 grid.
* :func:`hundred_node_field` — a 10×10 jittered grid for the long-duration
  link studies related work runs at scale; opened up by the vectorized
  medium (see docs/PERFORMANCE.md).
* All use deterministic propagation unless asked otherwise, so benches
  regenerate identical figures run over run.
"""

from __future__ import annotations

from repro.kernel.testbed import Testbed
from repro.workloads.topologies import build_chain, build_city, build_grid

__all__ = [
    "eight_hop_chain",
    "thirty_node_field",
    "hundred_node_field",
    "thousand_node_city",
    "corridor_chain",
    "QUIET_PROPAGATION",
    "REALISTIC_PROPAGATION",
]

#: Deterministic propagation: no shadowing or fading draws.  Scenario
#: realism (asymmetry, gray links) is opted into via ``realistic=True``.
QUIET_PROPAGATION = {"shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0}

#: Mild, realistic stochastic propagation for diagnosis scenarios.
REALISTIC_PROPAGATION = {"shadowing_sigma_db": 3.0, "fading_sigma_db": 0.8}


def eight_hop_chain(seed: int = 1, *, spacing: float = 60.0,
                    realistic: bool = False) -> Testbed:
    """Nine nodes in a line: the paper's 8-hop-diameter testbed."""
    return build_chain(
        9, spacing=spacing, seed=seed,
        propagation_kwargs=(REALISTIC_PROPAGATION if realistic
                            else QUIET_PROPAGATION),
    )


def corridor_chain(n_nodes: int = 9, *, spacing: float = 22.0,
                   seed: int = 1, wall_loss_db: float = 25.0,
                   shadowing_sigma_db: float = 2.0) -> Testbed:
    """A dense indoor chain whose path is pinned to adjacency.

    The paper's Figure 6 probes the *same* 8-hop path at PA levels 10
    and 25.  At low power that needs short links; at high power short
    links would let greedy forwarding skip hops.  Real indoor testbeds
    resolve this with walls: non-adjacent nodes are separated by
    additional obstruction loss.  We model exactly that by pinning
    ``wall_loss_db`` of extra shadowing on every non-adjacent directed
    pair, while adjacent links keep mild random (asymmetric) shadowing.
    """
    testbed = build_chain(
        n_nodes, spacing=spacing, seed=seed,
        propagation_kwargs={
            "shadowing_sigma_db": shadowing_sigma_db,
            "fading_sigma_db": 0.8,
        },
    )
    ids = [node.id for node in testbed.nodes()]
    for i, a in enumerate(ids):
        for j, b in enumerate(ids):
            if a != b and abs(i - j) >= 2:
                base = testbed.propagation.link_shadowing_db(a, b)
                testbed.propagation.set_link_shadowing_db(
                    a, b, base + wall_loss_db
                )
    return testbed


def thirty_node_field(seed: int = 1, *, spacing: float = 45.0,
                      realistic: bool = True) -> Testbed:
    """Thirty nodes as a jittered 6×5 grid — the §III-B.3 testbed."""
    return build_grid(
        6, 5, spacing=spacing, jitter=spacing * 0.15, seed=seed,
        propagation_kwargs=(REALISTIC_PROPAGATION if realistic
                            else QUIET_PROPAGATION),
    )


def hundred_node_field(seed: int = 1, *, spacing: float = 45.0,
                       realistic: bool = True) -> Testbed:
    """One hundred nodes as a jittered 10×10 grid.

    Larger than anything in the paper itself: this is the scale of the
    WSN-link measurement studies in related work (Fu et al.), and exists
    to exercise — and benchmark — the medium's vectorized hot path on a
    topology where every transmission has ~99 candidate receivers.
    """
    return build_grid(
        10, 10, spacing=spacing, jitter=spacing * 0.15, seed=seed,
        propagation_kwargs=(REALISTIC_PROPAGATION if realistic
                            else QUIET_PROPAGATION),
    )


def thousand_node_city(seed: int = 1, *, districts: int = 5,
                       per_district: int = 40, pitch: float = 1500.0,
                       spacing: float = 45.0, bridges: bool = True,
                       realistic: bool = True,
                       partitioned: bool = False) -> Testbed:
    """A 1k-node city: clustered districts, sparse inter-district bridges.

    The default is 5×5 districts of 40 nodes plus 40 bridge relays —
    1040 nodes, an order of magnitude past :func:`hundred_node_field`.
    Districts sit ``pitch`` metres apart, beyond the conservative radio
    range of the realistic propagation model, so every transmission has
    ~40 in-range candidates out of >1000 attached radios: the scenario
    exists to exercise — and benchmark — the medium's spatial-index
    pruning (>90% of receivers skipped per transmission).

    ``bridges=False`` drops the relays, leaving ``districts²`` mutually
    unreachable radio islands; combined with ``partitioned=True`` each
    island runs on its own child medium (``repro.radio.partition``).
    """
    return build_city(
        districts, districts, per_district,
        pitch=pitch, spacing=spacing, bridges=bridges, seed=seed,
        propagation_kwargs=(REALISTIC_PROPAGATION if realistic
                            else QUIET_PROPAGATION),
        partitioned=partitioned,
    )
