"""Background application traffic: the load that creates hotspots.

The abstract's hotspot-diagnosis claim needs congested nodes to find.
:class:`TrafficGenerator` runs periodic application flows over a routing
protocol; nodes on the shared segments of several flows accumulate MAC
queue backlog and inflated per-hop delays — exactly what the traceroute-
based hotspot detector looks for.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import ProcessInterrupt
from repro.kernel.testbed import Testbed
from repro.sim.process import Process

__all__ = ["Flow", "TrafficGenerator", "APP_SINK_PORT"]

#: Port the generator's sink subscribes on at every node.
APP_SINK_PORT = 60


@dataclass(frozen=True)
class Flow:
    """One periodic unicast flow."""

    src: int
    dst: int
    interval: float = 0.2
    payload_bytes: int = 24

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("flow interval must be positive")
        if not 0 <= self.payload_bytes <= 60:
            raise ValueError("flow payload must fit the payload region")


class TrafficGenerator:
    """Drives a set of flows over an installed routing protocol."""

    def __init__(self, testbed: Testbed, flows: _t.Sequence[Flow], *,
                 routing_port: int = 10):
        self.testbed = testbed
        self.flows = list(flows)
        self.routing_port = routing_port
        self.delivered = 0
        self.sent = 0
        self._processes: list[Process] = []
        for node in testbed.nodes():
            if node.stack.ports.holder(APP_SINK_PORT) is None:
                node.stack.ports.subscribe(
                    APP_SINK_PORT, self._sink, name="app-sink"
                )

    def _sink(self, packet, arrival) -> None:
        self.delivered += 1
        self.testbed.monitor.count("traffic.delivered")

    def start(self) -> None:
        """Launch one process per flow (idempotent)."""
        if self._processes:
            return
        for index, flow in enumerate(self.flows):
            self._processes.append(self.testbed.env.process(
                self._drive(flow, index), name=f"flow-{index}"
            ))

    def stop(self) -> None:
        """Interrupt all flow processes."""
        for process in self._processes:
            process.interrupt("traffic stopped")
        self._processes.clear()

    def _drive(self, flow: Flow, index: int):
        env = self.testbed.env
        rng = self.testbed.rng.stream(f"traffic.{index}")
        src = self.testbed.node(flow.src)
        payload = bytes(flow.payload_bytes)
        try:
            # Staggered start so flows do not begin in lockstep.
            yield env.timeout(float(rng.uniform(0, flow.interval)))
            while True:
                protocol = src.protocols.get(self.routing_port)
                if protocol is not None:
                    if protocol.send(flow.dst, APP_SINK_PORT, payload,
                                     kind="app"):
                        self.sent += 1
                        self.testbed.monitor.count("traffic.sent")
                jitter = float(rng.uniform(0.9, 1.1))
                yield env.timeout(flow.interval * jitter)
        except ProcessInterrupt:
            return

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent (1.0 when nothing sent yet)."""
        return self.delivered / self.sent if self.sent else 1.0
