"""Physical units, time constants and radio arithmetic helpers.

All simulated time inside :mod:`repro.sim` is expressed in *float seconds*.
User-facing results follow the paper and report milliseconds.  This module
centralises the conversion constants and the dBm/mW helpers used by the
PHY model so no magic numbers leak into the rest of the code base.
"""

from __future__ import annotations

import math

__all__ = [
    "US",
    "MS",
    "SECOND",
    "SYMBOL_TIME",
    "BYTE_AIRTIME",
    "BITRATE_BPS",
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_sum",
    "ms",
    "us",
    "to_ms",
]

#: One microsecond, in seconds.
US = 1e-6
#: One millisecond, in seconds.
MS = 1e-3
#: One second, in seconds (for symmetry / readability).
SECOND = 1.0

#: 802.15.4 2.4 GHz O-QPSK symbol period: 16 us (62.5 ksym/s, 4 bits/symbol).
SYMBOL_TIME = 16 * US
#: Airtime of one byte at the 250 kbps 802.15.4 data rate: 32 us.
BYTE_AIRTIME = 32 * US
#: Raw PHY bit rate.
BITRATE_BPS = 250_000

_MIN_MW = 1e-30  # floor to keep log10 well-defined


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.

    Powers at or below zero are clamped to a tiny positive floor so the
    logarithm stays defined; this models "no measurable energy".
    """
    return 10.0 * math.log10(max(mw, _MIN_MW))


def dbm_sum(*levels_dbm: float) -> float:
    """Sum several powers expressed in dBm (adding them in linear space).

    Used to accumulate interference power from concurrent transmitters.
    Returns the floor value when called with no arguments.
    """
    total_mw = sum(dbm_to_mw(p) for p in levels_dbm)
    return mw_to_dbm(total_mw)


def ms(value: float) -> float:
    """Express ``value`` milliseconds in engine seconds."""
    return value * MS


def us(value: float) -> float:
    """Express ``value`` microseconds in engine seconds."""
    return value * US


def to_ms(seconds: float) -> float:
    """Convert engine seconds to milliseconds (for user-facing reports)."""
    return seconds / MS
