"""Parallel campaign runner: sharded, seeded, cached simulation sweeps.

The paper's evaluation methodology is a *campaign* — many independent
seeded trials over a parameter grid.  This package makes campaigns a
first-class object:

* :class:`~repro.campaign.spec.Campaign` / :class:`~repro.campaign.
  spec.RunSpec` — declarative grid × repeats expansion with per-run
  seeds derived by SHA-256 (order- and worker-count-independent);
* :func:`~repro.campaign.runner.run_campaign` — serial or warm-pool
  execution (:mod:`~repro.campaign.pool`: persistent pre-imported
  workers, chunked dispatch with work stealing) with per-run timeouts,
  bounded retries and partial-result reporting;
* :meth:`Campaign.shard(k, of) <repro.campaign.spec.Campaign.shard>` /
  :func:`~repro.campaign.results.merge_shards` — split a campaign
  deterministically across machines and reassemble a result
  byte-identical to the serial run;
* :class:`~repro.campaign.cache.ResultCache` — on-disk results keyed by
  (code fingerprint, scenario, params, seed), so re-runs only execute
  changed or missing cells;
* :mod:`~repro.campaign.scenarios` — the registry of spawn-safe
  scenario cells shared by benches, examples and ``python -m repro
  campaign``.

The determinism contract: a sharded campaign is bit-for-bit identical
to the serial one (see ``tests/integration/test_golden_determinism.py``).
"""

from repro.campaign.cache import ResultCache, code_fingerprint
from repro.campaign.pool import (
    WarmPool,
    get_warm_pool,
    shutdown_warm_pools,
)
from repro.campaign.results import CampaignResult, RunResult, merge_shards
from repro.campaign.runner import default_workers, execute_spec, run_campaign
from repro.campaign.scenarios import (
    resolve_scenario,
    scenario,
    scenario_names,
)
from repro.campaign.spec import Campaign, CampaignShard, RunSpec, derive_seed

__all__ = [
    "Campaign",
    "CampaignShard",
    "RunSpec",
    "derive_seed",
    "RunResult",
    "CampaignResult",
    "merge_shards",
    "ResultCache",
    "code_fingerprint",
    "run_campaign",
    "execute_spec",
    "default_workers",
    "WarmPool",
    "get_warm_pool",
    "shutdown_warm_pools",
    "scenario",
    "resolve_scenario",
    "scenario_names",
]
