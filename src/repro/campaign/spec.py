"""Declarative campaign specifications and deterministic seed derivation.

The paper's evaluation is not one simulation but a *campaign* of them:
dozens of independent seeded trials over a parameter grid (power levels,
hop counts, protocols, LQI thresholds).  A :class:`Campaign` declares
that grid once — scenario, base parameters, swept parameters, replicate
count, master seed — and :meth:`Campaign.expand` turns it into the flat,
ordered list of :class:`RunSpec` cells the runner executes.

The determinism contract lives here: a run's seed is a pure function of
``(campaign seed, scenario, parameter tuple, replicate index)``, hashed
with SHA-256.  It never depends on expansion order, worker count or
shard assignment, so a campaign sharded across processes is bit-for-bit
identical to the same campaign run serially — the property the golden
determinism suite asserts.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import typing as _t
from dataclasses import dataclass, field

__all__ = ["RunSpec", "Campaign", "CampaignShard", "derive_seed",
           "canonical_params"]

#: Seeds are 63-bit non-negative ints (RngRegistry requires >= 0).
_SEED_BITS = 63


def canonical_params(params: _t.Mapping[str, object]) -> tuple:
    """Parameters as a sorted, hashable ``((name, value), ...)`` tuple.

    Values must be JSON-representable scalars/lists so the encoding — and
    therefore every derived seed and cache key — is stable across
    processes and Python versions.
    """
    return tuple(sorted(params.items()))


def _canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variation."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(campaign_seed: int, scenario: str,
                params: _t.Mapping[str, object], replicate: int) -> int:
    """The seed for one run, independent of execution order.

    SHA-256 over the canonical JSON encoding of the identifying tuple,
    truncated to 63 bits.  Two campaigns sharing a cell (same scenario,
    params, replicate, campaign seed) derive the same seed; changing any
    component decorrelates the whole stream family.
    """
    payload = _canonical_json([
        int(campaign_seed), str(scenario),
        sorted((str(k), v) for k, v in params.items()), int(replicate),
    ])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


@dataclass(frozen=True)
class RunSpec:
    """One cell of a campaign: a scenario, its parameters, and a seed."""

    scenario: str
    params: tuple = ()          # canonical ((name, value), ...) tuple
    replicate: int = 0
    seed: int = 0
    campaign: str = ""

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def cell_key(self) -> str:
        """Stable id of the parameter cell (replicates share it)."""
        return _canonical_json(sorted((str(k), v) for k, v in self.params))

    def label(self) -> str:
        """Human-readable one-liner for progress output."""
        parts = [f"{k}={v}" for k, v in self.params]
        parts.append(f"rep={self.replicate}")
        return f"{self.scenario}({', '.join(parts)})"

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario, "params": [list(p) for p in self.params],
            "replicate": self.replicate, "seed": self.seed,
            "campaign": self.campaign,
        }

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "RunSpec":
        return cls(
            scenario=data["scenario"],
            params=tuple((k, v) for k, v in data["params"]),
            replicate=int(data["replicate"]), seed=int(data["seed"]),
            campaign=data.get("campaign", ""),
        )


@dataclass(frozen=True)
class Campaign:
    """A declarative set of runs: grid × repeats over one scenario.

    ``scenario`` names a registered scenario (see
    :mod:`repro.campaign.scenarios`) or a ``"module:function"`` dotted
    reference importable by worker processes.  ``base_params`` apply to
    every run; ``grid`` maps parameter names to value lists and expands
    to their cartesian product; each cell is repeated ``repeats`` times
    with replicate indices ``0..repeats-1``.

    ``fault_plan`` makes chaos a first-class campaign dimension: the
    plan (a :class:`~repro.faults.spec.FaultPlan`, its canonical JSON,
    or a mapping) is folded into every cell as an ordinary
    ``fault_plan`` parameter, so derived seeds and cache keys change
    with the plan automatically and sharded execution stays
    bit-identical to serial.  ``None`` (the default) adds nothing —
    cell encodings, seeds and caches are exactly the plan-free ones.
    """

    name: str
    scenario: str
    seed: int = 0
    base_params: _t.Mapping[str, object] = field(default_factory=dict)
    grid: _t.Mapping[str, _t.Sequence[object]] = field(default_factory=dict)
    repeats: int = 1
    fault_plan: object = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        overlap = set(self.base_params) & set(self.grid)
        if overlap:
            raise ValueError(
                f"parameters {sorted(overlap)} appear in both base_params "
                "and grid"
            )
        if self.fault_plan is not None and (
                "fault_plan" in self.base_params or "fault_plan" in self.grid):
            raise ValueError(
                "pass the fault plan either as Campaign.fault_plan or as a "
                "'fault_plan' parameter, not both"
            )

    def _fault_params(self) -> dict:
        """The injected ``fault_plan`` cell parameter (empty when none)."""
        if self.fault_plan is None:
            return {}
        from repro.faults.spec import FaultPlan
        return {"fault_plan": FaultPlan.from_param(self.fault_plan).to_param()}

    def cells(self) -> list[dict]:
        """The parameter dicts of the grid's cartesian product, in
        deterministic (sorted-name, given-value-order) order."""
        names = sorted(self.grid)
        fault_params = self._fault_params()
        out = []
        for combo in itertools.product(*(self.grid[n] for n in names)):
            params = dict(self.base_params)
            params.update(fault_params)
            params.update(zip(names, combo))
            out.append(params)
        return out or [dict(self.base_params) | fault_params]

    def expand(self) -> list[RunSpec]:
        """The flat ordered run list: every grid cell × every replicate."""
        specs = []
        for params in self.cells():
            canonical = canonical_params(params)
            for replicate in range(self.repeats):
                specs.append(RunSpec(
                    scenario=self.scenario, params=canonical,
                    replicate=replicate,
                    seed=derive_seed(self.seed, self.scenario, params,
                                     replicate),
                    campaign=self.name,
                ))
        return specs

    def shard(self, index: int, of: int) -> "CampaignShard":
        """Shard ``index`` (0-based) of ``of`` — the scale-out unit.

        The partition is deterministic and purely positional: expansion
        position ``i`` belongs to shard ``i % of``.  Round-robin over
        the expansion order interleaves replicates and grid cells, so
        every shard carries a representative (and therefore comparably
        expensive) slice of the campaign rather than a contiguous block
        of one parameter region.  Seeds and cache keys are content-
        addressed per cell, so shards can run on different machines,
        with different worker counts, in any order — and
        :func:`~repro.campaign.results.merge_shards` reassembles a
        result byte-identical to the unsharded serial run.
        """
        if of < 1:
            raise ValueError(f"shard count must be >= 1, got {of}")
        if not 0 <= index < of:
            raise ValueError(
                f"shard index must be in [0, {of}), got {index}")
        return CampaignShard(campaign=self, index=index, of=of)

    def __len__(self) -> int:
        n_cells = 1
        for values in self.grid.values():
            n_cells *= len(values)
        return n_cells * self.repeats


@dataclass(frozen=True)
class CampaignShard:
    """One machine's deterministic slice of a campaign.

    Behaves like a campaign for the runner (``name``, ``expand()``,
    ``len()``): ``run_campaign(campaign.shard(k, of))`` executes only
    the cells whose expansion position is ``k`` modulo ``of``.  The
    shard identity travels on the :class:`~repro.campaign.results.
    CampaignResult` (``shard=(k, of)``) so merges can sanity-check the
    partition they are reassembling.
    """

    campaign: Campaign
    index: int
    of: int

    @property
    def name(self) -> str:
        return self.campaign.name

    @property
    def shard_key(self) -> tuple[int, int]:
        return (self.index, self.of)

    def expand(self) -> list[RunSpec]:
        """This shard's cells, in campaign expansion order."""
        return [spec for i, spec in enumerate(self.campaign.expand())
                if i % self.of == self.index]

    def __len__(self) -> int:
        total = len(self.campaign)
        return (total - self.index + self.of - 1) // self.of
