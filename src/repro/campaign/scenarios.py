"""The scenario registry and the built-in campaign cells.

A *scenario* is a spawn-safe callable ``fn(seed, **params)`` that builds
a world, runs it, and returns either the :class:`~repro.kernel.testbed.
Testbed` (the runner snapshots its monitor) or a ``(testbed, values)``
pair where ``values`` is a JSON-able dict of scalar observables.
Scenarios are addressed by registry name or by a ``"module:function"``
reference, so worker processes can re-import them after a ``spawn``
start — never by closure.

The built-ins below are the cells the figure benches, the sweep benches
and the examples share: one traceroute experiment, one RSSI sweep at a
power level, one overhead measurement at a hop count, one protocol-
comparison ping run, one LQI-ablation run, and plain beaconing fields
for throughput/scaling work.
"""

from __future__ import annotations

import importlib
import typing as _t

__all__ = ["scenario", "resolve_scenario", "scenario_names"]

_SCENARIOS: dict[str, _t.Callable] = {}


def scenario(name: str) -> _t.Callable:
    """Decorator: register a scenario under ``name``."""
    def register(fn: _t.Callable) -> _t.Callable:
        if name in _SCENARIOS and _SCENARIOS[name] is not fn:
            raise ValueError(f"scenario {name!r} already registered")
        _SCENARIOS[name] = fn
        return fn
    return register


def resolve_scenario(ref: str) -> _t.Callable:
    """A scenario by registry name or ``"module:function"`` reference."""
    fn = _SCENARIOS.get(ref)
    if fn is not None:
        return fn
    if ":" in ref:
        module_name, _, qualname = ref.partition(":")
        module = importlib.import_module(module_name)
        obj: object = module
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise TypeError(f"{ref!r} resolved to non-callable {obj!r}")
        return obj
    raise KeyError(
        f"unknown scenario {ref!r}; registered: {scenario_names()} "
        "(or pass a 'module:function' reference)"
    )


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in cells
# ---------------------------------------------------------------------------

@scenario("beacon_field")
def beacon_field(seed: int, *, nodes: int = 30, minutes: float = 1.0):
    """A full LiteView field beaconing for ``minutes`` simulated minutes.

    The throughput/scaling workload: no commands, just the kernel's
    beacon traffic over the vectorized medium.
    """
    from repro.core.deploy import deploy_liteview
    from repro.workloads import (
        hundred_node_field,
        thirty_node_field,
        thousand_node_city,
    )
    if nodes == 30:
        testbed = thirty_node_field(seed=seed)
    elif nodes == 100:
        testbed = hundred_node_field(seed=seed)
    elif nodes == 1000:
        testbed = thousand_node_city(seed=seed)
    else:
        raise ValueError(
            f"beacon_field supports 30, 100 or 1000 nodes, got {nodes}")
    deploy_liteview(testbed, warm_up=60.0 * minutes)
    return testbed, {
        "transmissions": testbed.monitor.counter("medium.transmissions"),
    }


@scenario("chain_beacons")
def chain_beacons(seed: int, *, nodes: int = 5, seconds: float = 20.0,
                  spacing: float = 60.0, fault_plan: object = None):
    """A small deterministic chain beaconing for ``seconds`` — the cheap
    cell the CI campaign smoke and the golden sharding tests use.

    ``fault_plan`` (canonical JSON or ``None``) injects faults before
    the run starts; ``None`` leaves the world byte-identical to the
    historical plan-free cell.
    """
    from repro.core.deploy import deploy_liteview
    from repro.faults import install_faults
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    testbed = build_chain(int(nodes), spacing=spacing, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    install_faults(testbed, fault_plan)
    deploy_liteview(testbed, warm_up=seconds)
    return testbed, {
        "transmissions": testbed.monitor.counter("medium.transmissions"),
    }


@scenario("chaos_chain")
def chaos_chain(seed: int, *, nodes: int = 8, fault_plan: object = None,
                rounds: int = 4, length: int = 16, spacing: float = 60.0):
    """The chaos cell: a chain runs ping and traceroute *through* a fault
    plan and reports what the diagnosis tooling saw.

    Deployment warm-up takes the first 15 simulated seconds, so plans
    should schedule faults at ``at >= 15`` to hit the command phase.
    Commands may fail — that is the point — but they always return;
    values record delivery counts, traceroute reach, and the injector's
    activation tally.
    """
    from repro.core.deploy import deploy_liteview
    from repro.faults import install_faults
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    testbed = build_chain(int(nodes), spacing=spacing, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    injector = install_faults(testbed, fault_plan)
    dep = deploy_liteview(testbed, warm_up=15.0)
    target = int(nodes)
    proc = testbed.env.process(
        dep.ping_services[1].ping(target, rounds=rounds, length=length,
                                  routing_port=10)
    )
    ping_result = testbed.env.run(until=proc)
    proc = testbed.env.process(
        dep.traceroute_services[1].traceroute(target, rounds=1,
                                              length=length,
                                              routing_port=10)
    )
    tr_result = testbed.env.run(until=proc)
    return testbed, {
        "ping_received": int(ping_result.received),
        "ping_rounds": int(rounds),
        "reached_target": bool(tr_result.reached_target),
        "hops_reported": len(tr_result.hops),
        "activations": dict(injector.activations) if injector else {},
    }


@scenario("diagnosis_sweep")
def diagnosis_sweep(seed: int, *, nodes: int = 8, fault_plan: object = None,
                    rounds: int = 6, length: int = 16,
                    spacing: float = 60.0, settle: float = 5.0):
    """The closed loop PRs 1–4 built toward: inject a fault plan, run
    the diagnosis engine, score its findings against the ground truth.

    A chain deploys (15 s warm-up), the world advances until every
    fault has activated plus ``settle`` seconds, then the engine
    surveys every adjacent link and the scorer computes precision and
    recall of the findings against the plan's active specs.  Values are
    JSON-able, so campaigns can grid over plans, chain sizes and probe
    budgets and aggregate diagnosis quality.
    """
    from repro.core.deploy import deploy_liteview
    from repro.diag import DiagnosisEngine, ProbePlan, score_findings
    from repro.faults import FaultPlan, install_faults
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    testbed = build_chain(int(nodes), spacing=spacing, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    plan = FaultPlan.from_param(fault_plan)
    install_faults(testbed, plan)
    dep = deploy_liteview(testbed, warm_up=15.0)
    latest = max((s.at for s in plan.specs), default=0.0) if plan.is_active \
        else 0.0
    lead = latest + settle - testbed.env.now
    if lead > 0:
        testbed.warm_up(lead)
    diag_start = testbed.env.now
    pairs = tuple((i, i + 1) for i in range(1, int(nodes)))
    report = DiagnosisEngine(dep).run(
        ProbePlan(links=pairs, rounds=rounds, length=length))
    score = score_findings(report.findings, plan, at=diag_start)
    return testbed, {
        "precision": score["precision"],
        "recall": score["recall"],
        "tp": score["tp"], "fp": score["fp"], "fn": score["fn"],
        "n_faults": score["n_faults"],
        "n_findings": len(report.findings),
        "findings": [f.to_dict() for f in report.findings],
    }


def _detection_fault(kind: str, nodes: int, at: float):
    """The per-kind canonical fault the detection sweep injures with."""
    from repro.faults import FaultSpec
    mid = max(2, int(nodes) // 2)
    if kind == "node_crash":
        return FaultSpec(kind=kind, at=at, nodes=(mid,))
    if kind == "node_reboot":
        return FaultSpec(kind=kind, at=at, nodes=(mid,), duration=20.0)
    if kind == "link_degrade":
        return FaultSpec(kind=kind, at=at, link=(mid, mid + 1), loss_db=80.0)
    if kind == "interference_burst":
        return FaultSpec(kind=kind, at=at, channel=17, loss_db=40.0)
    if kind == "packet_corrupt":
        return FaultSpec(kind=kind, at=at, probability=0.9, nodes=(mid,))
    if kind == "queue_saturate":
        return FaultSpec(kind=kind, at=at, nodes=(mid,), capacity=1)
    if kind == "clock_drift":
        return FaultSpec(kind=kind, at=at, nodes=(mid,), drift=0.08)
    raise ValueError(f"unknown fault kind {kind!r}")




@scenario("detection_sweep")
def detection_sweep(seed: int, *, fault_kind: str = "link_degrade",
                    nodes: int = 8, modes: object = ("active", "passive",
                                                     "hybrid"),
                    at: float = 30.0, horizon: float = 90.0,
                    assess_every: float = 20.0, poll_every: float = 2.0,
                    rounds: int = 4, length: int = 16,
                    spacing: float = 60.0):
    """Active vs. passive vs. hybrid detection, head-to-head.

    For each mode, an identical chain (same seed) is injured with one
    canonical fault of ``fault_kind`` at ``at``; the world then advances
    to ``horizon`` in ``poll_every`` steps.  Passive/hybrid runs carry an
    attached :class:`~repro.diag.online.OnlineMonitor` (polled every
    step); active/hybrid runs additionally execute the watchlist probe
    plan every ``assess_every`` simulated seconds.  Each step's combined
    findings are scored against the ground truth, recording:

    * ``<mode>_precision`` / ``<mode>_recall`` — at the detection step
      (or the final step if the fault was never fully named);
    * ``<mode>_ttd`` — time-to-detect in simulated seconds from the
      fault's activation (-1.0 if never detected);
    * ``<mode>_probe_packets`` — probe transmissions the mode injected
      (:data:`~repro.diag.online.PROBE_PACKET_KINDS`); passive must
      report 0.

    The comparison the source paper could not produce: its active
    workflow graded against a listener that costs no airtime at all.
    """
    from repro.core.deploy import deploy_liteview
    from repro.diag import (
        DiagnosisEngine,
        OnlineMonitor,
        ProbePlan,
        merge_findings,
        score_findings,
    )
    from repro.diag.online import PROBE_PACKET_KINDS
    from repro.faults import FaultPlan, install_faults
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    if isinstance(modes, str):
        modes = tuple(m.strip() for m in modes.split(",") if m.strip())
    spec = _detection_fault(fault_kind, nodes, float(at))
    values: dict = {"fault_kind": fault_kind, "fault_at": float(at)}
    testbed = None
    for mode in modes:
        if mode not in ("active", "passive", "hybrid"):
            raise ValueError(f"unknown mode {mode!r}")
        testbed = build_chain(int(nodes), spacing=spacing, seed=seed,
                              propagation_kwargs=QUIET_PROPAGATION)
        plan = FaultPlan(name=f"sweep-{fault_kind}", specs=(spec,))
        install_faults(testbed, plan)
        online = None
        if mode != "active":
            online = OnlineMonitor(testbed).attach()
        dep = deploy_liteview(testbed, warm_up=15.0)
        engine = DiagnosisEngine(dep) if mode != "passive" else None
        pairs = tuple((i, i + 1) for i in range(1, int(nodes)))
        probe_plan = ProbePlan(links=pairs, rounds=int(rounds),
                               length=int(length), scans=(1,))
        monitor = testbed.monitor
        probes_before = sum(1 for r in monitor.packets
                            if r.kind in PROBE_PACKET_KINDS)
        next_assess = testbed.env.now + float(assess_every)
        active_findings: list = []
        detect_time, detect_score, last_score = None, None, None
        while testbed.env.now < float(horizon):
            testbed.run(until=min(float(horizon),
                                  testbed.env.now + float(poll_every)))
            if engine is not None and testbed.env.now >= next_assess:
                if online is not None:
                    online.pause()  # mask self-inflicted probe congestion
                active_findings = list(engine.run(probe_plan).findings)
                if online is not None:
                    online.resume()
                next_assess += float(assess_every)
            findings = list(active_findings)
            if online is not None:
                # Subject-level dedup: hybrid must not double-name a
                # pair both the probes and the listener flagged.
                findings = merge_findings(findings, online.poll())
            now = testbed.env.now
            score = score_findings(findings, plan, at=now)
            last_score = score
            if (detect_time is None and score["n_faults"]
                    and score["recall"] >= 1.0):
                detect_time, detect_score = now, score
        final = detect_score if detect_score is not None else last_score
        probes_sent = sum(1 for r in monitor.packets
                          if r.kind in PROBE_PACKET_KINDS) - probes_before
        values[f"{mode}_precision"] = final["precision"]
        values[f"{mode}_recall"] = final["recall"]
        values[f"{mode}_ttd"] = (round(detect_time - spec.at, 6)
                                 if detect_time is not None else -1.0)
        values[f"{mode}_probe_packets"] = probes_sent
        values[f"{mode}_findings"] = final["n_findings"]
    return testbed, values


@scenario("mobile_city_survey")
def mobile_city_survey(seed: int, *, districts_x: int = 4,
                       districts_y: int = 3, per_district: int = 9,
                       patrols: int = 2, speed_mps: float = 12.0,
                       seconds: float = 60.0, mobility_plan: object = None,
                       rounds: int = 6, length: int = 16,
                       pitch: float = 1500.0, partitioned: bool = False):
    """Patrol nodes traversing a city while diagnosis runs: the
    churn-vs-fault discrimination cell.

    ``patrols`` surveyor nodes walk the full width of a
    ``districts_x × districts_y`` city at ``speed_mps`` (or follow an
    explicit ``mobility_plan`` — canonical JSON, a first-class campaign
    parameter like fault plans).  Mid-patrol, the diagnosis engine
    probes static intra-district links the surveyors pass through.  No
    fault is injected, so *every* finding is a false positive; the
    recorded precision baseline asserts that mobility-induced link
    churn is not misreported as ``link_degrade``-style faults
    (``link_findings`` — broken/lossy/asymmetric — should be 0).

    Values also record how much geometry actually changed
    (``mobility_updates``, ``repositions``) and the spatial-pruning
    fraction, proving motion did not degrade candidate pruning back to
    the dense regime.
    """
    from repro.core.deploy import deploy_liteview
    from repro.diag import DiagnosisEngine, ProbePlan, score_findings
    from repro.faults import FaultPlan
    from repro.radio import MobilityPlan, MobilitySpec, install_mobility
    from repro.workloads import build_city
    from repro.workloads.scenarios import QUIET_PROPAGATION

    testbed = build_city(int(districts_x), int(districts_y),
                         int(per_district), pitch=pitch, seed=seed,
                         propagation_kwargs=QUIET_PROPAGATION,
                         partitioned=bool(partitioned))
    width = (int(districts_x) - 1) * pitch + 240.0
    patrol_ids = []
    for k in range(int(patrols)):
        row = k % int(districts_y)
        y = row * pitch + 40.0 + 12.0 * k
        patrol_ids.append(testbed.add_node(f"patrol-{k}", (-60.0, y)).id)
    if mobility_plan is None:
        travel = width / float(speed_mps)
        plan = MobilityPlan(name="city-patrol", specs=tuple(
            MobilitySpec(kind="waypoint", at=15.0, nodes=(nid,),
                         waypoints=((travel, width - 60.0,
                                     (k % int(districts_y)) * pitch
                                     + 40.0 + 12.0 * k),))
            for k, nid in enumerate(patrol_ids)))
    else:
        plan = MobilityPlan.from_param(mobility_plan)
    driver = install_mobility(testbed, plan)
    dep = deploy_liteview(testbed, warm_up=15.0)
    # Advance to mid-patrol, then probe while the churn is live.
    testbed.run(until=15.0 + float(seconds) / 2.0)
    diag_start = testbed.env.now
    # Probe static links with comfortable geometry (well inside the
    # quiet-propagation range): losses on these can only come from the
    # patrol churn, never from marginal static placement.
    pairs = tuple(
        (i, i + 1) for i in range(1, int(per_district))
        if testbed.medium.distance(i, i + 1) <= 70.0)
    report = DiagnosisEngine(dep).run(
        ProbePlan(links=pairs, rounds=int(rounds), length=int(length)))
    end = 15.0 + float(seconds)
    if testbed.env.now < end:
        testbed.run(until=end)
    # Ground truth is the empty plan: every finding is a false positive.
    score = score_findings(report.findings, FaultPlan(enabled=False),
                           at=diag_start)
    monitor = testbed.monitor
    medium = testbed.medium
    pruned = medium.candidates_pruned
    total = medium.candidates_considered + pruned
    link_kinds = ("broken_link", "lossy_link", "asymmetric_link")
    return testbed, {
        "patrol_ids": list(patrol_ids),
        "moved_nodes": len(driver.updates) if driver else 0,
        "mobility_updates": monitor.counter("mobility.updates"),
        "repositions": monitor.counter("medium.repositions"),
        "pruned_fraction": (pruned / total) if total else 0.0,
        "n_findings": len(report.findings),
        "link_findings": sum(1 for f in report.findings
                             if f.kind in link_kinds),
        "false_positives": score["fp"],
        "findings": [f.to_dict() for f in report.findings],
    }


@scenario("fig5_traceroute")
def fig5_traceroute(seed: int, *, attempts: int = 6, length: int = 32):
    """Figure 5 — one 'typical experiment': the first traceroute over the
    8-hop chain whose eight per-hop reports all arrive.

    Reports travel with no retransmission, so an invocation occasionally
    loses one; ``attempts`` bounds the retries within the one world.
    Values: the per-hop arrival series plus completeness flags.
    """
    from repro.core.deploy import deploy_liteview
    from repro.workloads import eight_hop_chain
    testbed = eight_hop_chain(seed=seed)
    dep = deploy_liteview(testbed, warm_up=15.0)
    service = dep.traceroute_services[1]
    result, used = None, 0
    for attempt in range(attempts):
        proc = testbed.env.process(
            service.traceroute(9, rounds=1, length=length, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        used = attempt + 1
        if result.reached_target and len(result.arrival_series_ms()) == 8:
            break
    series = result.arrival_series_ms()
    return testbed, {
        "series": [[h, d] for h, d in series],
        "complete": len(series) == 8,
        "reached_target": bool(result.reached_target),
        "attempts_used": used,
    }


@scenario("fig6_rssi_sweep")
def fig6_rssi_sweep(seed: int, *, power: int = 25, attempts: int = 8,
                    length: int = 32):
    """Figure 6 — per-hop forward/backward RSSI readings along the pinned
    corridor chain at one PA ``power`` level.

    Values: ``readings`` as ``[[hop, rssi_fwd, rssi_bwd], ...]`` from the
    first traceroute whose eight hop reports all arrive.
    """
    from repro.core.deploy import deploy_liteview
    from repro.workloads import corridor_chain
    testbed = corridor_chain(9, seed=seed)
    dep = deploy_liteview(testbed, warm_up=15.0)
    service = dep.traceroute_services[1]
    for node in testbed.nodes():
        node.radio.set_power_level(int(power))
    for _ in range(attempts):
        proc = testbed.env.process(
            service.traceroute(9, rounds=1, length=length, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        readings = sorted(
            (h.hop_index, h.link.rssi_forward, h.link.rssi_backward)
            for h in result.hops
        )
        if len(readings) == 8:
            return testbed, {
                "readings": [list(r) for r in readings], "complete": True,
            }
    return testbed, {"readings": [list(r) for r in readings],
                     "complete": False}


@scenario("fig7_overhead")
def fig7_overhead(seed: int, *, hops: int = 8, probes: int = 3,
                  length: int = 32):
    """Figure 7 — control-packet cost of a traceroute over ``hops`` hops.

    Runs complete (target-reaching) traceroutes until ``probes`` costs
    are collected and reports their median, the way the bench and the
    paper summarise one chain length.
    """
    from repro.analysis import packets_between
    from repro.core.deploy import deploy_liteview
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    testbed = build_chain(hops + 1, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=15.0)
    service = dep.traceroute_services[1]
    costs: list[int] = []
    guard = probes * 8
    while len(costs) < probes and guard:
        guard -= 1
        start = testbed.env.now
        proc = testbed.env.process(
            service.traceroute(hops + 1, rounds=1, length=length,
                               routing_port=10)
        )
        result = testbed.env.run(until=proc)
        if result.reached_target:
            costs.append(len(packets_between(
                testbed.monitor, start, testbed.env.now)))
    costs.sort()
    return testbed, {
        "costs": costs,
        "median_packets": costs[len(costs) // 2] if costs else None,
    }


@scenario("protocol_ping")
def protocol_ping(seed: int, *, protocol: str = "geographic",
                  rounds: int = 8, chain: int = 5, length: int = 16):
    """One protocol-comparison cell: the identical multi-hop ping command
    measured over one of the co-installed routing protocols.

    All four protocols are installed side by side (the paper's §IV-A.1
    setup); ``protocol`` picks which port the unmodified ping binary
    probes.  The collection tree has no reply path, so its cell measures
    one-way delivery instead.
    """
    from repro.analysis import packets_between
    from repro.core.deploy import deploy_liteview
    from repro.net import (
        TREE_PORT,
        DsdvRouting,
        FloodingProtocol,
        GeographicForwarding,
        TreeRouting,
        WellKnownPorts,
    )
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    ports = {
        "geographic": WellKnownPorts.GEOGRAPHIC,
        "dsdv": WellKnownPorts.DSDV,
        "tree": TREE_PORT,
        "flooding": WellKnownPorts.FLOODING,
    }
    if protocol not in ports:
        raise ValueError(f"unknown protocol {protocol!r} "
                         f"(one of {sorted(ports)})")
    testbed = build_chain(chain, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    target = chain
    for node in testbed.nodes():
        node.install_protocol(GeographicForwarding)
        node.install_protocol(DsdvRouting)
        node.install_protocol(TreeRouting, root=target)
        node.install_protocol(FloodingProtocol)
    dep = deploy_liteview(testbed, protocol=None, warm_up=40.0)
    port = ports[protocol]
    start = testbed.env.now
    if protocol == "tree":
        got: list[object] = []
        testbed.node(target).stack.ports.subscribe(
            66, lambda p, a: got.append(p), name="collect")
        proto = testbed.node(1).protocol_on(port)
        for _ in range(rounds):
            proto.send(target, 66, b"collected-data", kind="tree")
            testbed.warm_up(0.2)
        received, mean_rtt = len(got), None
    else:
        service = dep.ping_services[1]
        proc = testbed.env.process(
            service.ping(target, rounds=rounds, length=length,
                         routing_port=port)
        )
        result = testbed.env.run(until=proc)
        received, mean_rtt = result.received, result.mean_rtt_ms
    packets = packets_between(testbed.monitor, start, testbed.env.now)
    return testbed, {
        "received": received, "rounds": rounds,
        "mean_rtt_ms": mean_rtt, "packets": len(packets),
    }


@scenario("lqi_ablation")
def lqi_ablation(seed: int, *, min_lqi: float = 90.0, rounds: int = 20,
                 chain: int = 7, spacing: float = 46.0):
    """The routing layer's link-quality-filter ablation: multi-hop pings
    over a chain whose two-hop 'shortcuts' sit in the gray region.

    Values: delivered round count, mean RTT of delivered rounds, and the
    non-beacon radio-packet cost of the whole run.
    """
    from repro.analysis import packets_between
    from repro.core.commands.ping import install_ping
    from repro.net import GeographicForwarding
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION
    testbed = build_chain(chain, spacing=spacing, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    testbed.install_protocol_everywhere(
        GeographicForwarding, min_lqi=min_lqi
    )
    pings = {n.id: install_ping(n) for n in testbed.nodes()}
    testbed.warm_up(20.0)
    start = testbed.env.now
    delivered, rtts = 0, []
    for _ in range(rounds):
        proc = testbed.env.process(
            pings[1].ping(chain, rounds=1, length=16, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        if result.received:
            delivered += 1
            rtts.append(result.rounds[0].rtt_ms)
    packets = packets_between(testbed.monitor, start, testbed.env.now)
    return testbed, {
        "delivered": delivered, "rounds": rounds,
        "mean_rtt_ms": (sum(rtts) / len(rtts)) if rtts else None,
        "packets": len(packets),
    }
