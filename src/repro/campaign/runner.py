"""Execute a campaign: serially, or sharded across a worker pool.

The runner owns everything *around* a run — cache lookups, process
pools, per-run timeouts, bounded retries, progress reporting — while
the run itself is a pure function of its :class:`RunSpec`: the worker
re-imports the scenario by name, builds the world from the spec's
derived seed, and returns a picklable :class:`RunResult`.  Because no
run reads anything from another run (or from the parent process), the
sharded campaign is bit-for-bit identical to the serial one; worker
count only changes wall-clock.

Failure handling is per-run, never campaign-fatal: an exception or a
timeout becomes a ``RunResult`` with ``error`` set, the run is retried
up to ``retries`` extra times, and whatever still fails is reported in
``CampaignResult.failures`` alongside the successes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
import traceback
import typing as _t
from dataclasses import replace

from repro.campaign.cache import as_cache
from repro.campaign.results import CampaignResult, RunResult
from repro.campaign.scenarios import resolve_scenario
from repro.campaign.spec import Campaign, RunSpec

__all__ = ["run_campaign", "execute_spec", "default_workers"]

#: Type of the optional progress callback: (done, total, result).
ProgressFn = _t.Callable[[int, int, RunResult], None]


def default_workers() -> int:
    """A sensible pool size: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class _RunTimeout(Exception):
    """Raised inside a worker when the per-run SIGALRM deadline fires."""


def _call_with_timeout(fn: _t.Callable[[], object],
                       timeout_s: float | None) -> object:
    """Run ``fn`` under a SIGALRM deadline where the platform allows.

    Pool workers execute tasks on their main thread, so the alarm is
    available there; on platforms (or threads) without SIGALRM the run
    simply executes unbounded rather than failing.
    """
    if (not timeout_s or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return fn()

    def _alarm(signum, frame):
        raise _RunTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_spec(spec: RunSpec, timeout_s: float | None = None) -> RunResult:
    """Build, run and snapshot one cell — the unit of work a worker does.

    Never raises: scenario exceptions and timeouts come back as a
    ``RunResult`` with ``error`` set so a single bad cell cannot take
    down a whole shard.
    """
    start = time.perf_counter()
    try:
        fn = resolve_scenario(spec.scenario)
        outcome = _call_with_timeout(
            lambda: fn(spec.seed, **spec.params_dict), timeout_s)
    except _RunTimeout:
        return RunResult(spec=spec, wall_s=time.perf_counter() - start,
                         error=f"timeout after {timeout_s:g}s")
    except Exception:
        return RunResult(spec=spec, wall_s=time.perf_counter() - start,
                         error=traceback.format_exc(limit=8))

    testbed, values = None, {}
    if isinstance(outcome, tuple):
        testbed, values = outcome
    elif isinstance(outcome, dict):
        values = outcome
    else:
        testbed = outcome

    counters: dict[str, int] = {}
    metrics: dict = {}
    packet_sha256, n_packets, sim_time = "", 0, 0.0
    if testbed is not None:
        monitor = testbed.monitor
        counters = dict(monitor.counters)
        metrics = monitor.registry.snapshot()
        packet_sha256 = monitor.packet_digest()
        n_packets = len(monitor.packets)
        sim_time = float(testbed.env.now)
    return RunResult(
        spec=spec, counters=counters, metrics=metrics,
        values=dict(values or {}), packet_sha256=packet_sha256,
        n_packets=n_packets, sim_time=sim_time,
        wall_s=time.perf_counter() - start,
    )


def _pool_task(payload: tuple[int, dict, float | None],
               ) -> tuple[int, RunResult]:
    """Top-level pool target (spawn-safe: reachable by import)."""
    index, spec_dict, timeout_s = payload
    return index, execute_spec(RunSpec.from_dict(spec_dict), timeout_s)


def _resolve_context(name: str):
    """The start-method context to shard with, or None to run serially.

    ``spawn``/``forkserver`` children re-import the parent's
    ``__main__``; when that module has a recorded file that does not
    exist on disk (a stdin-fed script, a REPL), every child would die at
    startup and the pool would respawn them forever.  Detect that case
    and degrade to ``fork`` where available, else to serial execution —
    correctness never depends on the context, only wall-clock does.
    """
    methods = multiprocessing.get_all_start_methods()
    if name not in methods:
        return None
    if name in ("spawn", "forkserver"):
        main = sys.modules.get("__main__")
        spec_name = getattr(getattr(main, "__spec__", None), "name", None)
        main_file = getattr(main, "__file__", None)
        if (spec_name is None and main_file is not None
                and not os.path.exists(main_file)):
            name = "fork" if "fork" in methods else None
    return multiprocessing.get_context(name) if name else None


def _run_batch(indexed: list[tuple[int, RunSpec]], workers: int,
               timeout_s: float | None, mp_context: str,
               ) -> _t.Iterator[tuple[int, RunResult]]:
    """Yield (index, result) pairs as runs finish."""
    ctx = _resolve_context(mp_context) if (
        workers > 1 and len(indexed) > 1) else None
    if ctx is None:
        for index, spec in indexed:
            yield index, execute_spec(spec, timeout_s)
        return
    payloads = [(i, spec.to_dict(), timeout_s) for i, spec in indexed]
    with ctx.Pool(processes=min(workers, len(indexed))) as pool:
        yield from pool.imap_unordered(_pool_task, payloads, chunksize=1)


def run_campaign(campaign: Campaign, *, workers: int | None = 1,
                 cache: object = None, timeout_s: float | None = None,
                 retries: int = 1, progress: ProgressFn | None = None,
                 mp_context: str = "spawn") -> CampaignResult:
    """Execute every cell of ``campaign`` and return the ordered results.

    ``workers=None`` uses :func:`default_workers`; ``workers=1`` runs
    serially in-process (and is the reference the sharded paths are
    bit-for-bit compared against).  ``cache`` is a
    :class:`~repro.campaign.cache.ResultCache`, a directory path, or
    None; hits skip execution entirely and come back ``cached=True``.
    ``retries`` bounds *extra* attempts for a failed run.  ``progress``
    is called as ``progress(done, total, result)`` once per settled run,
    cached hits included.
    """
    if workers is None:
        workers = default_workers()
    specs = campaign.expand()
    store = as_cache(cache)
    started = time.perf_counter()

    results: dict[int, RunResult] = {}
    pending: list[tuple[int, RunSpec]] = []
    total = len(specs)

    def settle(index: int, result: RunResult) -> None:
        results[index] = result
        if progress is not None:
            progress(len(results), total, result)

    for index, spec in enumerate(specs):
        hit = store.get(spec) if store is not None else None
        if hit is not None:
            settle(index, hit)
        else:
            pending.append((index, spec))

    attempts_left = retries
    attempt_no = 1
    while pending:
        retry: list[tuple[int, RunSpec]] = []
        for index, result in _run_batch(pending, workers, timeout_s,
                                        mp_context):
            result = replace(result, attempts=attempt_no)
            if not result.ok and attempts_left > 0:
                retry.append((index, specs[index]))
                continue
            if result.ok and store is not None:
                store.put(result)
            settle(index, result)
        if not retry:
            break
        pending, attempts_left, attempt_no = retry, attempts_left - 1, \
            attempt_no + 1

    return CampaignResult(
        name=campaign.name,
        runs=[results[i] for i in range(total)],
        wall_s=time.perf_counter() - started,
        workers=workers,
    )
