"""Execute a campaign: serially, or over the persistent warm-worker pool.

The runner owns everything *around* a run — cache prefetch, the warm
pool, per-run timeouts, bounded retries, progress reporting — while the
run itself is a pure function of its :class:`RunSpec`: the worker
resolves the scenario by name, builds the world from the spec's derived
seed, and returns a picklable :class:`RunResult`.  Because no run reads
anything from another run (or from the parent process), the sharded
campaign is bit-for-bit identical to the serial one; worker count only
changes wall-clock.

Parallel execution goes through :mod:`repro.campaign.pool`: a
process-wide pool of **warm** workers that imported the simulator once
and then service every campaign of the process's lifetime, scheduling
cells by chunked dispatch with work stealing.  Where no multiprocessing
context is usable the runner silently degrades to in-process serial
execution — correctness never depends on the pool.

Failure handling is per-run, never campaign-fatal: an exception, a
timeout, or a worker process death becomes a ``RunResult`` with
``error`` set, the run is retried up to ``retries`` extra times, and
whatever still fails is reported in ``CampaignResult.failures``
alongside the successes.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
import typing as _t
from dataclasses import replace

from repro.campaign.cache import as_cache
from repro.campaign.results import CampaignResult, RunResult
from repro.campaign.scenarios import resolve_scenario
from repro.campaign.spec import Campaign, RunSpec

__all__ = ["run_campaign", "execute_spec", "default_workers"]

#: Type of the optional progress callback: (done, total, result).
ProgressFn = _t.Callable[[int, int, RunResult], None]


def default_workers() -> int:
    """A sensible pool size: the CPUs this process may actually use.

    A ``REPRO_WORKERS`` environment variable overrides the detection
    (clamped to >= 1) so CI runners and shared boxes can pin the pool
    without touching call sites; a non-numeric value is ignored.
    """
    override = os.environ.get("REPRO_WORKERS")
    if override is not None:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class _RunTimeout(Exception):
    """Raised inside a worker when the per-run SIGALRM deadline fires."""


def _call_with_timeout(fn: _t.Callable[[], object],
                       timeout_s: float | None) -> object:
    """Run ``fn`` under a SIGALRM deadline where the platform allows.

    Warm-pool workers execute tasks on their main thread, so the alarm
    is available there; on platforms (or threads) without SIGALRM the
    run simply executes unbounded rather than failing.
    """
    if (not timeout_s or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return fn()

    def _alarm(signum, frame):
        raise _RunTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_spec(spec: RunSpec, timeout_s: float | None = None) -> RunResult:
    """Build, run and snapshot one cell — the unit of work a worker does.

    Never raises: scenario exceptions and timeouts come back as a
    ``RunResult`` with ``error`` set so a single bad cell cannot take
    down a whole shard.
    """
    start = time.perf_counter()
    try:
        fn = resolve_scenario(spec.scenario)
        outcome = _call_with_timeout(
            lambda: fn(spec.seed, **spec.params_dict), timeout_s)
    except _RunTimeout:
        return RunResult(spec=spec, wall_s=time.perf_counter() - start,
                         error=f"timeout after {timeout_s:g}s")
    except Exception:
        return RunResult(spec=spec, wall_s=time.perf_counter() - start,
                         error=traceback.format_exc(limit=8))

    testbed, values = None, {}
    if isinstance(outcome, tuple):
        testbed, values = outcome
    elif isinstance(outcome, dict):
        values = outcome
    else:
        testbed = outcome

    counters: dict[str, int] = {}
    metrics: dict = {}
    packet_sha256, n_packets, sim_time = "", 0, 0.0
    if testbed is not None:
        monitor = testbed.monitor
        counters = dict(monitor.counters)
        metrics = monitor.registry.snapshot()
        packet_sha256 = monitor.packet_digest()
        n_packets = len(monitor.packets)
        sim_time = float(testbed.env.now)
    return RunResult(
        spec=spec, counters=counters, metrics=metrics,
        values=dict(values or {}), packet_sha256=packet_sha256,
        n_packets=n_packets, sim_time=sim_time,
        wall_s=time.perf_counter() - start,
    )


def run_campaign(campaign: "Campaign | object", *, workers: int | None = 1,
                 cache: object = None, timeout_s: float | None = None,
                 retries: int = 1, progress: ProgressFn | None = None,
                 mp_context: str = "auto",
                 pool: object = None) -> CampaignResult:
    """Execute every cell of ``campaign`` and return the ordered results.

    ``campaign`` is a :class:`Campaign` or one shard of it
    (:meth:`Campaign.shard`).  ``workers=None`` uses
    :func:`default_workers`; ``workers=1`` runs serially in-process (and
    is the reference the parallel and sharded paths are bit-for-bit
    compared against); ``workers>1`` dispatches to the process-wide warm
    pool (``mp_context``: ``"auto"`` picks forkserver where available,
    else pre-imported spawn), and ``pool`` substitutes an explicit
    :class:`~repro.campaign.pool.WarmPool`.  ``cache`` is a
    :class:`~repro.campaign.cache.ResultCache`, a directory path, or
    None; the parent batch-prefetches hits and the workers probe/fill
    the same cache themselves, so no worker recomputes a cell any
    process already produced.  ``retries`` bounds *extra* attempts for a
    failed run.  ``progress`` is called as ``progress(done, total,
    result)`` once per settled run, cached hits included.
    """
    if workers is None:
        workers = default_workers()
    specs = campaign.expand()
    store = as_cache(cache)
    started = time.perf_counter()

    results: dict[int, RunResult] = {}
    pending: list[tuple[int, RunSpec]] = []
    total = len(specs)

    def settle(index: int, result: RunResult) -> None:
        results[index] = result
        if progress is not None:
            progress(len(results), total, result)

    hits = store.get_many(specs) if store is not None else [None] * total
    for index, (spec, hit) in enumerate(zip(specs, hits)):
        if hit is not None:
            settle(index, hit)
        else:
            pending.append((index, spec))

    warm_pool = pool
    if warm_pool is None and workers > 1 and len(pending) > 1:
        from repro.campaign.pool import get_warm_pool
        warm_pool = get_warm_pool(workers, mp_context)

    attempts_left = retries
    attempt_no = 1
    while pending:
        retry: list[tuple[int, RunSpec]] = []
        for index, result in _run_batch(pending, warm_pool, timeout_s,
                                        attempt_no, store):
            if not result.ok and attempts_left > 0:
                retry.append((index, specs[index]))
                continue
            settle(index, result)
        if not retry:
            break
        pending, attempts_left, attempt_no = retry, attempts_left - 1, \
            attempt_no + 1

    return CampaignResult(
        name=getattr(campaign, "name", ""),
        runs=[results[i] for i in range(total)],
        wall_s=time.perf_counter() - started,
        workers=workers,
        shard=getattr(campaign, "shard_key", None),
    )


def _run_batch(pending: list[tuple[int, RunSpec]], warm_pool,
               timeout_s: float | None, attempt_no: int, store,
               ) -> _t.Iterator[tuple[int, RunResult]]:
    """One attempt over ``pending``: warm pool if available, else serial.

    Both paths thread the attempt number onto the result *before* any
    cache put, so a cached re-read always reports the true attempt
    count (the pool's workers do the same internally).
    """
    if warm_pool is not None and len(pending) > 1:
        yield from warm_pool.run_batch(pending, timeout_s=timeout_s,
                                       attempt=attempt_no, cache=store)
        return
    for index, spec in pending:
        hit = store.get(spec) if (store is not None
                                  and attempt_no > 1) else None
        if hit is not None:   # another process filled it meanwhile
            yield index, hit
            continue
        result = replace(execute_spec(spec, timeout_s), attempts=attempt_no)
        if result.ok and store is not None:
            store.put(result)
        yield index, result
