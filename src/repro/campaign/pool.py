"""Persistent warm-worker pool: chunked dispatch with work stealing.

The spawn-per-campaign pool of PR 3 lost to its own startup cost — four
fresh interpreters importing ``repro`` (and numpy/scipy underneath it)
cost more than the 16 runs they were meant to parallelise.  This module
replaces it with a pool whose workers are **warm**: each worker process
imports the simulator and the scenario registry *once* at startup, then
services any number of task batches over its lifetime.  Campaigns, the
benches and the serve layer all share the same pool through
:func:`get_warm_pool`, so the import bill is paid once per process
lifetime, not once per campaign.

Scheduling is *chunked dispatch plus work stealing* over a shared task
deque:

* every batch's claim state lives in shared memory — a ``head`` cursor
  over the task array plus one ``[lo, hi)`` reserved range per worker —
  guarded by a single cross-process lock (claims are a few integer ops,
  so one lock is cheaper than fine-grained CAS games in Python);
* a worker claims a **chunk** of guided size (``remaining / 4·workers``,
  clamped to ``[1, max_chunk]``) in one lock acquisition, executes it
  item by item, and leaves the unstarted tail of its range visible;
* a worker that runs out of fresh chunks **steals from the tail** of the
  most-loaded peer's reserved range, so one expensive chunk can never
  serialise the end of a campaign behind a single straggler.

Results are deterministic by construction: a task's outcome is a pure
function of its :class:`~repro.campaign.spec.RunSpec`, and the parent
reassembles results by expansion index, so scheduling order (and
stealing) changes wall-clock only — the property the sharded==serial
digest tests pin.

Failure containment: scenario exceptions and timeouts are already data
(:func:`~repro.campaign.runner.execute_spec` never raises); a worker
process that *dies* mid-task (OOM killer, ``os._exit`` in scenario
code) is detected by the parent, its in-flight task is settled as a
failed result (so the runner's retry ladder applies), its unstarted
reserved range is reclaimed, and the pool refills the slot before the
next batch.  If every worker dies the parent finishes the batch
in-process — a broken pool degrades to serial, never to a hang.

Results travel over one **single-producer pipe per worker**, never a
shared ``multiprocessing.Queue``: a shared queue serialises every
producer through one cross-process write lock, and a worker dying with
that lock held (its feeder thread is killed mid-flush) wedges every
surviving worker's ``put`` forever.  With per-worker pipes a death can
only ever break the dead worker's own channel — the parent closes its
copy of each write end, so reading a dead worker's pipe raises
``EOFError`` instead of blocking — and the parent multiplexes pipes
*and* process sentinels through ``multiprocessing.connection.wait``,
so a crash is observed immediately, not on the next poll timeout.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import sys
import threading
import time
import traceback
import typing as _t
from dataclasses import replace
from multiprocessing.connection import wait as _wait_connections

from repro.campaign.results import RunResult
from repro.campaign.spec import RunSpec

__all__ = [
    "WarmPool",
    "get_warm_pool",
    "shutdown_warm_pools",
    "resolve_start_method",
    "PRELOAD",
]

#: Modules every worker imports once at startup (the scenario registry
#: pulls the heavy simulator stack in behind it).  Paying this while the
#: pool is idle is the whole point of warm workers.
PRELOAD = (
    "repro.campaign.scenarios",
    "repro.workloads",
    "repro.core.deploy",
    "repro.faults",
    "repro.diag",
)

#: Sentinel in the per-worker ``current`` slot: nothing claimed.
_IDLE = -1

#: Upper bound on one claim, whatever the guided formula says — keeps
#: the tail of a campaign steal-able instead of locked into one range.
MAX_CHUNK = 32


def resolve_start_method(name: str) -> str | None:
    """The concrete start method for ``name``, or None for "run serially".

    ``"auto"`` prefers ``forkserver`` (cheap refills, no inherited
    threads) and falls back to ``spawn``.  ``spawn``/``forkserver``
    children re-import the parent's ``__main__``; when that module has a
    recorded file that does not exist on disk (a stdin-fed script, a
    REPL), every child would die at startup — degrade to ``fork`` where
    available, else to serial.  Correctness never depends on the
    context, only wall-clock does.
    """
    methods = multiprocessing.get_all_start_methods()
    if name == "auto":
        name = "forkserver" if "forkserver" in methods else "spawn"
    if name not in methods:
        return None
    if name in ("spawn", "forkserver"):
        main = sys.modules.get("__main__")
        spec_name = getattr(getattr(main, "__spec__", None), "name", None)
        main_file = getattr(main, "__file__", None)
        if (spec_name is None and main_file is not None
                and not os.path.exists(main_file)):
            name = "fork" if "fork" in methods else None
    return name


def _chunk_size(remaining: int, n_workers: int,
                max_chunk: int = MAX_CHUNK) -> int:
    """Guided self-scheduling: big chunks early (low lock traffic),
    shrinking toward the end (nothing left to straggle behind)."""
    return max(1, min(max_chunk, remaining // (4 * n_workers)))


def _claim(worker_id: int, n_workers: int, lock, head, batch_n,
           reserved, current, batch_id: int, shared_batch_id) -> int | None:
    """Claim the next task position for ``worker_id``, or None when the
    batch holds no more claimable work.

    Priority under the one lock: own reserved range head, then a fresh
    guided chunk off the shared cursor, then a steal from the *tail* of
    the most-loaded peer's range.  ``current[worker_id]`` is set inside
    the lock so the parent can always tell what a dead worker held.
    """
    with lock:
        if batch_id != shared_batch_id.value:
            return None  # stale batch (a refilled worker's old queue item)
        base = 2 * worker_id
        lo, hi = reserved[base], reserved[base + 1]
        if lo < hi:
            reserved[base] = lo + 1
            current[worker_id] = lo
            return lo
        h, n = head.value, batch_n.value
        if h < n:
            size = _chunk_size(n - h, n_workers)
            head.value = h + size
            reserved[base] = h + 1
            reserved[base + 1] = h + size
            current[worker_id] = h
            return h
        victim, most = -1, 0
        for j in range(n_workers):
            if j == worker_id:
                continue
            rem = reserved[2 * j + 1] - reserved[2 * j]
            if rem > most:
                victim, most = j, rem
        if victim >= 0:
            tail = reserved[2 * victim + 1] - 1
            reserved[2 * victim + 1] = tail
            current[worker_id] = tail
            return tail
        return None


def _execute_task(spec_dict: dict, timeout_s: float | None,
                  attempt: int, cache) -> RunResult:
    """One warm worker's unit of work: cache probe, execute, cache fill.

    The worker threads ``attempt`` onto the result *before* the cache
    put, so a cached re-read reports the true attempt count (a run that
    failed once and succeeded on retry caches ``attempts=2``).
    """
    from repro.campaign.runner import execute_spec

    spec = RunSpec.from_dict(spec_dict)
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit
    result = replace(execute_spec(spec, timeout_s), attempts=attempt)
    if cache is not None:
        cache.put(result)
    return result


def _worker_main(worker_id: int, n_workers: int, batch_queue, result_conn,
                 lock, head, batch_n, reserved, current, shared_batch_id,
                 preload: tuple) -> None:
    """A warm worker: import once, then serve batches until shut down.

    ``result_conn`` is this worker's private pipe to the parent —
    single producer, no shared locks, so this worker dying can never
    block a peer's result delivery.
    """
    for module in preload:
        try:
            importlib.import_module(module)
        except Exception:  # pragma: no cover - a missing optional module
            pass            # must not kill the worker; runs import lazily
    try:
        result_conn.send(("ready", worker_id, None, None))
        while True:
            try:
                batch = batch_queue.get()
            except (EOFError, OSError):  # parent went away
                return
            if batch is None:
                return
            batch_id, tasks, timeout_s, attempt, cache = batch
            while True:
                pos = _claim(worker_id, n_workers, lock, head, batch_n,
                             reserved, current, batch_id, shared_batch_id)
                if pos is None:
                    break
                index, spec_dict = tasks[pos]
                try:
                    result = _execute_task(spec_dict, timeout_s, attempt,
                                           cache)
                except Exception:  # pragma: no cover - belt and braces
                    result = RunResult(
                        spec=RunSpec.from_dict(spec_dict), attempts=attempt,
                        error=traceback.format_exc(limit=8))
                result_conn.send(("result", worker_id, batch_id,
                                  (pos, index, result)))
                with lock:
                    current[worker_id] = _IDLE
            result_conn.send(("done", worker_id, batch_id, None))
    except (BrokenPipeError, OSError):  # parent went away
        return


class WarmPool:
    """A long-lived pool of pre-imported worker processes.

    Create one (or share the registry's via :func:`get_warm_pool`), then
    call :meth:`run_batch` any number of times; workers persist across
    batches and campaigns.  ``close()`` (also registered ``atexit``)
    shuts the workers down.
    """

    def __init__(self, workers: int, mp_context: str = "auto", *,
                 preload: _t.Sequence[str] = PRELOAD):
        method = resolve_start_method(mp_context)
        if method is None:
            raise RuntimeError(
                f"no usable multiprocessing start method for "
                f"{mp_context!r} on this platform")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.method = method
        self.preload = tuple(preload)
        ctx = multiprocessing.get_context(method)
        if method == "forkserver":
            # The forkserver imports the simulator once; every worker
            # (and every refill after a crash) forks from that warm
            # image instead of re-importing.
            ctx.set_forkserver_preload(list(self.preload))
        self._ctx = ctx
        self._lock = ctx.Lock()
        self._head = ctx.Value("l", 0, lock=False)
        self._batch_n = ctx.Value("l", 0, lock=False)
        self._shared_batch_id = ctx.Value("l", 0, lock=False)
        self._reserved = ctx.Array("l", [0] * (2 * workers), lock=False)
        self._current = ctx.Array("l", [_IDLE] * workers, lock=False)
        self._batch_queues = [ctx.SimpleQueue() for _ in range(workers)]
        self._readers: list = [None] * workers
        self._procs: list = [None] * workers
        self._ready: set[int] = set()
        self._batch_id = 0
        # One batch at a time: the claim arrays, batch epoch and result
        # pipes are shared pool-wide state, so concurrent run_batch
        # callers (the serve layer runs campaigns on separate threads)
        # must serialize or they corrupt each other's batches.
        self._batch_lock = threading.Lock()
        self._closed = False
        for worker_id in range(workers):
            self._spawn(worker_id)
        atexit.register(self.close)

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        old = self._readers[worker_id]
        if old is not None:  # a refill: drop the dead worker's channel
            old.close()
        reader, writer = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.workers, self._batch_queues[worker_id],
                  writer, self._lock, self._head, self._batch_n,
                  self._reserved, self._current, self._shared_batch_id,
                  self.preload),
            daemon=True, name=f"repro-warm-worker-{worker_id}",
        )
        proc.start()
        # Close the parent's copy of the write end: once the worker dies
        # its reader hits EOF (EOFError) instead of blocking forever.
        writer.close()
        self._readers[worker_id] = reader
        self._procs[worker_id] = proc

    @property
    def alive(self) -> int:
        """Live worker processes right now."""
        return sum(1 for p in self._procs if p is not None and p.is_alive())

    def pids(self) -> list[int]:
        """PIDs of live workers (stable across batches — the warmth)."""
        return [p.pid for p in self._procs if p is not None and p.is_alive()]

    def warm(self, timeout_s: float = 120.0) -> int:
        """Block until workers report their imports done; returns how
        many are warm.  Purely an optimisation hook (benches, serve) —
        ``run_batch`` works regardless."""
        deadline = time.monotonic() + timeout_s
        while len(self._ready) < self.workers:
            remaining = deadline - time.monotonic()
            pending = {self._readers[w]: w for w, p in enumerate(self._procs)
                       if w not in self._ready
                       and p is not None and p.is_alive()}
            if remaining <= 0 or not pending:
                break
            for reader in _wait_connections(list(pending),
                                            timeout=min(remaining, 0.5)):
                try:
                    kind, worker_id, _, _ = reader.recv()
                except (EOFError, OSError):
                    continue  # died before warming; _refill handles it
                if kind == "ready":
                    self._ready.add(worker_id)
        return len(self._ready)

    def close(self) -> None:
        """Shut every worker down (idempotent; registered atexit)."""
        if self._closed:
            return
        self._closed = True
        for q in self._batch_queues:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- batch execution -----------------------------------------------------

    def run_batch(self, indexed: _t.Sequence[tuple[int, RunSpec]], *,
                  timeout_s: float | None = None, attempt: int = 1,
                  cache=None) -> _t.Iterator[tuple[int, RunResult]]:
        """Yield ``(index, result)`` for every task, in completion order.

        ``indexed`` pairs an opaque caller index with a spec; workers
        probe/fill ``cache`` themselves (it must be picklable — a
        :class:`~repro.campaign.cache.ResultCache` is).  Every task
        yields exactly once, whatever workers live or die.

        Thread-safe by serialization: the batch epoch, claim arrays and
        result pipes are pool-wide shared state, so a cross-thread lock
        is held from the generator's first step until it is exhausted
        (or closed) — a second concurrent caller simply blocks until the
        first batch drains, it never sees the first batch's results or
        strands it mid-run.
        """
        with self._batch_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            tasks = [(index, spec.to_dict()) for index, spec in indexed]
            n = len(tasks)
            if n == 0:
                return
            self._batch_id += 1
            with self._lock:
                self._head.value = 0
                self._batch_n.value = n
                self._shared_batch_id.value = self._batch_id
                for j in range(self.workers):
                    self._reserved[2 * j] = self._reserved[2 * j + 1] = 0
                    self._current[j] = _IDLE
            live = {w for w, p in enumerate(self._procs)
                    if p is not None and p.is_alive()}
            batch = (self._batch_id, tasks, timeout_s, attempt, cache)
            for w in live:
                self._batch_queues[w].put(batch)
            produced: set[int] = set()
            waiting_on = set(live)
            try:
                while len(produced) < n or waiting_on:
                    if not live:
                        yield from self._finish_inline(
                            tasks, timeout_s, attempt, cache, produced)
                        return
                    readers = {self._readers[w]: w for w in live}
                    sentinels = {self._procs[w].sentinel: w for w in live}
                    for obj in _wait_connections(
                            list(readers) + list(sentinels), timeout=0.5):
                        w = readers.get(obj, sentinels.get(obj))
                        if w not in live:
                            continue  # already handled this pass
                        if obj in sentinels:  # the worker process died
                            live.discard(w)
                            waiting_on.discard(w)
                            yield from self._drain_reader(w, produced)
                            yield from self._reap(
                                w, tasks, attempt, produced,
                                thieves_remain=bool(live))
                            continue
                        try:
                            kind, _, b_id, payload = obj.recv()
                        except (EOFError, OSError):  # EOF beat the sentinel
                            live.discard(w)
                            waiting_on.discard(w)
                            yield from self._reap(
                                w, tasks, attempt, produced,
                                thieves_remain=bool(live))
                            continue
                        if kind == "ready":
                            self._ready.add(w)
                            continue
                        if b_id != self._batch_id:
                            continue  # stale message, pre-refill worker
                        if kind == "done":
                            waiting_on.discard(w)
                            continue
                        pos, index, result = payload
                        if pos in produced:
                            continue  # already settled by crash recovery
                        produced.add(pos)
                        yield index, result
            finally:
                self._refill()

    # -- failure handling ----------------------------------------------------

    def _drain_reader(self, worker_id: int, produced: set[int],
                      ) -> _t.Iterator[tuple[int, RunResult]]:
        """Yield the results a dead worker flushed before dying.

        Its write end is closed (the worker is gone and the parent
        closed its own copy at spawn), so ``recv`` returns buffered
        messages and then raises ``EOFError`` — it can never block.
        """
        reader = self._readers[worker_id]
        while True:
            try:
                kind, _, b_id, payload = reader.recv()
            except (EOFError, OSError):
                return
            if kind != "result" or b_id != self._batch_id:
                continue
            pos, index, result = payload
            if pos not in produced:
                produced.add(pos)
                yield index, result

    def _reap(self, worker_id: int, tasks, attempt: int, produced: set[int],
              *, thieves_remain: bool) -> _t.Iterator[tuple[int, RunResult]]:
        """Settle a dead worker's in-flight task.

        The task it was executing becomes a failed result (the runner's
        retry ladder takes it from there).  Its claimed-but-unstarted
        ``[lo, hi)`` range needs no special handling while peers remain
        — it is ordinary steal-able work they will drain; only when the
        pool is empty does the parent sweep it up (``_finish_inline``).
        """
        with self._lock:
            pos = self._current[worker_id]
            self._current[worker_id] = _IDLE
            if not thieves_remain:
                base = 2 * worker_id
                self._reserved[base] = self._reserved[base + 1] = 0
        self._ready.discard(worker_id)
        if 0 <= pos < len(tasks) and pos not in produced:
            index, spec_dict = tasks[pos]
            produced.add(pos)
            yield index, RunResult(
                spec=RunSpec.from_dict(spec_dict), attempts=attempt,
                error=f"worker process {worker_id} died mid-run "
                      "(killed or crashed hard)")

    def _finish_inline(self, tasks, timeout_s, attempt, cache,
                       produced: set[int]
                       ) -> _t.Iterator[tuple[int, RunResult]]:
        """Every worker is gone: finish the batch in the parent.

        Results the dead workers managed to flush before dying still sit
        in their pipes — drain them first so only truly-unsettled tasks
        re-execute here.
        """
        for worker_id in range(self.workers):
            yield from self._drain_reader(worker_id, produced)
        with self._lock:
            self._head.value = self._batch_n.value
            for j in range(self.workers):
                self._reserved[2 * j] = self._reserved[2 * j + 1] = 0
            remaining = [p for p in range(len(tasks)) if p not in produced]
            produced.update(remaining)
        for pos in remaining:
            index, spec_dict = tasks[pos]
            yield index, _execute_task(spec_dict, timeout_s, attempt, cache)

    def _refill(self) -> None:
        """Respawn dead worker slots so the next batch is full strength."""
        if self._closed:
            return
        for worker_id, proc in enumerate(self._procs):
            if proc is None or not proc.is_alive():
                self._spawn(worker_id)


# -- shared pool registry ----------------------------------------------------

_POOLS: dict[str, WarmPool] = {}
_POOLS_LOCK = threading.Lock()


def get_warm_pool(workers: int, mp_context: str = "auto",
                  ) -> WarmPool | None:
    """The process-wide shared pool for ``context``, created on first
    use and reused (warm) by every later campaign.

    One pool per start method: a request needing more workers than the
    current pool holds retires it (after any in-flight batch drains)
    and builds a bigger one; smaller requests share the existing pool —
    extra idle workers cost almost nothing, while a registry keyed by
    size would let a server fielding client-chosen worker counts
    accumulate one persistent worker set per distinct count.  Returns
    None when no multiprocessing context is usable — callers fall back
    to serial execution.
    """
    method = resolve_start_method(mp_context)
    if method is None or workers < 1:
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(method)
        if pool is not None and not pool.closed:
            if pool.workers >= workers:
                return pool
            workers = max(workers, pool.workers)
            # Let the batch in flight (if any) finish on the old pool
            # before retiring it — its campaign completes untouched.
            with pool._batch_lock:
                pool.close()
        pool = WarmPool(workers, method)
        _POOLS[method] = pool
        return pool


def shutdown_warm_pools() -> None:
    """Close every registry pool (tests; long-lived hosts on reload)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()
