"""Picklable per-run and per-campaign results.

Workers run in separate processes, so everything they return must cross
a pickle boundary: a :class:`RunResult` carries only plain data — the
monitor's counter map, the metrics-registry snapshot, the order-
sensitive packet-log digest, and whatever scalar observables the
scenario computed — never live simulation objects.
"""

from __future__ import annotations

import hashlib
import json
import typing as _t
from dataclasses import dataclass, field, replace

from repro.campaign.spec import RunSpec

__all__ = ["RunResult", "CampaignResult", "merge_shards"]


def _spec_key(spec: RunSpec) -> str:
    """A hashable canonical identity for a spec.

    ``RunSpec.params`` may carry list values (``canonical_params``
    allows JSON scalars *and lists*), which makes the frozen dataclass
    itself unhashable — so identity comparisons that need a dict go
    through this canonical-JSON key instead of the spec object.
    """
    return json.dumps(spec.to_dict(), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class RunResult:
    """The outcome of one campaign cell, safe to pickle and cache."""

    spec: RunSpec
    counters: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)   # MetricsRegistry.snapshot()
    values: dict = field(default_factory=dict)    # scenario observables
    packet_sha256: str = ""
    n_packets: int = 0
    sim_time: float = 0.0
    wall_s: float = 0.0
    attempts: int = 1
    error: str | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def value(self, name: str, default: object = None) -> object:
        """An observable by name: scenario values first, then counters."""
        if name in self.values:
            return self.values[name]
        return self.counters.get(name, default)

    def digest_line(self) -> str:
        """The run's contribution to the campaign digest."""
        return repr((self.spec.scenario, self.spec.params,
                     self.spec.replicate, self.spec.seed,
                     self.packet_sha256, sorted(self.counters.items()),
                     self.sim_time))

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "counters": dict(self.counters), "metrics": dict(self.metrics),
            "values": dict(self.values), "packet_sha256": self.packet_sha256,
            "n_packets": self.n_packets, "sim_time": self.sim_time,
            "wall_s": self.wall_s, "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: _t.Mapping, *, cached: bool = False) -> "RunResult":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            counters=dict(data.get("counters", {})),
            metrics=dict(data.get("metrics", {})),
            values=dict(data.get("values", {})),
            packet_sha256=data.get("packet_sha256", ""),
            n_packets=int(data.get("n_packets", 0)),
            sim_time=float(data.get("sim_time", 0.0)),
            wall_s=float(data.get("wall_s", 0.0)),
            attempts=int(data.get("attempts", 1)),
            error=data.get("error"), cached=cached,
        )

    def as_cached(self) -> "RunResult":
        return replace(self, cached=True)


@dataclass
class CampaignResult:
    """All runs of one campaign (or one shard of it), in expansion order.

    ``shard`` is ``(index, of)`` when this result covers one
    :meth:`~repro.campaign.spec.Campaign.shard` slice, None for a whole
    campaign; :func:`merge_shards` reassembles slices into the whole.
    """

    name: str
    runs: list[RunResult]
    wall_s: float = 0.0
    workers: int = 1
    shard: tuple[int, int] | None = None

    @property
    def ok(self) -> list[RunResult]:
        return [r for r in self.runs if r.ok]

    @property
    def failures(self) -> list[RunResult]:
        return [r for r in self.runs if not r.ok]

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.runs if r.cached)

    def digest(self) -> str:
        """Order-sensitive digest over every run's seed, counters and
        packet log — two campaigns agree iff every run agreed."""
        h = hashlib.sha256()
        for run in self.runs:
            h.update(run.digest_line().encode())
        return h.hexdigest()

    def by_cell(self) -> dict[str, list[RunResult]]:
        """Successful runs grouped by parameter cell, replicate-ordered."""
        cells: dict[str, list[RunResult]] = {}
        for run in self.ok:
            cells.setdefault(run.spec.cell_key(), []).append(run)
        for runs in cells.values():
            runs.sort(key=lambda r: r.spec.replicate)
        return cells

    def aggregate(self, metrics: _t.Sequence[str] | None = None,
                  confidence: float = 0.95):
        """Per-cell mean/CI of named observables (see
        :func:`repro.analysis.aggregate.aggregate_cells`)."""
        from repro.analysis.aggregate import aggregate_cells
        rows = [(run.spec.params_dict, {**run.counters, **run.values})
                for run in self.ok]
        return aggregate_cells(rows, metrics=metrics, confidence=confidence)

    def __len__(self) -> int:
        return len(self.runs)


def merge_shards(campaign, shard_results: _t.Iterable[CampaignResult],
                 ) -> CampaignResult:
    """Reassemble shard results into the whole campaign's result.

    ``campaign`` is the *unsharded* :class:`~repro.campaign.spec.
    Campaign` the shards were cut from; its expansion order defines
    where every run belongs, so shards may arrive in any order (and
    from any machine — results are plain data).  The merge is strict:
    a run none of the campaign's cells claims, a cell covered twice,
    or a cell covered by no shard is a ``ValueError``, never a silent
    best-effort.  The merged ``digest()`` is byte-identical to the
    serial single-machine run — per-cell seeds and results are content-
    addressed, so the partition cannot change them.
    """
    specs = campaign.expand()
    position = {_spec_key(spec): i for i, spec in enumerate(specs)}
    runs: list[RunResult | None] = [None] * len(specs)
    wall_s, workers = 0.0, 1
    for result in shard_results:
        wall_s += result.wall_s
        workers = max(workers, result.workers)
        for run in result.runs:
            i = position.get(_spec_key(run.spec))
            if i is None:
                raise ValueError(
                    f"run {run.spec.label()} belongs to no cell of "
                    f"campaign {campaign.name!r}")
            if runs[i] is not None:
                raise ValueError(
                    f"cell {run.spec.label()} covered by more than one "
                    "shard")
            runs[i] = run
    missing = [specs[i].label() for i, run in enumerate(runs)
               if run is None]
    if missing:
        raise ValueError(
            f"{len(missing)} cell(s) covered by no shard, first: "
            f"{missing[0]}")
    return CampaignResult(
        name=campaign.name,
        runs=_t.cast("list[RunResult]", runs),
        wall_s=wall_s, workers=workers,
    )
