"""On-disk result cache: re-running a campaign only executes changed cells.

A cell's cache key is a SHA-256 over four components:

* the **code fingerprint** — a hash of every ``repro`` source file, so
  any change to the simulator invalidates every cached result (results
  are only reusable if the code that produced them is byte-identical);
* the scenario reference;
* the canonical parameter tuple;
* the derived per-run seed.

Entries are one JSON file each under ``<root>/<key[:2]>/<key>.json``;
writes go through a same-directory temp file + ``os.replace`` so a
killed worker never leaves a half-written entry behind.

The store is **concurrent-safe by construction**, which is what lets
every warm-pool worker share it directly: reads are lock-free (a read
sees either no entry or a complete one, never a torn write, because
``os.replace`` is atomic), and puts are atomic single-writer renames
with a per-process/per-thread temp name, so any number of workers —
or whole concurrent campaigns — may hit the same root.  Two writers
racing on one key write byte-identical content (results are pure
functions of the key), so last-rename-wins is harmless.  The cache
object itself is picklable (root path + materialised code hash), so
workers never re-fingerprint the source tree.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import threading
import typing as _t

from repro.campaign.results import RunResult
from repro.campaign.spec import RunSpec, _canonical_json

__all__ = ["ResultCache", "code_fingerprint"]


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the sources of the installed ``repro`` package."""
    import repro
    root = pathlib.Path(repro.__file__).parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(path.read_bytes())
    return h.hexdigest()


class ResultCache:
    """Content-addressed store of :class:`RunResult` JSON blobs."""

    def __init__(self, root: "str | os.PathLike", *,
                 code_hash: str | None = None):
        self.root = pathlib.Path(root)
        self.code_hash = code_hash if code_hash is not None else code_fingerprint()

    def key(self, spec: RunSpec) -> str:
        payload = _canonical_json([
            self.code_hash, spec.scenario,
            sorted((str(k), v) for k, v in spec.params), spec.seed,
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result for ``spec``, marked ``cached=True``; None on
        miss or an unreadable/corrupt entry (treated as a miss)."""
        path = self._path(self.key(spec))
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            return RunResult.from_dict(data, cached=True)
        except (KeyError, TypeError, ValueError):
            return None

    def get_many(self, specs: _t.Sequence[RunSpec]
                 ) -> list[RunResult | None]:
        """Batch prefetch: one result-or-None per spec, in order.

        The parent calls this once before dispatching a campaign so the
        pool only ever sees genuinely-missing cells; misses cost one
        ``stat`` each and hits one read — no locks anywhere.
        """
        return [self.get(spec) for spec in specs]

    def put(self, result: RunResult) -> None:
        """Store one successful run (failures are never cached).

        Atomic single-writer: the entry appears in one ``os.replace``,
        and the temp name is unique per process *and* thread so
        concurrent campaigns in one process never collide.
        """
        if not result.ok:
            return
        path = self._path(self.key(result.spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(
            f".tmp{os.getpid()}-{threading.get_ident()}")
        tmp.write_text(json.dumps(result.to_dict(), sort_keys=True))
        os.replace(tmp, path)

    def __contains__(self, spec: RunSpec) -> bool:
        return self._path(self.key(spec)).exists()


def as_cache(cache: "_t.Union[ResultCache, str, os.PathLike, None]",
             ) -> ResultCache | None:
    """Accept a ResultCache, a directory path, or None."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
