"""LiteView reproduction: end-user diagnosis of communication paths in
sensor network systems (Cao, Wang, Abdelzaher — ICPP 2009).

The package reproduces the LiteView toolkit in simulation:

* :mod:`repro.obs` — observability: packet-lifecycle tracing, metrics
  registry, sim profiler, trace export
* :mod:`repro.sim` — discrete-event engine, seeded RNG streams, monitor
* :mod:`repro.radio` — CC2420 PHY model and shared radio medium
* :mod:`repro.mac` — 802.15.4-style CSMA/CA MAC
* :mod:`repro.net` — port-based stack, link-quality padding, routing
* :mod:`repro.kernel` — LiteOS model: nodes, testbeds, kernel services
* :mod:`repro.core` — LiteView itself: ping, traceroute, neighborhood
  management, radio configuration, reliable control channel, shell
* :mod:`repro.diag` — first-class diagnosis: the pluggable probe
  pipeline, the unified ``Finding`` schema, the ``DiagnosisEngine``
  and precision/recall scoring against injected faults
* :mod:`repro.workloads` — topologies and canned scenarios
* :mod:`repro.faults` — deterministic fault injection: declarative
  plans of crashes, degraded links, interference, corruption
* :mod:`repro.analysis` — metrics aggregation and table rendering

Quickstart::

    from repro import Testbed, deploy_liteview

    tb = Testbed(seed=1)
    for i in range(4):
        tb.add_node(f"192.168.0.{i + 1}", (i * 60.0, 0.0))
    dep = deploy_liteview(tb, warm_up=15.0)
    dep.login("192.168.0.1")
    print(dep.run("ping 192.168.0.2 round=1 length=32"))
"""

from repro.core import (
    CommandInterpreter,
    LiteViewDeployment,
    PingResult,
    TracerouteResult,
    Workstation,
    deploy_liteview,
    install_ping,
    install_traceroute,
)
from repro.diag import (
    DiagnosisEngine,
    DiagnosisReport,
    Finding,
    ProbePlan,
    score_findings,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec, install_faults
from repro.kernel import SensorNode, Testbed
from repro.net import WellKnownPorts
from repro.obs import MetricsRegistry, SimProfiler, Tracer
from repro.sim import Environment, Monitor, RngRegistry

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "SensorNode",
    "deploy_liteview",
    "LiteViewDeployment",
    "CommandInterpreter",
    "Workstation",
    "PingResult",
    "TracerouteResult",
    "install_ping",
    "install_traceroute",
    "DiagnosisEngine",
    "DiagnosisReport",
    "Finding",
    "ProbePlan",
    "score_findings",
    "WellKnownPorts",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "install_faults",
    "Environment",
    "Monitor",
    "RngRegistry",
    "Tracer",
    "MetricsRegistry",
    "SimProfiler",
    "__version__",
]
