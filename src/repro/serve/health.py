"""Continuous health assessment: the DiagnosisEngine on a schedule.

Batch diagnosis (``repro.diag``) answers one question once; a live
fleet wants the question re-asked forever.  :class:`HealthAssessor`
owns a fixed :class:`~repro.diag.engine.ProbePlan` — the *watchlist* —
and re-runs it through a :class:`~repro.diag.engine.DiagnosisEngine`
each time the fleet supervisor reaches an assessment boundary, then
renders the latest report as the traffic-light
:func:`~repro.diag.render.health_view` payload ``/health`` serves.

The watchlist defaults to the fleet's nearest-neighbor link graph
(:func:`nearest_neighbor_links`): every node appears in at least one
probed link, the link count stays O(N), and an injected fault on any
such link turns its light within one assessment period.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.diag.engine import DiagnosisEngine, ProbePlan, Thresholds
from repro.diag.findings import DiagnosisReport
from repro.diag.online import OnlineMonitor, OnlineThresholds, merge_findings
from repro.diag.render import health_view

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = ["HealthAssessor", "nearest_neighbor_links", "MAX_WATCHLIST",
           "ASSESSMENT_MODES"]

#: How an assessment gathers its evidence: ``active`` probes the
#: watchlist (the paper's workflow), ``passive`` only reads the online
#: beacon detectors (zero probe packets), ``hybrid`` does both and
#: merges, deduplicating by subject.
ASSESSMENT_MODES = ("active", "passive", "hybrid")

#: Default cap on the auto-generated watchlist (``build_fleet`` passes it
#: as ``max_links``).  Nearest-neighbor watchlists grow O(N) with fleet
#: size, and every watched link is probed ``rounds`` times per
#: assessment — on the 1k-node city tier an unclamped list would spend
#: minutes of simulated airtime per assessment.  128 keeps the paper-
#: scale fleets (≤ 100 nodes) unclamped, so their served runs are
#: unchanged.
MAX_WATCHLIST = 128


def nearest_neighbor_links(testbed: "Testbed", *,
                           exclude: _t.Collection[int] = (),
                           ) -> tuple[tuple[int, int], ...]:
    """Each node's link to its nearest other node, deduplicated.

    The cheapest watchlist that still covers the whole fleet: O(N)
    directed pairs (lower id first), deterministic for a fixed
    topology, and every node is an endpoint of at least one probed
    link — so a dead node or a broken adjacent link is always visible
    to the assessor.  ``exclude`` drops management devices (the
    workstation) that sit in the testbed but are not fleet members.

    Vectorized: one pairwise distance matrix and an ``argmin`` per row,
    so the 1k-node city watchlist builds in milliseconds.  Ties go to
    the lowest node id (``argmin`` returns the first minimum and rows
    are id-sorted), matching the scalar loop this replaced.
    """
    excluded = set(exclude)
    nodes = sorted((n for n in testbed.nodes() if n.id not in excluded),
                   key=lambda n: n.id)
    if len(nodes) < 2:
        return ()
    ids = [n.id for n in nodes]
    pos = np.array([n.position for n in nodes], dtype=float)
    deltas = pos[:, None, :] - pos[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", deltas, deltas)
    np.fill_diagonal(d2, np.inf)
    nearest = np.argmin(d2, axis=1)
    links = {
        (min(a, ids[j]), max(a, ids[j]))
        for a, j in zip(ids, nearest)
    }
    return tuple(sorted(links))


class HealthAssessor:
    """Runs one probe plan repeatedly and keeps the latest verdict.

    ``links``/``scans``/``rounds`` define the recurring plan;
    :meth:`assess` executes it (advancing the simulation by the probe
    traffic's own duration — assessment is *part of* the simulated
    world, which is what keeps served runs reproducible), and
    :meth:`health` renders the most recent report without touching the
    sim at all.

    ``mode`` selects the evidence source (:data:`ASSESSMENT_MODES`):
    ``passive`` assessments read the :class:`~repro.diag.online.
    OnlineMonitor`'s beacon detectors instead of probing — they send
    zero packets, consume zero simulated time, and leave the packet
    digest byte-identical to an unserved run; ``hybrid`` runs the probe
    plan *and* merges in passive findings about subjects the probes did
    not already name.
    """

    def __init__(self, deployment, *,
                 links: _t.Iterable[tuple[int, int]] | None = None,
                 scans: _t.Iterable[int] = (),
                 rounds: int = 3,
                 max_links: int | None = None,
                 thresholds: Thresholds | None = None,
                 mode: str = "active",
                 online_thresholds: OnlineThresholds | None = None):
        if mode not in ASSESSMENT_MODES:
            raise ValueError(f"unknown assessment mode {mode!r} "
                             f"(one of {ASSESSMENT_MODES})")
        self.mode = mode
        self.deployment = deployment
        self.testbed = deployment.testbed
        # The workstation is a management device riding in the testbed,
        # not a fleet member: it never routes or answers probes, so it
        # must stay off the watchlist.
        workstation = getattr(deployment, "workstation", None)
        self._excluded = (
            {workstation.node.id} if workstation is not None else set())
        if links is None:
            links = nearest_neighbor_links(self.testbed,
                                           exclude=self._excluded)
        links = tuple(links)
        if max_links is not None and 0 < max_links < len(links):
            # Deterministic even-stride subsample of the sorted list:
            # the clamped watchlist stays geographically spread instead
            # of collapsing onto the lowest-id corner of the fleet.
            step = len(links) / max_links
            links = tuple(links[int(i * step)] for i in range(max_links))
        self.plan = ProbePlan(links=links, scans=tuple(scans),
                              rounds=rounds)
        self.engine = DiagnosisEngine(deployment, thresholds=thresholds)
        self.online: OnlineMonitor | None = None
        if mode != "active":
            self.online = OnlineMonitor(
                self.testbed, thresholds=online_thresholds,
                exclude=self._excluded).attach()
        self.last_report: "DiagnosisReport | None" = None
        self.last_assessed_at: float | None = None
        self.assessments = 0

    @property
    def watched_links(self) -> tuple[tuple[int, int], ...]:
        return self.plan.links

    @property
    def watched_nodes(self) -> tuple[int, ...]:
        return tuple(node.id for node in self.testbed.nodes()
                     if node.id not in self._excluded)

    def assess(self) -> "DiagnosisReport":
        """Run one assessment now; returns (and stores) the report.

        ``active`` runs the watchlist probe plan (advancing the sim by
        the probe traffic's duration); ``passive`` polls the online
        detectors (no sim advance, no packets); ``hybrid`` does both
        and merges passive findings whose subject the probes missed.
        """
        if self.mode == "passive":
            report = self.online.report()
        else:
            if self.online is not None:
                # Mask the listener while our own probes congest the
                # channel — self-inflicted beacon delays must not read
                # as loss or interference (see OnlineMonitor.pause).
                self.online.pause()
            report = self.engine.run(self.plan)
            if self.online is not None:
                self.online.resume()
                self._merge_passive(report)
        self.last_report = report
        self.last_assessed_at = self.testbed.env.now
        self.assessments += 1
        return report

    def _merge_passive(self, report: "DiagnosisReport") -> None:
        """Fold passive findings into an active report, subject-deduped
        (a passive ``broken_link`` must not double-name a pair the
        probes already called ``lossy_link``)."""
        report.findings[:] = merge_findings(report.findings,
                                            self.online.poll())

    def health(self, **extra: object) -> dict:
        """The traffic-light payload for the *latest* report.

        Before the first assessment this is an explicit ``pending``
        status (all subjects unknown), never a fabricated green.
        """
        if self.last_report is None:
            return {
                "status": "pending",
                "mode": self.mode,
                "assessments": 0,
                "sim_time": round(self.testbed.env.now, 6),
                **extra,
            }
        view = health_view(
            self.last_report,
            nodes=self.watched_nodes,
            links=self.watched_links,
            sim_time=self.testbed.env.now,
            assessed_at=self.last_assessed_at,
        )
        view["mode"] = self.mode
        view["assessments"] = self.assessments
        view.update(extra)
        return view
