"""The fleet supervisor: one persistent simulated testbed, served live.

A :class:`FleetSupervisor` owns a deployed testbed and advances it on
its own cadence — :meth:`advance` is the **only** mutation path, and it
is a plain synchronous call the server invokes between request handlers
on the asyncio loop.  Everything a client can read (``/metrics``,
``/health``, SSE events) is produced *at the end of an advance*, at an
event-loop-safe point, from snapshot data: the rendered health JSON is
cached as a string, trace events are batched out through the
:class:`~repro.serve.hub.EventHub` and then cleared, and the metrics
registry is only ever read between advances.

Determinism contract (asserted by ``tests/serve``): the injured or
healthy world a supervisor produces depends **only** on the scenario,
seed, and the total simulated time advanced — never on how many clients
were being served, how the advance was sliced into ticks, or wall-clock
anything.  Assessments fire at fixed *simulated* times
(``assess_every``), so a served run and an unserved run of the same
config produce byte-identical packet digests.
"""

from __future__ import annotations

import typing as _t

from repro.core.deploy import deploy_liteview
from repro.diag.render import recommendation, traffic_light
from repro.faults import FaultPlan, install_faults
from repro.serve.health import MAX_WATCHLIST, HealthAssessor
from repro.serve.hub import EventHub

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = ["FleetSupervisor", "build_fleet"]

#: Trace events are published in batches of at most this many per SSE
#: event, so one busy tick cannot blow a subscriber's queue bound with
#: a thousand tiny events (nor one giant megabyte payload).
TRACE_BATCH = 200


class FleetSupervisor:
    """One live fleet: deployment + cadence + health + event publishing."""

    def __init__(self, name: str, deployment, *,
                 assess_every: float = 30.0,
                 assessor: HealthAssessor | None = None,
                 hub: EventHub | None = None,
                 publish_trace: bool = True):
        self.name = name
        self.deployment = deployment
        self.testbed: "Testbed" = deployment.testbed
        self.env = self.testbed.env
        self.monitor = self.testbed.monitor
        self.hub = hub if hub is not None else EventHub()
        self.assessor = assessor or HealthAssessor(deployment)
        self.assess_every = float(assess_every)
        self._next_assess = self.env.now + self.assess_every
        #: The cumulative advance horizon.  Assessments overshoot sim
        #: time (probe traffic runs to completion), so targets must be
        #: computed against this virtual clock, not ``env.now`` —
        #: otherwise slicing one advance into many would change the
        #: world (see :meth:`advance`).
        self._horizon = self.env.now
        self._pending_plans: list[FaultPlan] = []
        self._seen_findings: set[str] = set()
        self.injected_plans: list[FaultPlan] = []
        self.ticks = 0
        #: Rendered at assessment time; ``/health`` serves this string
        #: without touching the sim.
        self.health_payload: dict = self.assessor.health(fleet=self.name)
        if publish_trace:
            self.testbed.tracer.enable()

    # -- client-facing snapshots --------------------------------------------

    @property
    def sim_time(self) -> float:
        return self.env.now

    def describe(self) -> dict:
        """The fleet card for the index endpoint."""
        return {
            "name": self.name,
            "nodes": len(self.testbed),
            "sim_time": round(self.env.now, 6),
            "ticks": self.ticks,
            "assess_every": self.assess_every,
            "assessments": self.assessor.assessments,
            "mode": getattr(self.assessor, "mode", "active"),
            "status": str(self.health_payload.get("status", "pending")),
            "injected_plans": len(self.injected_plans),
        }

    # -- external inputs -----------------------------------------------------

    def queue_fault_plan(self, plan: "FaultPlan | str | _t.Mapping",
                         ) -> FaultPlan:
        """Accept a fault plan for installation at the next safe point.

        Plans are *queued*, not installed inline: installation compiles
        simulator events, which must happen between advances, never
        while a request handler is running mid-heap.  Returns the
        decoded plan (raising on malformed input so the HTTP layer can
        reply 400 before anything is queued).
        """
        decoded = FaultPlan.from_param(plan)
        self._pending_plans.append(decoded)
        return decoded

    # -- the cadence ---------------------------------------------------------

    def advance(self, sim_seconds: float) -> None:
        """Advance the fleet ``sim_seconds`` of simulated time.

        Installs queued fault plans first (the safe point), runs the
        sim, fires any due health assessments at their fixed simulated
        times, then publishes the tick's events.  Slicing a total of T
        seconds into any number of ``advance`` calls yields the same
        world as one call — partitioning is not an input to the sim.

        That invariant is why the target is ``_horizon + sim_seconds``
        rather than ``env.now + sim_seconds``: an assessment's probe
        traffic runs to completion and may leave ``env.now`` past the
        tick's target, and anchoring the next target to the overshot
        clock would make the world depend on where the tick boundaries
        fell.
        """
        self._install_pending()
        self._horizon += float(sim_seconds)
        target = self._horizon
        while self._next_assess <= target:
            if self.env.now < self._next_assess:
                self.testbed.run(until=self._next_assess)
            self._assess()
            self._next_assess += self.assess_every
        if self.env.now < target:
            self.testbed.run(until=target)
        self.ticks += 1
        self._publish_trace()

    def _install_pending(self) -> None:
        plans, self._pending_plans = self._pending_plans, []
        for plan in plans:
            injector = install_faults(self.testbed, plan)
            self.injected_plans.append(plan)
            self.hub.publish({
                "type": "fault",
                "fleet": self.name,
                "sim_time": round(self.env.now, 6),
                "plan": plan.to_dict(),
                "active": injector is not None,
            })

    def _assess(self) -> None:
        report = self.assessor.assess()
        self.health_payload = self.assessor.health(fleet=self.name)
        for finding in report.findings:
            key = finding.to_json()
            if key in self._seen_findings:
                continue
            self._seen_findings.add(key)
            self.hub.publish({
                "type": "finding",
                "fleet": self.name,
                "sim_time": round(self.env.now, 6),
                "finding": finding.to_dict(),
                "status": traffic_light(finding),
                "recommendation": recommendation(finding),
            })
        self.hub.publish({
            "type": "health",
            "fleet": self.name,
            "sim_time": round(self.env.now, 6),
            "status": self.health_payload["status"],
            "findings": len(report.findings),
            "assessments": self.assessor.assessments,
        })

    def _publish_trace(self) -> None:
        """Batch out and clear the tick's trace events.

        Publishing reads (then clears) the tracer — it never touches
        the event heap or any RNG stream, so enabling/serving the
        stream cannot perturb the sim.  Clearing keeps a long-lived
        fleet's memory bounded by one tick's traffic.
        """
        tracer = self.testbed.tracer
        if not tracer.enabled or not tracer.events:
            return
        events = tracer.events
        for start in range(0, len(events), TRACE_BATCH):
            batch = events[start:start + TRACE_BATCH]
            self.hub.publish({
                "type": "trace",
                "fleet": self.name,
                "sim_time": round(self.env.now, 6),
                "events": [
                    {
                        "time": round(event.time, 6),
                        "kind": event.kind,
                        "node": event.node,
                        "packet": event.packet,
                        "detail": dict(event.detail),
                    }
                    for event in batch
                ],
            })
        tracer.clear()


def build_fleet(spec: str = "field", *, seed: int = 3,
                name: str | None = None,
                assess_every: float = 30.0,
                warm_up: float = 15.0,
                rounds: int = 3,
                links: _t.Iterable[tuple[int, int]] | None = None,
                max_links: int | None = MAX_WATCHLIST,
                hub: EventHub | None = None,
                publish_trace: bool = True,
                fault_plan: "FaultPlan | str | None" = None,
                mode: str = "active",
                ) -> FleetSupervisor:
    """One-call fleet construction from a topology spec.

    ``spec`` is the shell's vocabulary plus the large scenarios:
    ``field`` (the paper's 30-node testbed), ``hundred`` (the 10x10
    grid), ``city`` (the ~1040-node clustered-district scenario, alias
    ``thousand_node_city``), ``city:K`` (a city sized to roughly ``K``
    nodes), or ``chain:K``.  The testbed is deployed with LiteView
    everywhere and warmed up so neighbor/routing state has settled
    before the first client ever polls.  ``fault_plan`` pre-injures the
    world at construction (the chaos-demo path); live injuries arrive
    later via ``POST /fleets/<name>/faults``.

    ``max_links`` clamps the auto-generated ``/health`` watchlist (an
    even-stride subsample; default :data:`~repro.serve.health.MAX_WATCHLIST`,
    which leaves the paper-scale fleets unclamped) — pass ``None`` to
    probe every nearest-neighbor link even on a city-scale fleet.

    ``mode`` selects how assessments gather evidence
    (:data:`~repro.serve.health.ASSESSMENT_MODES`): ``passive``
    assessments read the beacon-stream detectors and inject zero probe
    packets, so a passive fleet's packet digest is byte-identical to an
    unserved run of the same spec/seed/horizon.
    """
    import math

    from repro.workloads import build_chain
    from repro.workloads.scenarios import (
        QUIET_PROPAGATION,
        hundred_node_field,
        thirty_node_field,
        thousand_node_city,
    )

    if spec == "field":
        testbed = thirty_node_field(seed=seed)
    elif spec == "hundred":
        testbed = hundred_node_field(seed=seed)
    elif spec in ("city", "thousand_node_city"):
        testbed = thousand_node_city(seed=seed)
    elif spec.startswith("city:"):
        # Size the district lattice so districts² × 40 ≈ K nodes.
        target = int(spec.split(":", 1)[1])
        if target < 1:
            raise ValueError(f"city size must be positive, got {target}")
        side = max(1, round(math.sqrt(target / 40)))
        testbed = thousand_node_city(seed=seed, districts=side)
    elif spec.startswith("chain:"):
        testbed = build_chain(int(spec.split(":", 1)[1]), seed=seed,
                              propagation_kwargs=QUIET_PROPAGATION)
    else:
        raise ValueError(f"unknown fleet spec {spec!r} "
                         "(use 'field', 'hundred', 'city', 'city:K' "
                         "or 'chain:K')")
    deployment = deploy_liteview(testbed, warm_up=warm_up)
    assessor = HealthAssessor(deployment, links=links, rounds=rounds,
                              max_links=max_links, mode=mode)
    supervisor = FleetSupervisor(
        name=name or spec.replace(":", ""), deployment=deployment,
        assess_every=assess_every, assessor=assessor, hub=hub,
        publish_trace=publish_trace,
    )
    if fault_plan is not None:
        supervisor.queue_fault_plan(fault_plan)
    return supervisor
