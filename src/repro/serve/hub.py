"""The event hub: fan-out of fleet events to SSE subscribers.

One :class:`EventHub` per server.  Fleet supervisors ``publish`` plain
JSON-ready dicts; each connected ``/events`` client holds a
:class:`Subscription` — a **bounded** queue its pump task drains into
the socket.

The bound is the whole point.  The simulator must never wait for a
network peer: ``publish`` is synchronous and non-blocking, and when a
subscriber's queue is full (a stalled or slow client) the event is
**dropped and counted** on that subscription instead of applying
backpressure to the sim.  Slow consumers lose events; the sim loses
nothing — the invariant the snapshot-isolation tests assert.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t
from itertools import count

__all__ = ["Subscription", "EventHub", "format_sse"]

#: Default per-subscriber queue bound.  Sized to absorb one tick's burst
#: of batched events with headroom; a client that falls further behind
#: than this is dropping, not buffering.
DEFAULT_QUEUE_LIMIT = 256


class Subscription:
    """One subscriber's bounded event queue plus its drop accounting."""

    __slots__ = ("id", "queue", "dropped", "delivered")

    def __init__(self, sub_id: int, limit: int):
        self.id = sub_id
        self.queue: asyncio.Queue[dict] = asyncio.Queue(maxsize=limit)
        #: Events discarded because this queue was full.
        self.dropped = 0
        #: Events successfully enqueued for this subscriber.
        self.delivered = 0

    async def get(self) -> dict:
        """Next event for this subscriber (awaits until one arrives)."""
        return await self.queue.get()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Subscription {self.id} queued={self.queue.qsize()} "
                f"dropped={self.dropped}>")


class EventHub:
    """Synchronous publish, per-subscriber bounded delivery."""

    def __init__(self, *, queue_limit: int = DEFAULT_QUEUE_LIMIT):
        self.queue_limit = queue_limit
        self._subs: dict[int, Subscription] = {}
        self._ids = count(1)
        #: Running totals across all past and present subscribers.
        self.total_published = 0
        self.total_dropped = 0

    # -- subscriber lifecycle ------------------------------------------------

    def subscribe(self) -> Subscription:
        sub = Subscription(next(self._ids), self.queue_limit)
        self._subs[sub.id] = sub
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subs.pop(sub.id, None)

    @property
    def subscribers(self) -> list[Subscription]:
        return list(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)

    # -- publishing ----------------------------------------------------------

    def publish(self, event: dict) -> None:
        """Offer ``event`` to every subscriber; never blocks.

        A full queue drops the event *for that subscriber only* and
        increments its ``dropped`` counter — the producing sim thread
        is isolated from every consumer's pace.
        """
        self.total_published += 1
        for sub in self._subs.values():
            try:
                sub.queue.put_nowait(event)
                sub.delivered += 1
            except asyncio.QueueFull:
                sub.dropped += 1
                self.total_dropped += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventHub subs={len(self._subs)} "
                f"published={self.total_published} "
                f"dropped={self.total_dropped}>")


def format_sse(event: _t.Mapping, event_id: int | None = None) -> bytes:
    """Render one event in Server-Sent Events wire format.

    ``event:`` carries the payload's ``type`` field (default
    ``message``); ``data:`` is the compact JSON body; an optional
    ``id:`` lets reconnecting clients resume.
    """
    name = str(event.get("type", "message"))
    data = json.dumps(event, sort_keys=True, separators=(",", ":"))
    lines = [f"event: {name}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")
