"""A minimal, dependency-free HTTP/1.1 server core over asyncio streams.

Exactly the subset the fleet server needs, hand-rolled on stdlib
``asyncio`` so ``repro.serve`` adds no dependencies: request-line +
header parsing, ``Content-Length`` bodies, one-shot responses with
``Connection: close``, and long-lived Server-Sent Events responses.
No chunked encoding, no keep-alive, no TLS — pollers open a fresh
connection per scrape, exactly like a Prometheus scraper does.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["Request", "HttpError", "read_request", "response",
           "json_response", "text_response", "sse_headers"]

#: Reasonable ceilings so one hostile client cannot balloon memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024
REQUEST_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
}


class HttpError(Exception):
    """A client-visible failure; the handler turns it into a response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def param(self, name: str, default: str | None = None) -> str | None:
        """First value of query parameter ``name``."""
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> object:
        """The body decoded as JSON (400 on malformed input)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``.

    Returns ``None`` on a cleanly closed idle connection (client went
    away before sending anything); raises :class:`HttpError` on
    malformed or oversized input.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=REQUEST_TIMEOUT_S)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    except asyncio.TimeoutError as exc:
        raise HttpError(408, "timed out reading request") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, "body too large")
        try:
            body = await asyncio.wait_for(
                reader.readexactly(n), timeout=REQUEST_TIMEOUT_S)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc
        except asyncio.TimeoutError as exc:
            raise HttpError(408, "timed out reading body") from exc

    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response(status: int, body: bytes, content_type: str,
             extra_headers: _t.Mapping[str, str] | None = None) -> bytes:
    """A complete one-shot HTTP/1.1 response (``Connection: close``)."""
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body


def text_response(status: int, text: str,
                  content_type: str = "text/plain; charset=utf-8") -> bytes:
    return response(status, text.encode("utf-8"), content_type)


def json_response(status: int, payload: object) -> bytes:
    body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
    return response(status, body + b"\n",
                    "application/json; charset=utf-8")


def sse_headers() -> bytes:
    """The header block that opens a Server-Sent Events stream.

    No ``Content-Length`` — the stream stays open until either side
    closes; the body is ``format_sse`` frames.
    """
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Connection: close\r\n"
        "X-Accel-Buffering: no\r\n"
        "\r\n"
    ).encode("latin-1")
