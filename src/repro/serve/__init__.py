"""repro.serve — live fleet serving over stdlib asyncio.

Hosts persistent simulated testbeds behind a small hand-rolled
HTTP/1.1 server: Prometheus metrics (``/metrics``), traffic-light
health (``/health``), a Server-Sent Events telemetry stream
(``/events``), and live fault injection
(``POST /fleets/<name>/faults``) — with a hard determinism guarantee:
serving any number of clients leaves the simulation byte-identical to
an unserved run of the same configuration.

See ``docs/SERVING.md`` for endpoint and event schemas.
"""

from repro.serve.app import ServeApp
from repro.serve.fleet import FleetSupervisor, build_fleet
from repro.serve.health import (
    ASSESSMENT_MODES,
    MAX_WATCHLIST,
    HealthAssessor,
    nearest_neighbor_links,
)
from repro.serve.http import HttpError, Request
from repro.serve.hub import EventHub, Subscription, format_sse

__all__ = [
    "ServeApp",
    "FleetSupervisor",
    "build_fleet",
    "HealthAssessor",
    "ASSESSMENT_MODES",
    "MAX_WATCHLIST",
    "nearest_neighbor_links",
    "EventHub",
    "Subscription",
    "format_sse",
    "HttpError",
    "Request",
]
