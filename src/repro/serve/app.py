"""The fleet server: routes, tickers, and the serving loop.

:class:`ServeApp` hosts one or more :class:`~repro.serve.fleet.
FleetSupervisor` instances behind the hand-rolled HTTP core:

====================================  =======================================
``GET /``                             index: fleets + endpoints
``GET /metrics``                      Prometheus text format, all fleets
                                      (``?fleet=NAME`` filters), plus
                                      serve-layer gauges (clients, drops,
                                      per-subject traffic lights)
``GET /health``                       traffic-light JSON for every fleet
``GET /fleets/<name>/health``         one fleet's health payload
``GET /events``                       SSE stream of trace batches, new
                                      findings, health transitions and
                                      fault installations
``POST /fleets/<name>/faults``        inject a canonical-JSON FaultPlan
``POST /campaigns``                   launch a campaign on the server's
                                      warm worker pool (202 + status URL)
``GET /campaigns``                    all submitted campaigns' status
``GET /campaigns/<name>``             one campaign: digest, counts, wall
====================================  =======================================

Concurrency model — the whole point of the design: everything runs on
one asyncio loop.  ``advance`` (the only sim mutation) is a synchronous
call made by the ticker task, so request handlers *by construction* run
only between advances, at event-loop-safe points; reads see either the
world before a tick or after it, never mid-heap.  Slow SSE consumers
are isolated by the hub's bounded queues (drop-counted, never
blocking), so no client — polling or streaming, fast or stalled — can
perturb the simulation.  ``tests/serve`` proves the digest identity.

Campaigns are the one deliberately off-loop workload: ``POST
/campaigns`` coordinates :func:`~repro.campaign.runner.run_campaign`
from a worker thread while the actual cells execute in the process-wide
**warm pool**'s worker processes — separate interpreters with their own
RNG state, so a campaign can saturate every core without touching the
served fleets' determinism.
"""

from __future__ import annotations

import asyncio
import typing as _t

from repro.obs.export import metrics_to_prometheus, prometheus_line
from repro.serve.fleet import FleetSupervisor
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    response,
    sse_headers,
    text_response,
)
from repro.serve.hub import EventHub, format_sse

__all__ = ["ServeApp"]


class ServeApp:
    """One server process: fleets + hub + HTTP front end."""

    def __init__(self, fleets: _t.Iterable[FleetSupervisor], *,
                 tick_s: float = 0.25, step_s: float = 1.0,
                 hub: EventHub | None = None):
        self.fleets: dict[str, FleetSupervisor] = {}
        self.hub = hub if hub is not None else EventHub()
        for fleet in fleets:
            if fleet.name in self.fleets:
                raise ValueError(f"duplicate fleet name {fleet.name!r}")
            fleet.hub = self.hub
            self.fleets[fleet.name] = fleet
        #: Wall-clock pause between ticks and simulated seconds per tick.
        self.tick_s = tick_s
        self.step_s = step_s
        #: Per-SSE-client cap on transport write buffering.  Together
        #: with the hub's bounded queue this bounds the total memory a
        #: stalled client can pin: beyond kernel socket buffers plus
        #: this, its pump parks and the hub sheds events for it.
        self.sse_write_high = 16 * 1024
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._running = False
        self.host: str | None = None
        self.port: int | None = None
        #: Campaign submissions by name: status records served by
        #: ``GET /campaigns[/name]`` and mutated only on this loop.
        self.campaigns: dict[str, dict] = {}
        #: Worker processes a ``POST /campaigns`` may ask for (clamped).
        self.max_campaign_workers = 64

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0, *,
                    auto_tick: bool = True) -> None:
        """Bind and start serving (and, by default, ticking).

        ``port=0`` binds an ephemeral port; the chosen one lands in
        :attr:`port`.  ``auto_tick=False`` leaves advancing to the
        caller — the deterministic-test mode.
        """
        self._running = True
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        if auto_tick:
            for fleet in self.fleets.values():
                self._spawn(self._ticker(fleet))

    async def stop(self) -> None:
        """Stop ticking, close the listener and every live connection."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = 8700) -> None:
        """CLI entry: start and run until cancelled."""
        await self.start(host=host, port=port)
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def _spawn(self, coro: _t.Coroutine) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _ticker(self, fleet: FleetSupervisor) -> None:
        """Advance one fleet forever: sim cadence, then yield to I/O."""
        while self._running:
            fleet.advance(self.step_s)
            await asyncio.sleep(self.tick_s)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._tasks.add(asyncio.current_task())  # type: ignore[arg-type]
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(json_response(exc.status,
                                           {"error": exc.message}))
                await writer.drain()
                return
            if request is None:
                return
            if request.method == "GET" and request.path == "/events":
                await self._serve_events(request, writer)
                return
            writer.write(self._dispatch(request))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._tasks.discard(asyncio.current_task())  # type: ignore[arg-type]
            writer.close()
            # Bounded graceful close: a stalled peer may never ack the
            # flush, and this runs after a swallowed cancellation, so an
            # unbounded wait_closed() would wedge stop() forever.
            try:
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.TimeoutError):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    def _dispatch(self, request: Request) -> bytes:
        try:
            return self._route(request)
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.message})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return json_response(500, {"error": f"{type(exc).__name__}: "
                                                f"{exc}"})

    def _route(self, request: Request) -> bytes:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/" and method == "GET":
            return json_response(200, self._index())
        if path == "/metrics" and method == "GET":
            return text_response(
                200, self._metrics_text(request.param("fleet")),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        if path == "/health" and method == "GET":
            return json_response(200, {
                "fleets": {name: fleet.health_payload
                           for name, fleet in sorted(self.fleets.items())},
            })
        if path == "/campaigns" and method == "POST":
            return self._launch_campaign(request)
        if path == "/campaigns" and method == "GET":
            return json_response(200, {
                "campaigns": [self.campaigns[name]
                              for name in sorted(self.campaigns)],
            })
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "campaigns" and method == "GET":
            record = self.campaigns.get(parts[1])
            if record is None:
                raise HttpError(404, f"unknown campaign {parts[1]!r} "
                                     f"(have: {sorted(self.campaigns)})")
            return json_response(200, record)
        if len(parts) == 3 and parts[0] == "fleets":
            fleet = self._fleet(parts[1])
            if parts[2] == "health" and method == "GET":
                return json_response(200, fleet.health_payload)
            if parts[2] == "faults" and method == "POST":
                return self._inject(fleet, request)
            if parts[2] == "faults" and method == "GET":
                return json_response(200, {
                    "fleet": fleet.name,
                    "plans": [plan.to_dict()
                              for plan in fleet.injected_plans],
                })
            if parts[2] == "stats" and method == "GET":
                # Registry-only snapshot: no series copies, no packet
                # digest — cheap enough to poll every second.
                snap = fleet.monitor.snapshot(
                    include_series=False, include_packets=False)
                snap["fleet"] = fleet.name
                snap["sim_time"] = round(fleet.sim_time, 6)
                return json_response(200, snap)
        raise HttpError(404, f"no route for {method} {request.path}")

    def _fleet(self, name: str) -> FleetSupervisor:
        fleet = self.fleets.get(name)
        if fleet is None:
            raise HttpError(404, f"unknown fleet {name!r} "
                                 f"(have: {sorted(self.fleets)})")
        return fleet

    # -- endpoint bodies -----------------------------------------------------

    def _index(self) -> dict:
        return {
            "service": "repro.serve",
            "fleets": [fleet.describe()
                       for _, fleet in sorted(self.fleets.items())],
            "endpoints": [
                "GET /metrics", "GET /health", "GET /events",
                "GET /fleets/<name>/health",
                "GET /fleets/<name>/stats",
                "POST /fleets/<name>/faults",
                "POST /campaigns", "GET /campaigns",
                "GET /campaigns/<name>",
            ],
            "sse_clients": len(self.hub),
            "sse_dropped_total": self.hub.total_dropped,
        }

    def _metrics_text(self, only_fleet: str | None) -> str:
        """All fleets' registries plus serve-layer samples.

        Reads happen here, in the handler, which the single-threaded
        design guarantees is between advances — a consistent snapshot
        without copying the registry.
        """
        from repro.diag.render import LIGHT_ORDER

        chunks: list[str] = []
        names = ([only_fleet] if only_fleet else sorted(self.fleets))
        for name in names:
            fleet = self._fleet(name)
            chunks.append(metrics_to_prometheus(
                fleet.monitor.registry, labels={"fleet": name}))
        lines = [
            "# TYPE serve_sse_clients gauge",
            prometheus_line("serve_sse_clients", None, len(self.hub)),
            "# TYPE serve_sse_dropped_total counter",
            prometheus_line("serve_sse_dropped_total", None,
                            self.hub.total_dropped),
            "# TYPE serve_events_published_total counter",
            prometheus_line("serve_events_published_total", None,
                            self.hub.total_published),
        ]
        for name in names:
            fleet = self._fleet(name)
            labels = {"fleet": name}
            lines += [
                "# TYPE serve_fleet_sim_time_seconds gauge",
                prometheus_line("serve_fleet_sim_time_seconds", labels,
                                round(fleet.sim_time, 6)),
                "# TYPE serve_fleet_ticks_total counter",
                prometheus_line("serve_fleet_ticks_total", labels,
                                fleet.ticks),
                "# TYPE serve_assessments_total counter",
                prometheus_line("serve_assessments_total", labels,
                                fleet.assessor.assessments),
            ]
            payload = fleet.health_payload
            status = payload.get("status")
            if status in LIGHT_ORDER:
                lines.append("# TYPE serve_health_status gauge")
                lines.append(prometheus_line(
                    "serve_health_status", labels,
                    LIGHT_ORDER.index(status)))  # type: ignore[arg-type]
                for group, label in (("nodes", "node"), ("links", "link")):
                    entries = payload.get(group, {})
                    if not isinstance(entries, dict):
                        continue
                    metric = f"serve_health_{label}_status"
                    lines.append(f"# TYPE {metric} gauge")
                    for key, entry in entries.items():
                        light = entry.get("status")
                        if light in LIGHT_ORDER:
                            lines.append(prometheus_line(
                                metric, {**labels, label: key},
                                LIGHT_ORDER.index(light)))
        chunks.append("\n".join(lines) + "\n")
        return "".join(chunks)

    def _inject(self, fleet: FleetSupervisor, request: Request) -> bytes:
        payload = request.json()
        try:
            plan = fleet.queue_fault_plan(payload)  # type: ignore[arg-type]
        except (ValueError, TypeError, KeyError) as exc:
            raise HttpError(400, f"invalid fault plan: {exc}") from exc
        return json_response(202, {
            "fleet": fleet.name,
            "queued": True,
            "plan": plan.to_dict(),
            "applies_at_sim_time": round(fleet.sim_time, 6),
        })

    # -- campaigns -----------------------------------------------------------

    def _launch_campaign(self, request: Request) -> bytes:
        """``POST /campaigns``: validate, record, and launch off-loop.

        The body mirrors the CLI: ``{"scenario": ..., "name"?, "seed"?,
        "repeats"?, "base_params"?, "grid"?, "workers"?, "shard"?:
        [k, of], "timeout_s"?, "retries"?}``.  Cells execute in the
        warm pool's worker processes; only queue plumbing runs in this
        process, so the served fleets' determinism is untouched.
        """
        from repro.campaign import Campaign, default_workers
        from repro.campaign.scenarios import resolve_scenario

        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        try:
            scenario = payload["scenario"]
            resolve_scenario(scenario)
            name = str(payload.get("name", scenario))
            campaign = Campaign(
                name=name, scenario=scenario,
                seed=int(payload.get("seed", 0)),
                base_params=dict(payload.get("base_params") or {}),
                grid=dict(payload.get("grid") or {}),
                repeats=int(payload.get("repeats", 1)),
                fault_plan=payload.get("fault_plan"),
            )
            target: object = campaign
            if payload.get("shard") is not None:
                index, of = payload["shard"]
                target = campaign.shard(int(index), int(of))
            workers = max(1, min(
                self.max_campaign_workers,
                int(payload.get("workers") or default_workers())))
            timeout_s = payload.get("timeout_s")
            timeout_s = None if timeout_s is None else float(timeout_s)
            retries = int(payload.get("retries", 1))
        except HttpError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid campaign: {exc}") from exc
        running = self.campaigns.get(name)
        if running is not None and running["status"] == "running":
            raise HttpError(409, f"campaign {name!r} is already running")
        record = {
            "name": name, "status": "running", "scenario": scenario,
            "seed": campaign.seed, "total": len(target),
            "workers": workers,
            "shard": list(getattr(target, "shard_key", ()) or ()) or None,
        }
        self.campaigns[name] = record
        self._spawn(self._run_campaign(record, target, workers, timeout_s,
                                       retries))
        return json_response(202, {
            "accepted": True, "campaign": record,
            "status_url": f"/campaigns/{name}",
        })

    async def _run_campaign(self, record: dict, target, workers: int,
                            timeout_s: float | None, retries: int) -> None:
        """Coordinate one campaign in a thread; publish the verdict."""
        from repro.campaign import run_campaign

        try:
            out = await asyncio.to_thread(
                run_campaign, target, workers=workers, timeout_s=timeout_s,
                retries=retries)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            record.update(status="failed",
                          error=f"{type(exc).__name__}: {exc}")
        else:
            record.update(
                status="done", digest=out.digest(), runs=len(out.runs),
                ok=len(out.ok), failed=len(out.failures),
                cached=out.n_cached, wall_s=round(out.wall_s, 3),
                failures=[{"run": r.spec.label(),
                           "error": ((r.error or "").strip().splitlines()
                                     or ["?"])[-1]}
                          for r in out.failures[:5]],
            )
        self.hub.publish({
            "event": "campaign", "campaign": record["name"],
            "status": record["status"],
        })

    # -- SSE -----------------------------------------------------------------

    async def _serve_events(self, request: Request,
                            writer: asyncio.StreamWriter) -> None:
        """Stream hub events to one client until it disconnects.

        The subscription queue is bounded: if this client stops
        reading, ``drain()`` below parks *this* coroutine only, the
        queue fills, and the hub drops (and counts) further events for
        it — the sim and every other client proceed untouched.
        """
        sub = self.hub.subscribe()
        try:
            writer.transport.set_write_buffer_limits(
                high=self.sse_write_high)
            writer.write(sse_headers())
            writer.write(b": repro.serve event stream\n\n")
            await writer.drain()
            only_fleet = request.param("fleet")
            event_id = 0
            while True:
                event = await sub.get()
                if only_fleet and event.get("fleet") != only_fleet:
                    continue
                event_id += 1
                writer.write(format_sse(event, event_id))
                await writer.drain()
        finally:
            self.hub.unsubscribe(sub)


# Re-exported for callers that only import the app module.
_ = response
