"""The probe pipeline: plan → wire request → decode → typed observation.

Every diagnostic the toolkit offers boils down to the same drive loop —
walk the workstation next to a node, issue one management request over
the reliable protocol, wait out a response window sized to the command,
decode the struct-packed reply — and before this module existed that
loop was copy-pasted across ``repro.core.diagnosis``, the command
interpreter and several tests, each with its own window arithmetic.

A :class:`Probe` packages one diagnostic as data:

* :meth:`Probe.request` — the wire plan: which node to stand next to,
  the message type, the packed body, and the response window;
* :meth:`Probe.decode` — reply bytes → the command's structured result
  (``PingResult``, ``TracerouteResult``, neighbor views, scan rows);
* :meth:`Probe.observe` — structured result → the *typed observation*
  the diagnosis layer reasons about (:class:`~repro.diag.observations.
  LinkReport` and friends).

:class:`ProbeExecutor` owns the drive/retry/budget logic once, for
everyone: it attaches the workstation, runs the request to completion,
classifies failures (``unreachable`` — the reliable protocol got no
acknowledgment; ``timeout`` — acknowledged but no reply; ``rejected`` —
the node answered with an error), counts ``diag.*`` metrics and emits
``diag.probe`` trace events.
"""

from __future__ import annotations

import struct
import typing as _t
from dataclasses import dataclass, field

from repro.core.serialize import (
    decode_neighbor_views,
    decode_ping_result,
    decode_trace_result,
)
from repro.core.wire import MsgType, unpack_signed
from repro.diag.observations import ChannelReading, LinkReport
from repro.errors import CommandTimeout, ReliableTransferError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.workstation import Workstation

__all__ = [
    "ProbeRequest",
    "Probe",
    "LinkProbe",
    "PathProbe",
    "NeighborProbe",
    "ChannelScanProbe",
    "ProbeOutcome",
    "ProbeExecutor",
    "ping_window",
    "traceroute_window",
    "scan_window",
]


# -- response-window arithmetic (the paper's command budgets) -----------------

def ping_window(rounds: int) -> float:
    """Response window for a remote ping run of ``rounds`` rounds."""
    return rounds * 0.6 + 2.5


def traceroute_window(rounds: int) -> float:
    """Response window for a remote traceroute of ``rounds`` rounds."""
    return rounds * 6.5 + 3.0


def scan_window(count: int, samples: int, dwell_ms: int) -> float:
    """Response window for a channel scan (sampling time + margin)."""
    return count * samples * dwell_ms / 1000.0 + 2.5


@dataclass(frozen=True)
class ProbeRequest:
    """One management request, fully planned: where, what, how long."""

    node: int                     # node to stand next to and address
    msg_type: int
    body: bytes
    window: float
    wait_full_window: bool = False


class Probe:
    """Base class: one diagnostic as a plan/decode/observe triple."""

    #: Short label for metrics, traces and reports.
    kind: str = "probe"

    def request(self) -> ProbeRequest:
        """The wire plan for this probe."""
        raise NotImplementedError

    def decode(self, body: bytes, namespace=None):
        """Reply bytes → the command's structured result."""
        raise NotImplementedError

    def observe(self, decoded):
        """Structured result → typed observation (default: identity)."""
        return decoded

    def describe(self) -> str:
        return self.kind


@dataclass(frozen=True)
class LinkProbe(Probe):
    """Ping ``src → dst`` and reduce the rounds to a :class:`LinkReport`.

    ``port=0`` probes a direct neighbor (the site-survey primitive);
    a routing port turns it into the multi-hop ping.
    """

    src: int
    dst: int
    rounds: int = 10
    length: int = 32
    port: int = 0
    kind: _t.ClassVar[str] = "link"

    def request(self) -> ProbeRequest:
        return ProbeRequest(
            node=self.src, msg_type=MsgType.RUN_PING,
            body=struct.pack(">HBBB", self.dst, self.rounds,
                             self.length, self.port),
            window=ping_window(self.rounds),
        )

    def decode(self, body: bytes, namespace=None):
        return decode_ping_result(body, namespace)

    def observe(self, decoded) -> LinkReport:
        return LinkReport.from_ping_result(self.src, self.dst, decoded)

    def failure_observation(self) -> LinkReport:
        """The report a failed run yields: ``rounds`` sent, no data back."""
        return LinkReport.no_reply(self.src, self.dst, self.rounds)

    def describe(self) -> str:
        return f"link {self.src}->{self.dst}"


@dataclass(frozen=True)
class PathProbe(Probe):
    """Traceroute ``src → dst``: per-hop RTT and link quality."""

    src: int
    dst: int
    rounds: int = 1
    length: int = 32
    port: int = 10
    kind: _t.ClassVar[str] = "path"

    def request(self) -> ProbeRequest:
        return ProbeRequest(
            node=self.src, msg_type=MsgType.RUN_TRACEROUTE,
            body=struct.pack(">HBBB", self.dst, self.rounds,
                             self.length, self.port),
            window=traceroute_window(self.rounds),
        )

    def decode(self, body: bytes, namespace=None):
        return decode_trace_result(body, namespace)

    def describe(self) -> str:
        return f"path {self.src}->{self.dst}"


@dataclass(frozen=True)
class NeighborProbe(Probe):
    """Read one node's neighbor table (the neighborhood survey)."""

    node: int
    usable_only: bool = True
    kind: _t.ClassVar[str] = "neighbors"

    def request(self) -> ProbeRequest:
        return ProbeRequest(
            node=self.node, msg_type=MsgType.NEIGHBOR_LIST,
            body=b"\x01" if self.usable_only else b"\x00",
            window=0.5, wait_full_window=True,
        )

    def decode(self, body: bytes, namespace=None):
        return decode_neighbor_views(body)

    def describe(self) -> str:
        return f"neighbors of {self.node}"


@dataclass(frozen=True)
class ChannelScanProbe(Probe):
    """Survey ambient RF energy across channels on one node."""

    node: int
    first: int = 11
    count: int = 16
    samples: int = 4
    dwell_ms: int = 10
    kind: _t.ClassVar[str] = "scan"

    def request(self) -> ProbeRequest:
        return ProbeRequest(
            node=self.node, msg_type=MsgType.SCAN_CHANNELS,
            body=struct.pack(">BBBH", self.first, self.count,
                             self.samples, self.dwell_ms),
            window=scan_window(self.count, self.samples, self.dwell_ms),
        )

    def decode(self, body: bytes, namespace=None) -> list[tuple[int, int]]:
        count = body[0]
        return [(body[1 + 2 * i], unpack_signed(body[2 + 2 * i]))
                for i in range(count)]

    def observe(self, decoded) -> list[ChannelReading]:
        return [ChannelReading(node=self.node, channel=ch, reading=reading)
                for ch, reading in decoded]

    def describe(self) -> str:
        return f"scan on {self.node}"


# -- execution ----------------------------------------------------------------

@dataclass
class ProbeOutcome:
    """What one probe run produced (success or classified failure)."""

    probe: Probe
    ok: bool
    value: object = None          # the typed observation when ok
    decoded: object = None        # the wire-level result when ok
    failure: str | None = None    # "unreachable" | "timeout" | "rejected"
    error: str = ""
    attempts: int = 0
    exception: BaseException | None = field(default=None, repr=False)

    @property
    def unreachable(self) -> bool:
        """The reliable protocol never got an acknowledgment — with the
        workstation standing next to the node, that means a dead node,
        not a bad link."""
        return self.failure == "unreachable"


class ProbeExecutor:
    """Drives probes over a deployment; the one copy of the retry loop.

    ``deployment`` is anything with a ``workstation`` attribute (a
    :class:`~repro.core.deploy.LiteViewDeployment`) or a
    :class:`~repro.core.workstation.Workstation` itself.  ``attempts``
    bounds retries per probe; ``attach`` walks the workstation next to
    each probe's node first (the paper's site-visit step).
    """

    def __init__(self, deployment, *, attempts: int = 1,
                 attach: bool = True):
        self.ws: "Workstation" = getattr(deployment, "workstation",
                                         deployment)
        self.testbed = self.ws.testbed
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = int(attempts)
        self.attach = bool(attach)

    def run(self, probe: Probe) -> ProbeOutcome:
        """Run one probe to completion, retrying inside the budget."""
        monitor = self.testbed.monitor
        tracer = self.testbed.tracer
        request = probe.request()
        failure, error, exc = None, "", None
        for attempt in range(1, self.attempts + 1):
            if self.attach:
                self.ws.attach_near(request.node)
            monitor.count("diag.probes")
            if tracer.enabled:
                tracer.emit("diag.probe", self.testbed.env.now,
                            node=request.node, kind_label=probe.kind,
                            target=probe.describe(), attempt=attempt)
            try:
                reply = self.ws.call(
                    request.node, request.msg_type, request.body,
                    window=request.window,
                    wait_full_window=request.wait_full_window,
                )
            except CommandTimeout as caught:
                exc = caught
                if isinstance(caught.__cause__, ReliableTransferError):
                    failure, error = "unreachable", str(caught)
                else:
                    failure, error = "timeout", str(caught)
                continue
            if not reply.ok:
                failure = "rejected"
                error = reply.body.decode(errors="replace")
                continue
            decoded = probe.decode(reply.body, self.testbed.namespace)
            return ProbeOutcome(probe=probe, ok=True,
                                value=probe.observe(decoded),
                                decoded=decoded, attempts=attempt)
        monitor.count("diag.probe_failures")
        if tracer.enabled:
            tracer.emit("diag.probe_failure", self.testbed.env.now,
                        node=request.node, kind_label=probe.kind,
                        failure=failure)
        return ProbeOutcome(probe=probe, ok=False, failure=failure,
                            error=error, attempts=self.attempts,
                            exception=exc)

    def run_all(self, probes: _t.Iterable[Probe]) -> list[ProbeOutcome]:
        """Run several probes in order (the site-survey walk)."""
        return [self.run(p) for p in probes]
