"""repro.diag — first-class end-user diagnosis.

The subsystem the paper is about, promoted out of ad-hoc helpers:

* :mod:`repro.diag.probe` — the pluggable probe pipeline (plan → wire
  request → decode → typed observation) behind ping, traceroute,
  neighbor surveys and channel scans;
* :mod:`repro.diag.observations` — the typed observations probes yield;
* :mod:`repro.diag.findings` — the unified, canonically-JSON
  ``Finding`` schema and ``DiagnosisReport.explain()``;
* :mod:`repro.diag.engine` — ``DiagnosisEngine`` running declarative
  ``ProbePlan``s and reducing observations to named verdicts;
* :mod:`repro.diag.online` — ``OnlineMonitor`` and its sliding-window
  detectors: the zero-probe, passive path to the same ``Finding``
  vocabulary, fed by the kernel beacon stream;
* :mod:`repro.diag.score` — precision/recall of findings against
  injected ground truth (:mod:`repro.faults`);
* :mod:`repro.diag.render` — operator-facing traffic lights and
  plain-language recommendations (the ``repro.serve`` health view).

The legacy entry points (``survey_link``, ``classify_link``,
``find_hotspots``, ``probe_path``) live on in
:mod:`repro.core.diagnosis` as thin wrappers over this package.
"""

from repro.diag.engine import (
    DiagnosisEngine,
    ProbePlan,
    Thresholds,
    reduce_dead_node,
    reduce_hotspot_findings,
    reduce_interference_findings,
    reduce_link_finding,
)
from repro.diag.findings import FINDING_KINDS, DiagnosisReport, Finding
from repro.diag.observations import ChannelReading, Hotspot, LinkReport
from repro.diag.online import (
    CusumDetector,
    EwmaDetector,
    OnlineMonitor,
    OnlineThresholds,
    WindowStats,
    merge_findings,
)
from repro.diag.probe import (
    ChannelScanProbe,
    LinkProbe,
    NeighborProbe,
    PathProbe,
    Probe,
    ProbeExecutor,
    ProbeOutcome,
    ProbeRequest,
)
from repro.diag.render import (
    GREEN,
    LIGHT_ORDER,
    RED,
    YELLOW,
    health_view,
    recommendation,
    traffic_light,
    worst_light,
)
from repro.diag.score import active_specs, score_findings, spec_matches_finding

__all__ = [
    "DiagnosisEngine",
    "ProbePlan",
    "Thresholds",
    "reduce_link_finding",
    "reduce_dead_node",
    "reduce_hotspot_findings",
    "reduce_interference_findings",
    "FINDING_KINDS",
    "Finding",
    "DiagnosisReport",
    "OnlineMonitor",
    "OnlineThresholds",
    "EwmaDetector",
    "CusumDetector",
    "WindowStats",
    "merge_findings",
    "LinkReport",
    "Hotspot",
    "ChannelReading",
    "Probe",
    "ProbeRequest",
    "ProbeOutcome",
    "ProbeExecutor",
    "LinkProbe",
    "PathProbe",
    "NeighborProbe",
    "ChannelScanProbe",
    "score_findings",
    "spec_matches_finding",
    "active_specs",
    "GREEN",
    "YELLOW",
    "RED",
    "LIGHT_ORDER",
    "traffic_light",
    "recommendation",
    "worst_light",
    "health_view",
]
