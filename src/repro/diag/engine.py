"""The diagnosis engine: declarative probe plans → named findings.

This is the layer the paper's end user actually wants: point it at a
deployment, tell it which links/paths/channels to examine, and get back
:class:`~repro.diag.findings.Finding` verdicts instead of raw numbers.

The engine is split so every reduction is a pure function over typed
observations (``reduce_*`` below) — unit tests feed synthetic
observations straight in, and the :class:`DiagnosisEngine` itself is
only the orchestration: run the plan's probes through one
:class:`~repro.diag.probe.ProbeExecutor`, pool the observations, apply
the reducers, and wrap everything in a
:class:`~repro.diag.findings.DiagnosisReport`.

Failure classification carries diagnostic weight here: a probe whose
source never *acknowledged* the workstation standing right next to it
(``unreachable``) indicts the node, not any link — it becomes a
``dead_node`` finding, and link verdicts touching a dead node are
suppressed so the report names the root cause once.
"""

from __future__ import annotations

import statistics
import typing as _t
from dataclasses import dataclass, field, replace

from repro.diag.findings import DiagnosisReport, Finding
from repro.diag.observations import ChannelReading, LinkReport
from repro.diag.probe import (
    ChannelScanProbe,
    LinkProbe,
    NeighborProbe,
    PathProbe,
    ProbeExecutor,
    ProbeOutcome,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import TracerouteResult

__all__ = [
    "Thresholds",
    "ProbePlan",
    "DiagnosisEngine",
    "reduce_link_finding",
    "reduce_dead_node",
    "reduce_hotspot_findings",
    "reduce_interference_findings",
]


@dataclass(frozen=True)
class Thresholds:
    """Decision thresholds for every reducer, in one place.

    The link thresholds mirror the legacy ``classify_link`` defaults so
    the back-compat wrappers reproduce historical labels exactly.
    """

    broken_loss: float = 0.9
    lossy_loss: float = 0.25
    asym_lqi: float = 12.0
    asym_rssi: float = 8.0
    hotspot_score: float = 1.5
    hotspot_queue: int = 2
    min_samples: int = 1
    #: dB(ish) RSSI-reading rise over the scan-wide floor that flags a
    #: channel as suffering interference.
    interference_margin: float = 12.0


@dataclass(frozen=True)
class ProbePlan:
    """A declarative description of what to examine.

    * ``links`` — directed neighbor pairs to ping-survey (port 0);
    * ``paths`` — (src, dst) pairs to traceroute for hotspot analysis;
    * ``scans`` — nodes to run channel scans on;
    * ``neighbors`` — nodes whose neighbor tables to read (evidence);
    * ``follow_paths`` — also survey every hop link each traceroute
      traversed, so a path complaint decomposes into link verdicts.
    """

    links: tuple[tuple[int, int], ...] = ()
    paths: tuple[tuple[int, int], ...] = ()
    scans: tuple[int, ...] = ()
    neighbors: tuple[int, ...] = ()
    rounds: int = 10
    length: int = 32
    routing_port: int = 10
    path_rounds: int = 1
    baseline_rtt_ms: float | None = None
    follow_paths: bool = False

    def __post_init__(self):
        object.__setattr__(self, "links",
                           tuple((int(a), int(b)) for a, b in self.links))
        object.__setattr__(self, "paths",
                           tuple((int(a), int(b)) for a, b in self.paths))
        object.__setattr__(self, "scans", tuple(int(n) for n in self.scans))
        object.__setattr__(self, "neighbors",
                           tuple(int(n) for n in self.neighbors))

    @classmethod
    def for_path(cls, src: int, dst: int, **kw) -> "ProbePlan":
        """The ``diagnose`` workflow: trace the path, survey its hops."""
        kw.setdefault("follow_paths", True)
        return cls(paths=((src, dst),), **kw)


# -- pure reducers: typed observations → findings -----------------------------

def reduce_link_finding(report: LinkReport,
                        thresholds: Thresholds = Thresholds(),
                        ) -> Finding | None:
    """One link report → at most one link finding.

    Decision order matches the legacy ``classify_link``: broken first,
    then asymmetry, then lossiness.  A report with no data (``sent ==
    0``) yields *no* finding — absence of evidence is not a broken
    link.
    """
    if not report.has_data:
        return None
    link = (report.src, report.dst)
    loss = report.loss_ratio
    if loss >= thresholds.broken_loss:
        return Finding(
            kind="broken_link", link=link,
            confidence=min(1.0, loss),
            summary=(f"{report.received}/{report.sent} probes returned "
                     f"({loss:.0%} loss)"),
            evidence={"sent": report.sent, "received": report.received,
                      "loss_ratio": loss},
        )
    if report.lqi_forward is not None and report.lqi_backward is not None:
        lqi_delta = abs(report.lqi_forward - report.lqi_backward)
        rssi_delta = (abs(report.rssi_forward - report.rssi_backward)
                      if report.rssi_forward is not None
                      and report.rssi_backward is not None else 0.0)
        ratio = max(lqi_delta / thresholds.asym_lqi,
                    rssi_delta / thresholds.asym_rssi)
        if ratio >= 1.0:
            return Finding(
                kind="asymmetric_link", link=link,
                confidence=min(1.0, 0.5 * ratio),
                summary=(f"forward/backward quality differs "
                         f"(ΔLQI={lqi_delta:.1f}, ΔRSSI={rssi_delta:.1f})"),
                evidence={"lqi_forward": report.lqi_forward,
                          "lqi_backward": report.lqi_backward,
                          "rssi_forward": report.rssi_forward,
                          "rssi_backward": report.rssi_backward,
                          "lqi_delta": lqi_delta,
                          "rssi_delta": rssi_delta},
            )
    if loss >= thresholds.lossy_loss:
        return Finding(
            kind="lossy_link", link=link,
            confidence=min(1.0, loss / thresholds.broken_loss),
            summary=(f"{loss:.0%} probe loss "
                     f"({report.received}/{report.sent} returned)"),
            evidence={"sent": report.sent, "received": report.received,
                      "loss_ratio": loss},
        )
    return None


def reduce_dead_node(node: int, *, failure: str = "unreachable",
                     error: str = "") -> Finding:
    """An unreachable probe source → a ``dead_node`` finding.

    ``unreachable`` means the reliable protocol exhausted retries with
    the workstation adjacent — near-certain death.  A plain ``timeout``
    (acknowledged but silent) is weaker evidence.
    """
    confidence = 0.95 if failure == "unreachable" else 0.6
    return Finding(
        kind="dead_node", node=node, confidence=confidence,
        summary=("no acknowledgment from an adjacent workstation"
                 if failure == "unreachable"
                 else "acknowledged the command but never replied"),
        evidence={"failure": failure, "error": error},
    )


def reduce_hotspot_findings(traces: _t.Iterable["TracerouteResult"],
                            thresholds: Thresholds = Thresholds(),
                            baseline_rtt_ms: float | None = None,
                            ) -> list[Finding]:
    """Per-hop RTT + queue evidence from traceroutes → hotspot findings.

    Same statistics as the legacy ``find_hotspots``: aggregate each
    node's inbound hop RTTs and max reported queue, score against
    ``baseline_rtt_ms`` (or the probe-wide median when absent), and
    flag nodes past ``hotspot_score`` or with queues at
    ``hotspot_queue`` and above.
    """
    rtts: dict[int, list[float]] = {}
    queues: dict[int, int] = {}
    for result in traces:
        for hop in result.hops:
            rtts.setdefault(hop.probed_node_id, []).append(hop.rtt_ms)
            queues[hop.probed_node_id] = max(
                queues.get(hop.probed_node_id, 0), hop.link.queue_remote
            )
    if not rtts:
        return []
    all_means = {
        node: statistics.fmean(values)
        for node, values in rtts.items()
        if len(values) >= thresholds.min_samples
    }
    if not all_means:
        return []
    baseline = (baseline_rtt_ms if baseline_rtt_ms is not None
                else statistics.median(all_means.values()))
    findings = []
    for node, mean_rtt in all_means.items():
        score = mean_rtt / baseline if baseline > 0 else float("inf")
        queue = queues.get(node, 0)
        hot_by_rtt = score >= thresholds.hotspot_score
        hot_by_queue = queue >= thresholds.hotspot_queue
        if not (hot_by_rtt or hot_by_queue):
            continue
        confidence = min(1.0, score / (2.0 * thresholds.hotspot_score))
        if hot_by_queue:
            confidence = max(confidence, 0.7)
        findings.append(Finding(
            kind="hotspot", node=node, confidence=confidence,
            summary=(f"mean hop RTT {mean_rtt:.1f} ms is {score:.1f}x "
                     f"the {baseline:.1f} ms reference"
                     + (f", queue peaked at {queue}" if queue else "")),
            evidence={"mean_hop_rtt_ms": mean_rtt, "max_queue": queue,
                      "samples": len(rtts[node]), "score": score,
                      "baseline_rtt_ms": baseline},
        ))
    return findings


def reduce_interference_findings(readings: _t.Iterable[ChannelReading],
                                 thresholds: Thresholds = Thresholds(),
                                 ) -> list[Finding]:
    """Channel-scan energy readings → interference findings.

    The scan-wide median reading is the ambient floor; any channel
    whose peak reading rises ``interference_margin`` above it is named,
    attributed to the node that observed the peak.
    """
    readings = list(readings)
    if not readings:
        return []
    floor = statistics.median(r.reading for r in readings)
    peaks: dict[int, ChannelReading] = {}
    for r in readings:
        best = peaks.get(r.channel)
        if best is None or (r.reading, -r.node) > (best.reading, -best.node):
            peaks[r.channel] = r
    findings = []
    for channel in sorted(peaks):
        peak = peaks[channel]
        excess = peak.reading - floor
        if excess < thresholds.interference_margin:
            continue
        findings.append(Finding(
            kind="interference", channel=channel, node=peak.node,
            confidence=min(1.0, excess
                           / (2.0 * thresholds.interference_margin)),
            summary=(f"energy {excess:.0f} above the ambient floor "
                     f"({peak.reading} vs median {floor:.0f})"),
            evidence={"reading": peak.reading, "floor": float(floor),
                      "excess": float(excess), "observer": peak.node},
        ))
    return findings


# -- the engine ---------------------------------------------------------------

@dataclass
class _RunState:
    """Scratch produced by the probe phase, consumed by reduction."""

    link_reports: list[LinkReport] = field(default_factory=list)
    #: ((src, dst), TracerouteResult) for every path probe that worked.
    traces: list = field(default_factory=list)
    readings: list[ChannelReading] = field(default_factory=list)
    neighbor_views: dict[int, list] = field(default_factory=dict)
    dead: dict[int, ProbeOutcome] = field(default_factory=dict)
    probes_run: int = 0
    probes_failed: int = 0


class DiagnosisEngine:
    """Executes :class:`ProbePlan`s and reduces them to findings.

    ``deployment`` is a ``LiteViewDeployment`` (or bare workstation);
    all network access goes through the probe pipeline, so the engine
    sees exactly what an end user at the workstation could see.
    """

    def __init__(self, deployment, *,
                 thresholds: Thresholds | None = None,
                 attempts: int = 1):
        self.executor = ProbeExecutor(deployment, attempts=attempts)
        self.thresholds = thresholds or Thresholds()
        self.testbed = self.executor.testbed

    # -- probe phase -----------------------------------------------------

    def _run(self, state: _RunState, probe) -> ProbeOutcome:
        outcome = self.executor.run(probe)
        state.probes_run += 1
        if not outcome.ok:
            state.probes_failed += 1
            if outcome.unreachable:
                state.dead.setdefault(probe.request().node, outcome)
        return outcome

    def _survey_link(self, state: _RunState, src: int, dst: int,
                     plan: ProbePlan) -> None:
        probe = LinkProbe(src=src, dst=dst, rounds=plan.rounds,
                          length=plan.length, port=0)
        outcome = self._run(state, probe)
        if outcome.ok:
            state.link_reports.append(outcome.value)
        elif outcome.failure == "timeout":
            # The node took the command but probes went unanswered —
            # that is data about the link, not missing data.
            state.link_reports.append(probe.failure_observation())

    def _probe_phase(self, plan: ProbePlan) -> _RunState:
        state = _RunState()
        surveyed = set(plan.links)
        for src, dst in plan.links:
            self._survey_link(state, src, dst, plan)
        for src, dst in plan.paths:
            outcome = self._run(state, PathProbe(
                src=src, dst=dst, rounds=plan.path_rounds,
                length=plan.length, port=plan.routing_port))
            if outcome.ok:
                state.traces.append(((src, dst), outcome.value))
        if plan.follow_paths:
            for (src, dst), trace in list(state.traces):
                hops = [h.probed_node_id for h in
                        sorted(trace.hops, key=lambda h: h.hop_index)]
                for a, b in zip([src] + hops, hops):
                    if a != b and (a, b) not in surveyed:
                        surveyed.add((a, b))
                        self._survey_link(state, a, b, plan)
        for node in plan.scans:
            outcome = self._run(state, ChannelScanProbe(node=node))
            if outcome.ok:
                state.readings.extend(outcome.value)
        for node in plan.neighbors:
            outcome = self._run(state, NeighborProbe(node=node))
            if outcome.ok:
                state.neighbor_views[node] = outcome.value
        return state

    # -- reduction phase -------------------------------------------------

    def _reduce(self, state: _RunState, plan: ProbePlan) -> list[Finding]:
        findings: list[Finding] = []
        for node in sorted(state.dead):
            outcome = state.dead[node]
            finding = reduce_dead_node(node, failure=outcome.failure,
                                       error=outcome.error)
            if node in state.neighbor_views and state.neighbor_views[node]:
                # The node answered a neighbor survey this run: demote.
                finding = replace(finding, confidence=0.5)
            findings.append(finding)
        for report in state.link_reports:
            if report.src in state.dead or report.dst in state.dead:
                continue  # symptom of the dead node, already named
            finding = reduce_link_finding(report, self.thresholds)
            if finding is not None:
                findings.append(finding)
        findings.extend(reduce_hotspot_findings(
            [trace for _, trace in state.traces], self.thresholds,
            baseline_rtt_ms=plan.baseline_rtt_ms))
        findings.extend(reduce_interference_findings(
            state.readings, self.thresholds))
        return sorted(findings, key=Finding.sort_key)

    @staticmethod
    def _path_story(src: int, dst: int, trace) -> str:
        head = (f"Path {src} -> {dst}: "
                f"{'reached' if trace.reached_target else 'DID NOT reach'} "
                f"the target over {trace.hop_count} hop(s).")
        lines = [head]
        for hop in sorted(trace.hops, key=lambda h: h.hop_index):
            lines.append(
                f"  hop {hop.hop_index}: node {hop.probed_node_id}, "
                f"RTT {hop.rtt_ms:.1f} ms, queue {hop.link.queue_remote}, "
                f"LQI {hop.link.lqi_forward}/{hop.link.lqi_backward}"
            )
        return "\n".join(lines)

    # -- entry points ----------------------------------------------------

    def run(self, plan: ProbePlan) -> DiagnosisReport:
        """Execute ``plan`` and reduce its observations to a report."""
        env = self.testbed.env
        monitor = self.testbed.monitor
        tracer = self.testbed.tracer
        started = env.now
        monitor.count("diag.runs")
        state = self._probe_phase(plan)
        findings = self._reduce(state, plan)
        for finding in findings:
            monitor.count(f"diag.finding.{finding.kind}")
            if tracer.enabled:
                tracer.emit("diag.finding", env.now,
                            node=finding.node, kind_label=finding.kind,
                            subject=finding.subject,
                            confidence=round(finding.confidence, 3))
        return DiagnosisReport(
            findings=findings,
            started_at=started, finished_at=env.now,
            probes_run=state.probes_run,
            probes_failed=state.probes_failed,
            path_stories=[self._path_story(src, dst, trace)
                          for (src, dst), trace in state.traces],
        )

    def diagnose(self, src: int, dst: int, *, rounds: int = 5,
                 length: int = 32, port: int = 10) -> DiagnosisReport:
        """The one-call workflow behind the ``diagnose`` shell command:
        trace ``src → dst``, survey every hop link, name what's wrong."""
        return self.run(ProbePlan.for_path(
            src, dst, rounds=rounds, length=length, routing_port=port))
