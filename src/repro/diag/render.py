"""Operator-facing rendering of diagnosis reports: traffic lights and
plain-language recommendations.

A :class:`~repro.diag.findings.DiagnosisReport` answers "what is
wrong?"; a live operator dashboard needs two further reductions the
related monitoring tools (docsight-style health views) converge on:

* a **traffic light** per subject — ``green`` (no finding), ``yellow``
  (degraded: lossy/asymmetric links, hotspots, interference) or ``red``
  (down: dead nodes, broken links) — with low-confidence red verdicts
  demoted to yellow so a single flaky probe round never paints a link
  red;
* a **recommendation** per finding — one imperative sentence telling
  the end user what to physically do about it, derived from the finding
  kind and its evidence.

:func:`health_view` assembles both into the JSON payload
``repro.serve`` publishes at ``/health``.  Everything here is pure data
→ data; no network access, no simulator imports.
"""

from __future__ import annotations

import typing as _t

from repro.diag.findings import FINDING_KINDS, DiagnosisReport, Finding

__all__ = [
    "GREEN",
    "YELLOW",
    "RED",
    "LIGHT_ORDER",
    "traffic_light",
    "recommendation",
    "worst_light",
    "health_view",
]

GREEN = "green"
YELLOW = "yellow"
RED = "red"

#: Severity order of the lights, for ``worst_light`` and numeric export
#: (``LIGHT_ORDER.index`` gives the 0/1/2 gauge values ``/metrics``
#: publishes).
LIGHT_ORDER = (GREEN, YELLOW, RED)

#: Base light per finding kind: outright failures are red, degradations
#: yellow.
_KIND_LIGHT = {
    "dead_node": RED,
    "broken_link": RED,
    "asymmetric_link": YELLOW,
    "lossy_link": YELLOW,
    "hotspot": YELLOW,
    "interference": YELLOW,
}

#: A red verdict below this confidence is demoted to yellow — one bad
#: probe round is a warning, not an outage.
_RED_CONFIDENCE_FLOOR = 0.5


def traffic_light(finding: Finding) -> str:
    """The traffic-light colour one finding paints its subject."""
    light = _KIND_LIGHT[finding.kind]
    if light == RED and finding.confidence < _RED_CONFIDENCE_FLOOR:
        return YELLOW
    return light


def worst_light(lights: _t.Iterable[str]) -> str:
    """The most severe light in ``lights`` (``green`` when empty)."""
    worst = GREEN
    for light in lights:
        if LIGHT_ORDER.index(light) > LIGHT_ORDER.index(worst):
            worst = light
    return worst


def recommendation(finding: Finding) -> str:
    """One imperative, plain-language sentence per finding.

    The paper's end user is not a networking specialist; the verdict
    alone ("asymmetric link") does not tell them what to *do*.  Each
    sentence names the subject and the physical remedy that matches the
    failure mode.
    """
    kind = finding.kind
    if kind == "dead_node":
        return (f"Check node {finding.node}: replace its batteries or "
                "power-cycle it — it no longer acknowledges an adjacent "
                "workstation.")
    if kind == "broken_link":
        a, b = finding.link  # type: ignore[misc]
        return (f"Restore the path between nodes {a} and {b}: move the "
                "nodes closer, raise transmit power, or place a relay "
                "node between them.")
    if kind == "asymmetric_link":
        a, b = finding.link  # type: ignore[misc]
        return (f"Raise transmit power at the weaker end of link "
                f"{a}->{b}, or route acknowledgment-dependent traffic "
                "around it — its two directions differ in quality.")
    if kind == "lossy_link":
        a, b = finding.link  # type: ignore[misc]
        loss = finding.evidence.get("loss_ratio")
        rate = f" ({loss:.0%} probe loss)" if isinstance(loss, float) else ""
        return (f"Shorten or reinforce link {a}->{b}{rate}: reduce the "
                "hop distance, raise transmit power, or clear "
                "obstructions.")
    if kind == "hotspot":
        return (f"Relieve node {finding.node}: traffic concentrates "
                "there — spread routes over alternative paths or "
                "increase its queue capacity.")
    if kind == "interference":
        where = (f" near node {finding.node}"
                 if finding.node is not None else "")
        return (f"Move the network off channel {finding.channel}{where}, "
                "or locate and remove the interference source.")
    raise ValueError(f"unknown finding kind {kind!r}")  # pragma: no cover


def _subject_entries(report: DiagnosisReport) -> dict[str, dict]:
    """Worst finding per subject, keyed by the subject's JSON key."""
    entries: dict[str, dict] = {}
    for finding in report.findings:
        if finding.link is not None:
            key = f"{finding.link[0]}->{finding.link[1]}"
            group = "links"
        elif finding.kind == "interference":
            key = str(finding.channel)
            group = "channels"
        else:
            key = str(finding.node)
            group = "nodes"
        light = traffic_light(finding)
        slot = entries.setdefault(f"{group}:{key}", {
            "group": group, "key": key, "status": GREEN,
        })
        # Findings arrive in severity order; only upgrade the light and
        # keep the first (= most severe) finding as the named cause.
        if LIGHT_ORDER.index(light) > LIGHT_ORDER.index(slot["status"]):
            slot["status"] = light
        if "kind" not in slot:
            slot.update(
                kind=finding.kind,
                confidence=round(finding.confidence, 3),
                summary=finding.summary,
                recommendation=recommendation(finding),
            )
    return entries


def health_view(report: DiagnosisReport, *,
                nodes: _t.Iterable[int] = (),
                links: _t.Iterable[tuple[int, int]] = (),
                sim_time: float | None = None,
                assessed_at: float | None = None,
                extra: _t.Mapping[str, object] | None = None) -> dict:
    """The docsight-style health payload for one diagnosis report.

    ``nodes``/``links`` are the *watched* subjects: every one appears in
    the payload (green unless a finding names it), so a dashboard can
    always draw the full fleet rather than only its problems.  Subjects
    named by findings but not watched are included too.  The result is
    JSON-ready and deterministic (sorted keys within each group).
    """
    groups: dict[str, dict[str, dict]] = {
        "nodes": {str(n): {"status": GREEN} for n in nodes},
        "links": {f"{a}->{b}": {"status": GREEN} for a, b in links},
        "channels": {},
    }
    for slot in _subject_entries(report).values():
        entry = {k: v for k, v in slot.items() if k not in ("group", "key")}
        groups[slot["group"]][slot["key"]] = entry
    all_lights = [entry["status"]
                  for group in groups.values() for entry in group.values()]
    payload: dict[str, object] = {
        "status": worst_light(all_lights),
        "healthy": report.healthy,
        "findings": [f.to_dict() for f in report.findings],
        "recommendations": [recommendation(f) for f in report.findings],
        "counts": {kind: len(report.of_kind(kind))
                   for kind in FINDING_KINDS
                   if report.of_kind(kind)},
        "probes_run": report.probes_run,
        "probes_failed": report.probes_failed,
        "nodes": dict(sorted(groups["nodes"].items(),
                             key=lambda kv: int(kv[0]))),
        "links": dict(sorted(groups["links"].items())),
    }
    if groups["channels"]:
        payload["channels"] = dict(sorted(groups["channels"].items(),
                                          key=lambda kv: int(kv[0])))
    if sim_time is not None:
        payload["sim_time"] = round(sim_time, 6)
    if assessed_at is not None:
        payload["assessed_at"] = round(assessed_at, 6)
    if extra:
        payload.update(extra)
    return payload
