"""Passive online anomaly detection over the beacon stream.

Active diagnosis (:mod:`repro.diag.engine`) answers "what is wrong?"
by injecting probe traffic; this module answers it by *listening*.
Every node already beacons every ~2 s, and every reception carries
LQI/RSSI readings and a sequence number — a free, continuous stream of
per-link observations.  :class:`OnlineMonitor` taps that stream (a
read-only callback registered on the shared
:class:`~repro.sim.monitor.Monitor`), runs O(1)-memory sliding-window
detectors per directed link, and emits the same closed-vocabulary
:class:`~repro.diag.findings.Finding` schema the active engine
produces — so :func:`~repro.diag.score.score_findings` grades both
against the same ground truth and the serve layer can swap between
them.

Detectors:

* :class:`WindowStats` — fixed-capacity ring buffer with O(1) running
  mean/variance (push evicts; no rescan);
* :class:`EwmaDetector` — level-shift detection against an adaptive
  EWMA baseline with an EWMA absolute-deviation scale, k-sigma on/off
  thresholds and consecutive-sample hysteresis (catches LQI/RSSI
  collapse);
* :class:`CusumDetector` — one-sided CUSUM changepoint detector on the
  per-expected-beacon loss indicator reconstructed from sequence-number
  gaps (catches loss-rate rises smaller than the quality noise).

The monitor never touches the simulation: it consumes no RNG, schedules
no events and sends no packets, so attaching it leaves the packet
digest byte-identical — the zero-probe contract the passive serve mode
and the determinism suite assert.
"""

from __future__ import annotations

import math
import sys
import typing as _t
from dataclasses import dataclass

from repro.diag.findings import FINDING_KINDS, DiagnosisReport, Finding
from repro.kernel.neighbors import DEFAULT_BEACON_INTERVAL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed
    from repro.radio.medium import FrameArrival

__all__ = [
    "WindowStats",
    "EwmaDetector",
    "CusumDetector",
    "OnlineThresholds",
    "OnlineMonitor",
    "merge_findings",
    "PROBE_PACKET_KINDS",
]

#: Packet kinds that count as probe traffic (the zero-probe assertion
#: and the hybrid self-traffic mask): reliable control commands, pings
#: and traceroutes.  Beacons and routing adverts are the network's own
#: background, not probes.
PROBE_PACKET_KINDS = ("control", "ping", "traceroute")


def finding_subject_key(finding: Finding) -> tuple:
    """Canonical dedup key for one finding's *subject*.

    The three link kinds fold together (an active ``lossy_link`` and a
    passive ``broken_link`` on the same pair are one complaint, not
    two), links fold across direction, and channel verdicts fold by
    channel (the observer node may differ between modes).
    """
    if finding.link is not None:
        return ("link", min(finding.link), max(finding.link))
    if finding.channel is not None:
        return ("channel", finding.channel)
    return (finding.kind, finding.node)


def merge_findings(primary: _t.Iterable[Finding],
                   secondary: _t.Iterable[Finding]) -> list[Finding]:
    """Union of two reports' findings, deduplicated by subject.

    ``primary`` wins on conflicts (the hybrid assessor passes the
    active report first: probe evidence is directed and richer).

    One cross-mode root-cause rule, mirroring the suppression
    :meth:`OnlineMonitor.poll` applies internally: an ``interference``
    verdict explains unreachability.  While a channel is jammed, CSMA
    keeps *every* transmitter silent — probes time out and beacons
    stop fleet-wide — so a simultaneous ``dead_node`` claim is
    unprovable and is dropped rather than reported as a second fault.
    Returned in canonical order.
    """
    merged = list(primary)
    named = {finding_subject_key(f) for f in merged}
    for finding in secondary:
        if finding_subject_key(finding) not in named:
            merged.append(finding)
    if any(f.kind == "interference" for f in merged):
        merged = [f for f in merged if f.kind != "dead_node"]
    merged.sort(key=Finding.sort_key)
    return merged


def _clamp_finite(x: float) -> float:
    """Pull an overflowed (infinite) intermediate back to the finite
    float range; finite inputs pass through untouched.  Two finite
    samples at opposite ends of the double range make ``a - b``
    overflow, and a detector's state must stay finite regardless of
    what the series feeds it."""
    if x > sys.float_info.max:
        return sys.float_info.max
    if x < -sys.float_info.max:
        return -sys.float_info.max
    return x


class WindowStats:
    """Fixed-capacity ring buffer with O(1) running mean/variance.

    ``push`` evicts the oldest sample once full and maintains running
    sums, so mean/variance never rescan the buffer.  Sums are rebuilt
    from the buffer every ``capacity * 256`` pushes to bound float
    cancellation drift on arbitrarily long series — still amortised
    O(1) per push, and memory is exactly ``capacity`` floats forever.
    """

    __slots__ = ("capacity", "_buf", "_next", "_count", "_sum", "_sumsq",
                 "_pushes")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buf: list[float] = [0.0] * self.capacity
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._pushes = 0

    def push(self, value: float) -> None:
        value = float(value)
        if self._count == self.capacity:
            old = self._buf[self._next]
            self._sum -= old
            self._sumsq -= old * old
        else:
            self._count += 1
        self._buf[self._next] = value
        self._next = (self._next + 1) % self.capacity
        self._sum += value
        self._sumsq += value * value
        self._pushes += 1
        if self._pushes % (self.capacity * 256) == 0:
            self._rebuild()

    def _rebuild(self) -> None:
        live = self.values()
        self._sum = math.fsum(live)
        self._sumsq = math.fsum(v * v for v in live)

    def values(self) -> list[float]:
        """Live samples, oldest first (for tests and evidence)."""
        if self._count < self.capacity:
            return self._buf[:self._count]
        return self._buf[self._next:] + self._buf[:self._next]

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (clamped at 0 against float drift)."""
        if not self._count:
            return 0.0
        m = self.mean
        return max(0.0, self._sumsq / self._count - m * m)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class EwmaDetector:
    """Level-shift detector: adaptive EWMA baseline + hysteresis.

    Tracks an EWMA mean and an EWMA absolute deviation of the series.
    A sample further than ``k_on`` deviations from the baseline (in the
    watched ``direction``) counts toward firing; ``hysteresis``
    consecutive such samples fire the detector.  While counting (and
    while fired) the baseline is *gated* — outliers do not update it —
    so a genuine level shift is not absorbed before it can fire.  Once
    fired, ``hysteresis`` consecutive samples back within ``k_off``
    deviations recover it (the recovery path of transient faults).

    State is a handful of floats: O(1) memory for any series length.
    Non-finite samples are ignored (counted in ``ignored``), so the
    confidence is finite and in [0, 1] by construction.
    """

    __slots__ = ("alpha", "k_on", "k_off", "hysteresis", "min_samples",
                 "sigma_floor", "direction", "n", "ignored", "mean", "dev",
                 "fired", "_over", "_under", "_peak")

    def __init__(self, *, alpha: float = 0.2, k_on: float = 4.0,
                 k_off: float = 2.0, hysteresis: int = 3,
                 min_samples: int = 8, sigma_floor: float = 1.0,
                 direction: str = "both"):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if k_off > k_on:
            raise ValueError(f"k_off ({k_off}) must not exceed k_on ({k_on})")
        if direction not in ("both", "up", "down"):
            raise ValueError(f"direction must be both/up/down, "
                             f"got {direction!r}")
        if sigma_floor <= 0:
            raise ValueError(f"sigma_floor must be > 0, got {sigma_floor}")
        self.alpha = float(alpha)
        self.k_on = float(k_on)
        self.k_off = float(k_off)
        self.hysteresis = max(1, int(hysteresis))
        self.min_samples = max(1, int(min_samples))
        self.sigma_floor = float(sigma_floor)
        self.direction = direction
        self.n = 0
        self.ignored = 0
        self.mean = 0.0
        self.dev = 0.0
        self.fired = False
        self._over = 0
        self._under = 0
        self._peak = 0.0

    def _excess(self, value: float) -> float:
        """Signed deviation in sigma units, oriented by ``direction``."""
        sigma = max(self.dev, self.sigma_floor)
        z = _clamp_finite(_clamp_finite(value - self.mean) / sigma)
        if self.direction == "down":
            return -z
        if self.direction == "up":
            return z
        return abs(z)

    def _absorb(self, value: float) -> None:
        a = self.alpha
        diff = _clamp_finite(abs(value - self.mean))
        self.dev = _clamp_finite((1 - a) * self.dev + a * diff)
        self.mean = _clamp_finite((1 - a) * self.mean + a * value)

    def update(self, value: float) -> bool:
        """Feed one sample; returns the (possibly new) fired state."""
        value = float(value)
        if not math.isfinite(value):
            self.ignored += 1
            return self.fired
        if self.n == 0:
            self.mean = value
        if self.n < self.min_samples:
            self._absorb(value)
            self.n += 1
            return self.fired
        excess = self._excess(value)
        if not self.fired:
            if excess >= self.k_on:
                self._over += 1
                if self._over >= self.hysteresis:
                    self.fired = True
                    self._peak = excess
                    self._under = 0
            else:
                self._over = 0
                self._absorb(value)
        else:
            self._peak = max(self._peak, excess)
            if excess <= self.k_off:
                self._under += 1
                if self._under >= self.hysteresis:
                    self.fired = False
                    self._over = 0
                    self._under = 0
                    self._peak = 0.0
                    self._absorb(value)
            else:
                self._under = 0
        self.n += 1
        return self.fired

    @property
    def shift(self) -> float:
        """Peak excess (in sigma units) of the current firing, else 0."""
        return self._peak if self.fired else 0.0

    @property
    def confidence(self) -> float:
        """Confidence in [0, 1]; 0 when quiet, >= 0.5 once fired."""
        if not self.fired:
            return 0.0
        return min(1.0, 0.5 + (self._peak - self.k_on) / (6.0 * self.k_on))

    def reset(self) -> None:
        self.n = 0
        self.ignored = 0
        self.mean = 0.0
        self.dev = 0.0
        self.fired = False
        self._over = 0
        self._under = 0
        self._peak = 0.0


class CusumDetector:
    """One-sided (upper) CUSUM changepoint detector.

    Accumulates ``max(0, g + (x - target - slack))`` and fires while the
    statistic is at or above ``threshold``.  With the per-expected-beacon
    loss indicator as input (``target=0``), ``slack`` is the tolerated
    ambient loss rate and ``threshold`` the excess lost-beacon mass that
    constitutes a changepoint; after the fault clears, each delivered
    beacon drains ``slack`` from the statistic, so recovery de-asserts
    the detector without an explicit reset.  The statistic is clamped at
    ``cap`` (default ``2 * threshold``) so an arbitrarily long burst
    cannot push the de-assert arbitrarily far past the recovery.

    O(1) memory; non-finite samples are ignored.
    """

    __slots__ = ("target", "slack", "threshold", "cap", "n", "ignored",
                 "_stat")

    def __init__(self, *, target: float = 0.0, slack: float = 0.15,
                 threshold: float = 2.0, cap: float | None = None):
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.target = float(target)
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.cap = float(cap) if cap is not None else 2.0 * self.threshold
        if self.cap < self.threshold:
            raise ValueError(f"cap ({self.cap}) must be >= threshold "
                             f"({self.threshold})")
        self.n = 0
        self.ignored = 0
        self._stat = 0.0

    def update(self, value: float) -> bool:
        value = float(value)
        if not math.isfinite(value):
            self.ignored += 1
            return self.fired
        self._stat = min(self.cap, max(
            0.0, self._stat + (value - self.target - self.slack)))
        self.n += 1
        return self.fired

    @property
    def statistic(self) -> float:
        return self._stat

    @property
    def fired(self) -> bool:
        return self._stat >= self.threshold

    @property
    def confidence(self) -> float:
        """Confidence in [0, 1]; 0 when quiet, >= 0.5 once fired."""
        if not self.fired:
            return 0.0
        return min(1.0, 0.5 + (self._stat - self.threshold)
                   / (6.0 * self.threshold))

    def reset(self) -> None:
        self.n = 0
        self.ignored = 0
        self._stat = 0.0


@dataclass(frozen=True)
class OnlineThresholds:
    """Every passive-detector knob, in one place (the online analogue
    of :class:`~repro.diag.engine.Thresholds`).

    Defaults are pinned by ``tests/diag/test_online_detectors.py``; the
    rationale for each lives in ``docs/DIAGNOSIS.md``.
    """

    #: Detector warm-up: beacons a link must have delivered before any
    #: verdict may name it (absence of evidence is not a broken link).
    min_samples: int = 8
    #: Ring capacity for the per-expected-beacon loss indicator.
    window: int = 32
    #: EWMA alpha shared by the LQI and RSSI level-shift detectors.
    quality_alpha: float = 0.2
    quality_k_on: float = 4.0
    quality_k_off: float = 2.0
    quality_hysteresis: int = 3
    #: Scale floors so a dead-quiet baseline cannot make noise-free
    #: jitter look like a 100-sigma event.
    lqi_sigma_floor: float = 2.0
    rssi_sigma_floor: float = 1.5
    #: CUSUM drift allowance (tolerated ambient loss per beacon) and
    #: firing mass (net excess lost beacons).
    loss_slack: float = 0.15
    loss_threshold: float = 2.0
    #: Recent-window loss level that upgrades lossy -> broken.
    broken_loss: float = 0.9
    #: Missed-interval multiples before a once-healthy link is silent.
    silence_factor: float = 4.0
    #: Sequence gaps beyond this are treated as a counter restart
    #: (reboot), not as that many lost beacons.
    max_gap: int = 64
    #: Simultaneously-degraded links on one channel (spanning >= 2
    #: origins and >= 2 receivers, with no single common endpoint, and
    #: covering at least ``interference_min_fraction`` of the channel's
    #: tracked links) escalate to an ``interference`` verdict.  The
    #: fraction gate separates RF (which degrades essentially every
    #: link on the channel) from a coincidence of node/link faults
    #: (which degrades a cluster but leaves the rest clean).
    interference_min_links: int = 3
    interference_min_fraction: float = 0.5
    #: Inter-arrival drift detection: the recent-window mean must sit
    #: ``drift_z`` standard errors AND ``drift_rel`` (relative) away
    #: from the *nominal* beacon period — a protocol constant the
    #: diagnosis tool knows, so a fault can never contaminate the
    #: reference the way it could a learned baseline.  Beacon jitter is
    #: ±10 % uniform (σ ≈ 5.8 %): 32 samples put the SE near 1 %, the
    #: 4-SE gate near 4 %.  A sliding window is re-tested every poll on
    #: every link, so 4-σ excursions *will* eventually occur; the
    #: absolute gate is what rejects them — 4.5 % puts the detectable
    #: skew floor near 5 %, well under the 7.4 % signature of the
    #: canonical 8 % clock-drift fault.
    drift_window: int = 32
    #: Learned-cadence window (feeds silence detection only).
    baseline_intervals: int = 10
    drift_z: float = 4.0
    drift_rel: float = 0.045


class _LinkState:
    """Per directed link (origin -> receiver): all detector state."""

    __slots__ = ("lqi", "rssi", "loss", "loss_window", "intervals",
                 "baseline_window", "baseline_interval", "last_seq",
                 "last_heard", "beacons", "channel", "nominal")

    def __init__(self, t: OnlineThresholds, nominal_interval: float):
        self.lqi = EwmaDetector(
            alpha=t.quality_alpha, k_on=t.quality_k_on, k_off=t.quality_k_off,
            hysteresis=t.quality_hysteresis, min_samples=t.min_samples,
            sigma_floor=t.lqi_sigma_floor, direction="down")
        self.rssi = EwmaDetector(
            alpha=t.quality_alpha, k_on=t.quality_k_on, k_off=t.quality_k_off,
            hysteresis=t.quality_hysteresis, min_samples=t.min_samples,
            sigma_floor=t.rssi_sigma_floor, direction="down")
        self.loss = CusumDetector(target=0.0, slack=t.loss_slack,
                                  threshold=t.loss_threshold)
        self.loss_window = WindowStats(t.window)
        self.intervals = WindowStats(t.drift_window)
        self.baseline_window = WindowStats(t.baseline_intervals)
        self.baseline_interval: tuple[float, float] | None = None
        self.last_seq: int | None = None
        self.last_heard = 0.0
        self.beacons = 0
        self.channel: int | None = None
        self.nominal = float(nominal_interval)

    def observe(self, t: OnlineThresholds, *, seq: int, lqi: float,
                rssi: float, channel: int | None, now: float) -> None:
        if channel is not None:
            self.channel = channel
        self.beacons += 1
        if self.last_seq is not None:
            gap = (seq - self.last_seq) & 0xFFFF
            if 0 < gap <= t.max_gap:
                for _ in range(gap - 1):
                    self.loss.update(1.0)
                    self.loss_window.push(1.0)
                self.loss.update(0.0)
                self.loss_window.push(0.0)
                interval = (now - self.last_heard) / gap
                self.intervals.push(interval)
                if self.baseline_interval is None:
                    self.baseline_window.push(interval)
                    if self.baseline_window.full:
                        self.baseline_interval = (
                            self.baseline_window.mean,
                            self.baseline_window.std,
                        )
            # gap == 0 (duplicate) or a huge gap (sequence restart after
            # a reboot): re-anchor without charging phantom losses.
        self.last_seq = seq
        self.last_heard = now
        self.lqi.update(lqi)
        self.rssi.update(rssi)

    def anchor(self, *, seq: int, channel: int | None, now: float) -> None:
        """Track sequence/time continuity without feeding detectors.

        Used across masked windows (:meth:`OnlineMonitor.pause`): the
        beacon is acknowledged — so the masked traffic never shows up
        later as a phantom sequence gap or a silence — but no loss,
        quality or interval sample is charged.
        """
        if channel is not None:
            self.channel = channel
        self.beacons += 1
        self.last_seq = seq
        self.last_heard = now

    def expected_interval(self) -> float:
        if self.baseline_interval is not None and self.baseline_interval[0] > 0:
            return self.baseline_interval[0]
        return self.nominal

    def silent_for(self, now: float, floor: float = -math.inf) -> float:
        """Seconds since last heard, not counting time before ``floor``
        (the end of the last masked window — silence accrued while the
        listener's own probes were jamming the channel proves nothing).
        """
        return now - max(self.last_heard, floor)

    def is_silent(self, t: OnlineThresholds, now: float,
                  floor: float = -math.inf) -> bool:
        return (self.beacons >= t.min_samples
                and self.silent_for(now, floor)
                > t.silence_factor * self.expected_interval())

    def drift_ratio(self, t: OnlineThresholds) -> float | None:
        """Relative inter-arrival shift vs. the nominal period, or None.

        The reference is the *configured* beacon period (a protocol
        constant, immune to contamination by the fault being hunted),
        and the shift must clear both a statistical gate (``drift_z``
        standard errors of the recent-window mean) and an absolute one
        (``drift_rel``), so ordinary beacon jitter never qualifies.
        """
        if self.nominal <= 0 or not self.intervals.full:
            return None
        se = max(math.sqrt(self.intervals.variance / self.intervals.count),
                 1e-6 * self.nominal)
        shift = self.intervals.mean - self.nominal
        if (abs(shift) >= t.drift_z * se
                and abs(shift) / self.nominal >= t.drift_rel):
            return shift / self.nominal
        return None


class OnlineMonitor:
    """Sliding-window detectors over the beacon stream -> Findings.

    Construction is inert (no sim access); :meth:`attach` registers a
    read-only per-beacon tap on the testbed's shared monitor, and
    :meth:`poll` reduces the accumulated per-link state to canonical
    :class:`~repro.diag.findings.Finding`s — the passive counterpart of
    ``DiagnosisEngine.run``, with ``probes_run == 0`` always.

    ``testbed=None`` builds a detached monitor for synthetic-series
    tests: feed :meth:`observe_beacon` directly and :meth:`poll` with an
    explicit ``now``.

    Memory is O(tracked links), each link O(1) (fixed ring buffers).
    """

    def __init__(self, testbed: "Testbed | None" = None, *,
                 thresholds: OnlineThresholds | None = None,
                 exclude: _t.Collection[int] = (),
                 nominal_interval: float = DEFAULT_BEACON_INTERVAL):
        self.testbed = testbed
        self.thresholds = thresholds or OnlineThresholds()
        self.exclude = frozenset(int(n) for n in exclude)
        self.nominal_interval = float(nominal_interval)
        self._monitor = testbed.monitor if testbed is not None else None
        self._links: dict[tuple[int, int], _LinkState] = {}
        self._attached = False
        self._paused = False
        self._anchor_floor = -math.inf
        self._pause_idx = 0
        self._c_beacons = None
        self._last_subjects: set[tuple] = set()
        self.polls = 0
        self.beacons_seen = 0
        self.last_findings: list[Finding] = []
        self.last_polled_at: float | None = None

    # -- the tap ---------------------------------------------------------

    def attach(self) -> "OnlineMonitor":
        """Start listening (idempotent).  Requires a testbed."""
        if self._monitor is None:
            raise ValueError("cannot attach a detached OnlineMonitor "
                             "(constructed without a testbed)")
        if not self._attached:
            self._monitor.add_beacon_tap(self._tap)
            self._attached = True
        return self

    def detach(self) -> None:
        """Stop listening (accumulated state is kept)."""
        if self._attached and self._monitor is not None:
            self._monitor.remove_beacon_tap(self._tap)
        self._attached = False

    @property
    def attached(self) -> bool:
        return self._attached

    def pause(self) -> None:
        """Mask the detectors (sequence continuity is still tracked).

        The hybrid assessor pauses the listener around its own probe
        bursts: a few hundred probe packets congest the channel, and
        the delayed and collided beacons would otherwise read as loss
        or interference the network did not actually have.  While
        paused, received beacons only :meth:`~_LinkState.anchor` — and
        so does the *first* beacon per link after :meth:`resume`, whose
        gap spans the masked window.  Silence likewise restarts from the
        mask's end: a link quiet through the mask may simply have lost
        its beacons to the probe congestion, so it must re-earn its
        silence verdict afterwards (a genuinely dead node does, a few
        beacon intervals later).
        """
        if not self._paused:
            self._paused = True
            self._pause_idx = (len(self._monitor.packets)
                               if self._monitor is not None else 0)

    def resume(self, now: float | None = None) -> None:
        """Unmask the detectors (see :meth:`pause`).

        If *no probe packet actually got on the air* during the masked
        window, the mask is void: whatever kept beacons off the channel
        was not our doing (e.g. an interference burst that made CCA
        read busy fleet-wide), so the accrued silence is genuine
        evidence and keeps aging.
        """
        if not self._paused:
            return
        self._paused = False
        if self._monitor is not None and not any(
                r.kind in PROBE_PACKET_KINDS
                for r in self._monitor.packets[self._pause_idx:]):
            return
        if now is None:
            if self.testbed is None:
                raise ValueError("detached OnlineMonitor needs an "
                                 "explicit now=")
            now = self.testbed.env.now
        self._anchor_floor = float(now)

    @property
    def paused(self) -> bool:
        return self._paused

    def _tap(self, receiver: int, origin: int, seq: int,
             arrival: "FrameArrival") -> None:
        if receiver in self.exclude or origin in self.exclude:
            return
        self.observe_beacon(receiver, origin, seq=seq,
                            lqi=float(arrival.lqi), rssi=float(arrival.rssi),
                            channel=arrival.channel, now=arrival.time)

    # -- ingestion -------------------------------------------------------

    def observe_beacon(self, receiver: int, origin: int, *, seq: int,
                       lqi: float, rssi: float, channel: int | None = None,
                       now: float) -> None:
        """Feed one received beacon (the tap's entry point; synthetic
        tests call it directly)."""
        key = (int(origin), int(receiver))
        state = self._links.get(key)
        if state is None:
            state = self._links[key] = _LinkState(self.thresholds,
                                                  self.nominal_interval)
        if self._paused or state.last_heard < self._anchor_floor:
            state.anchor(seq=int(seq), channel=channel, now=float(now))
        else:
            state.observe(self.thresholds, seq=int(seq), lqi=float(lqi),
                          rssi=float(rssi), channel=channel, now=float(now))
        self.beacons_seen += 1
        if self._monitor is not None:
            c = self._c_beacons
            if c is None:
                c = self._c_beacons = self._monitor.counter_obj(
                    "diag.online.beacons")
            c.value += 1

    # -- reduction -------------------------------------------------------

    @property
    def links_tracked(self) -> int:
        return len(self._links)

    def poll(self, now: float | None = None) -> list[Finding]:
        """Reduce accumulated link state to findings, as of ``now``.

        Pure read: never advances the sim or consumes RNG.  Counter
        ``diag.online.finding.<kind>`` increments only for subjects not
        already named at the previous poll, so long-lived faults count
        once, not once per poll.
        """
        if now is None:
            if self.testbed is None:
                raise ValueError("detached OnlineMonitor needs an "
                                 "explicit now=")
            now = self.testbed.env.now
        t = self.thresholds
        ordered = sorted(self._links)
        silent: set[tuple[int, int]] = set()
        lossy: set[tuple[int, int]] = set()
        link_findings: dict[tuple[int, int], Finding] = {}
        for key in ordered:
            st = self._links[key]
            if st.beacons < t.min_samples:
                continue
            if st.is_silent(t, now, self._anchor_floor):
                silent.add(key)
                gone = st.silent_for(now, self._anchor_floor)
                missed = gone / st.expected_interval()
                link_findings[key] = Finding(
                    kind="broken_link", link=key,
                    confidence=min(0.95, 0.5 + 0.05
                                   * (missed - t.silence_factor)),
                    summary=(f"no beacons for {gone:.1f} s "
                             f"(~{missed:.0f} expected)"),
                    evidence={"silent_s": gone,
                              "expected_interval_s": st.expected_interval(),
                              "beacons_seen": st.beacons},
                )
            elif st.loss.fired:
                lossy.add(key)
                level = st.loss_window.mean
                kind = ("broken_link" if level >= t.broken_loss
                        else "lossy_link")
                link_findings[key] = Finding(
                    kind=kind, link=key,
                    confidence=max(st.loss.confidence,
                                   min(1.0, level / t.broken_loss)),
                    summary=(f"{level:.0%} of expected beacons missing "
                             f"(seq gaps)"),
                    evidence={"recent_loss": level,
                              "cusum": st.loss.statistic,
                              "beacons_seen": st.beacons},
                )
            elif st.lqi.fired or st.rssi.fired:
                if st.lqi.fired and (not st.rssi.fired
                                     or st.lqi.shift >= st.rssi.shift):
                    det, metric = st.lqi, "lqi"
                else:
                    det, metric = st.rssi, "rssi"
                link_findings[key] = Finding(
                    kind="lossy_link", link=key, confidence=det.confidence,
                    summary=(f"beacon {metric} fell {det.shift:.1f} sigma "
                             f"below its baseline"),
                    evidence={"metric": metric, "baseline": det.mean,
                              "shift_sigma": det.shift,
                              "beacons_seen": st.beacons},
                )
        findings: list[Finding] = []
        explained: set[tuple[int, int]] = set()
        affected = silent | lossy
        by_channel: dict[int, list[tuple[int, int]]] = {}
        for key in sorted(affected):
            ch = self._links[key].channel
            if ch is not None:
                by_channel.setdefault(ch, []).append(key)
        for ch in sorted(by_channel):
            group = by_channel[ch]
            origins = {a for a, _ in group}
            receivers = {b for _, b in group}
            on_channel = sum(
                1 for st in self._links.values()
                if st.channel == ch and st.beacons >= t.min_samples)
            if (len(group) < t.interference_min_links
                    or len(origins) < 2 or len(receivers) < 2
                    or len(group) < t.interference_min_fraction
                    * on_channel):
                continue
            if any(all(n in key for key in group)
                   for n in origins | receivers):
                continue  # one common endpoint: a node problem, not RF
            findings.append(Finding(
                kind="interference", channel=ch, node=min(receivers),
                confidence=min(0.95, 0.4 + 0.55 * len(group)
                               / max(1, on_channel)),
                summary=(f"{len(group)}/{on_channel} links on channel "
                         f"{ch} degraded simultaneously"),
                evidence={"links_degraded": len(group),
                          "links_on_channel": on_channel,
                          "origins": sorted(origins)},
            ))
            explained.update(group)
        dead: set[int] = set()
        out_links: dict[int, list[tuple[int, int]]] = {}
        for key in ordered:
            if self._links[key].beacons >= t.min_samples:
                out_links.setdefault(key[0], []).append(key)
        for origin in sorted(out_links):
            links = out_links[origin]
            if (all(key in silent for key in links)
                    and not any(key in explained for key in links)):
                dead.add(origin)
                worst = max(
                    self._links[key].silent_for(now, self._anchor_floor)
                    / self._links[key].expected_interval()
                    for key in links)
                findings.append(Finding(
                    kind="dead_node", node=origin,
                    confidence=min(0.95, 0.5 + 0.05
                                   * (worst - t.silence_factor)),
                    summary=(f"beacons stopped at all {len(links)} "
                             f"receiver(s) that were hearing it"),
                    evidence={"receivers": sorted(b for _, b in links),
                              "missed_intervals": worst},
                ))
        surviving: dict[tuple[int, int], Finding] = {}
        for key in ordered:
            finding = link_findings.get(key)
            if finding is None or key in explained:
                continue
            if key[0] in dead or key[1] in dead:
                continue  # symptom of the dead node, already named
            surviving[key] = finding
        for key in sorted(surviving):
            finding = surviving[key]
            mirror = surviving.get((key[1], key[0]))
            if mirror is not None:
                # Both directions degraded: one undirected verdict on
                # the canonical (low, high) pair, at the worse severity.
                if key[0] > key[1]:
                    continue
                if (FINDING_KINDS.index(mirror.kind)
                        < FINDING_KINDS.index(finding.kind)
                        or (mirror.kind == finding.kind
                            and mirror.confidence > finding.confidence)):
                    finding = Finding(
                        kind=mirror.kind, link=key,
                        confidence=mirror.confidence,
                        summary=mirror.summary, evidence=mirror.evidence)
            findings.append(finding)
        drift_by_origin: dict[int, list[float]] = {}
        for key in ordered:
            if key[0] in dead or key in explained:
                continue
            ratio = self._links[key].drift_ratio(t)
            if ratio is not None:
                drift_by_origin.setdefault(key[0], []).append(ratio)
        for origin in sorted(drift_by_origin):
            ratios = drift_by_origin[origin]
            mean_ratio = sum(ratios) / len(ratios)
            findings.append(Finding(
                kind="hotspot", node=origin,
                confidence=min(0.95, 0.5 + 5.0 * abs(mean_ratio)),
                summary=(f"beacon interval shifted {mean_ratio:+.1%} vs "
                         f"baseline - local clock drifting"),
                evidence={"interval_shift": mean_ratio,
                          "links_agreeing": len(ratios)},
            ))
        findings.sort(key=Finding.sort_key)
        self._account(findings, now)
        return findings

    def _account(self, findings: list[Finding], now: float) -> None:
        self.polls += 1
        self.last_findings = findings
        self.last_polled_at = now
        if self._monitor is None:
            subjects = {(f.kind, f.node, f.link, f.channel)
                        for f in findings}
            self._last_subjects = subjects
            return
        self._monitor.count("diag.online.polls")
        subjects = set()
        tracer = self.testbed.tracer if self.testbed is not None else None
        for f in findings:
            subject = (f.kind, f.node, f.link, f.channel)
            subjects.add(subject)
            if subject in self._last_subjects:
                continue
            self._monitor.count("diag.online.findings")
            self._monitor.count(f"diag.online.finding.{f.kind}")
            if tracer is not None and tracer.enabled:
                tracer.emit("diag.online.finding", now,
                            node=f.node, kind_label=f.kind,
                            subject=f.subject,
                            confidence=round(f.confidence, 3))
        self._last_subjects = subjects

    def report(self, now: float | None = None) -> DiagnosisReport:
        """A :class:`DiagnosisReport` from the current state: the
        passive analogue of ``DiagnosisEngine.run`` (zero probes)."""
        findings = self.poll(now)
        at = self.last_polled_at if self.last_polled_at is not None else 0.0
        return DiagnosisReport(findings=findings, started_at=at,
                               finished_at=at, probes_run=0,
                               probes_failed=0)
