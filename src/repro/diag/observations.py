"""Typed observations: what one probe actually measured.

A probe run ends in an *observation* — a plain, comparable record of
what the toolkit learned about one link, path, node or channel.  The
observation layer deliberately imports nothing from the rest of the
package: findings reduction and the legacy ``repro.core.diagnosis``
wrappers both build on these records, so they must stay dependency-free.

:class:`LinkReport` and :class:`Hotspot` began life in
``repro.core.diagnosis`` and keep their exact public fields; the legacy
module re-exports them, so ``from repro.core.diagnosis import
LinkReport`` keeps working.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

__all__ = ["LinkReport", "Hotspot", "ChannelReading"]


@dataclass(frozen=True)
class LinkReport:
    """What probing one directed neighbor link revealed."""

    src: int
    dst: int
    sent: int
    received: int
    mean_rtt_ms: float | None
    lqi_forward: float | None    # remote-measured (our packets arriving)
    lqi_backward: float | None   # locally measured (their replies)
    rssi_forward: float | None
    rssi_backward: float | None

    @property
    def loss_ratio(self) -> float:
        """Probe round-trip loss fraction.

        ``sent == 0`` returns the sentinel 1.0 for backward
        compatibility, but it means *no data*, not total loss — check
        :attr:`has_data` (or the ``no_data`` classification label)
        before treating the value as a measurement.
        """
        return 1.0 - self.received / self.sent if self.sent else 1.0

    @property
    def has_data(self) -> bool:
        """Whether any probe was actually sent over this link.

        A report with ``sent == 0`` carries no evidence either way —
        the command never ran (node down, parameters rejected) — and
        must not be classified as broken.
        """
        return self.sent > 0

    @classmethod
    def from_ping_result(cls, src: int, dst: int, result) -> "LinkReport":
        """Reduce a :class:`~repro.core.results.PingResult` to a report."""
        if not result.rounds:
            return cls(src=src, dst=dst, sent=result.sent, received=0,
                       mean_rtt_ms=None, lqi_forward=None,
                       lqi_backward=None, rssi_forward=None,
                       rssi_backward=None)
        links = [r.link for r in result.rounds]
        return cls(
            src=src, dst=dst, sent=result.sent, received=result.received,
            mean_rtt_ms=result.mean_rtt_ms,
            lqi_forward=statistics.fmean(l.lqi_forward for l in links),
            lqi_backward=statistics.fmean(l.lqi_backward for l in links),
            rssi_forward=statistics.fmean(l.rssi_forward for l in links),
            rssi_backward=statistics.fmean(l.rssi_backward for l in links),
        )

    @classmethod
    def no_reply(cls, src: int, dst: int, sent: int) -> "LinkReport":
        """The report of a probe whose command produced nothing."""
        return cls(src=src, dst=dst, sent=sent, received=0,
                   mean_rtt_ms=None, lqi_forward=None, lqi_backward=None,
                   rssi_forward=None, rssi_backward=None)


@dataclass(frozen=True)
class Hotspot:
    """A node whose inbound hops show congestion indicators."""

    node_id: int
    mean_hop_rtt_ms: float
    max_queue: int
    samples: int
    score: float


@dataclass(frozen=True)
class ChannelReading:
    """Peak energy-detect RSSI observed on one channel during a scan."""

    node: int
    channel: int
    reading: int
