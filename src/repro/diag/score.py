"""Scoring diagnosis output against ground-truth fault plans.

In the simulator — unlike in the field — we *know* what is wrong,
because we injected it (:mod:`repro.faults`).  That turns diagnosis
quality into a measurable quantity: treat each active
:class:`~repro.faults.spec.FaultSpec` as a ground-truth positive, each
:class:`~repro.diag.findings.Finding` as a prediction, and compute
precision/recall over a greedy one-to-one matching.  The
``diagnosis_sweep`` campaign scenario grids over exactly this.

A finding matches a spec when it names the fault's footprint:

===================  ====================================================
fault kind           matching findings
===================  ====================================================
node_crash           ``dead_node`` naming a crashed node
node_reboot          ``dead_node`` naming a rebooting node (probed
                     during the downtime window)
link_degrade         ``broken_link`` / ``lossy_link`` /
                     ``asymmetric_link`` on the degraded pair (either
                     direction unless the fault was ``directed``)
interference_burst   ``interference`` on the jammed channel
packet_corrupt       ``lossy_link`` / ``broken_link`` touching a scoped
                     node (any link when the fault is unscoped)
queue_saturate       ``hotspot`` naming a saturated node, or a
                     ``lossy_link``/``broken_link`` touching one
clock_drift          ``hotspot`` — a drifted clock corrupts every RTT
                     the node measures, surfacing as spurious
                     congestion along paths it probes
===================  ====================================================

This module is pure: it never imports the simulator, only reads the
spec/finding data classes handed to it.
"""

from __future__ import annotations

import typing as _t

from repro.diag.findings import Finding

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.spec import FaultPlan, FaultSpec

__all__ = ["spec_matches_finding", "active_specs", "score_findings"]

_LINK_KINDS = ("broken_link", "lossy_link", "asymmetric_link")


def _touches(finding: Finding, nodes: tuple[int, ...]) -> bool:
    """Does the finding's subject involve any of ``nodes``?"""
    if finding.node is not None and finding.node in nodes:
        return True
    if finding.link is not None and any(n in nodes for n in finding.link):
        return True
    return False


def spec_matches_finding(spec: "FaultSpec", finding: Finding) -> bool:
    """Whether ``finding`` correctly names the fault ``spec`` injected."""
    kind = spec.kind
    if kind in ("node_crash", "node_reboot"):
        return (finding.kind == "dead_node"
                and finding.node in spec.nodes)
    if kind == "link_degrade":
        if finding.kind not in _LINK_KINDS or finding.link is None:
            return False
        if finding.link == spec.link:
            return True
        return not spec.directed and finding.link == spec.link[::-1]
    if kind == "interference_burst":
        return (finding.kind == "interference"
                and finding.channel == spec.channel)
    if kind == "packet_corrupt":
        if finding.kind not in ("lossy_link", "broken_link"):
            return False
        return not spec.nodes or _touches(finding, spec.nodes)
    if kind == "queue_saturate":
        if finding.kind == "hotspot":
            return finding.node in spec.nodes
        if finding.kind in ("lossy_link", "broken_link"):
            return _touches(finding, spec.nodes)
        return False
    if kind == "clock_drift":
        return finding.kind == "hotspot"
    return False


def active_specs(plan: "FaultPlan", at: float | None = None,
                 ) -> list["FaultSpec"]:
    """The plan's specs that are in force at time ``at``.

    ``at=None`` counts every spec of an enabled plan.  A spec counts
    when it has activated (``spec.at <= at``) and has not yet expired
    (open-ended faults never expire).
    """
    if not plan.is_active:
        return []
    if at is None:
        return list(plan.specs)
    return [s for s in plan.specs
            if s.at <= at and (s.ends_at is None or s.ends_at > at)]


def score_findings(findings: _t.Iterable[Finding], plan: "FaultPlan", *,
                   at: float | None = None) -> dict:
    """Precision/recall of ``findings`` against the plan's ground truth.

    Greedy one-to-one matching: each active spec claims the first
    still-unclaimed finding that names it.  Unclaimed specs are false
    negatives; unclaimed findings are false positives.  ``at`` filters
    the ground truth to faults active when diagnosis ran, so expired
    transients are not demanded of the engine.
    """
    findings = list(findings)
    truth = active_specs(plan, at)
    claimed: set[int] = set()
    matches: list[dict] = []
    for spec in truth:
        for idx, finding in enumerate(findings):
            if idx in claimed:
                continue
            if spec_matches_finding(spec, finding):
                claimed.add(idx)
                matches.append({"fault": spec.kind,
                                "finding": finding.to_dict()})
                break
    tp = len(claimed)
    fp = len(findings) - tp
    fn = len(truth) - tp
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "precision": tp / (tp + fp) if (tp + fp) else 1.0,
        "recall": tp / (tp + fn) if (tp + fn) else 1.0,
        "n_findings": len(findings),
        "n_faults": len(truth),
        "matches": matches,
    }
