"""The unified finding schema: named verdicts with evidence.

The paper's deliverable is not a table of RTTs — it is an answer to
"what is wrong with my network?".  A :class:`Finding` is one such
answer: a *kind* drawn from a closed vocabulary (``broken_link``,
``asymmetric_link``, ``lossy_link``, ``hotspot``, ``interference``,
``dead_node``), the subject it names (a link, a node, a channel), a
confidence in [0, 1], and the evidence that produced it.

Findings serialize to **canonical JSON** — sorted keys, no whitespace,
``None`` fields omitted — so a diagnosis run under a fixed seed yields
byte-identical output, campaigns can hash reports into digests, and
golden fixtures can pin them.  This module imports nothing from
``repro.core``; it is pure data + rendering.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field

__all__ = ["FINDING_KINDS", "Finding", "DiagnosisReport"]

#: The closed verdict vocabulary, in severity order (worst first).
FINDING_KINDS = (
    "dead_node",
    "broken_link",
    "asymmetric_link",
    "lossy_link",
    "hotspot",
    "interference",
)


def _jsonable(value):
    """Evidence values → JSON-stable primitives (floats rounded)."""
    if isinstance(value, float):
        return round(value, 3)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


@dataclass(frozen=True)
class Finding:
    """One named verdict about the network, with its evidence.

    Exactly the subject fields that apply are set: ``link`` for the
    link kinds, ``node`` for ``dead_node``/``hotspot``, ``channel``
    (plus ``node``) for ``interference``.
    """

    kind: str
    node: int | None = None
    link: tuple[int, int] | None = None
    channel: int | None = None
    confidence: float = 1.0
    summary: str = ""
    evidence: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FINDING_KINDS:
            raise ValueError(
                f"unknown finding kind {self.kind!r}; "
                f"expected one of {FINDING_KINDS}"
            )
        if self.link is not None:
            object.__setattr__(self, "link", tuple(self.link))

    @property
    def subject(self) -> str:
        """Human-readable name of what the finding is about."""
        if self.link is not None:
            return f"link {self.link[0]}->{self.link[1]}"
        if self.channel is not None:
            if self.node is not None:
                return f"channel {self.channel} at node {self.node}"
            return f"channel {self.channel}"
        return f"node {self.node}"

    def sort_key(self) -> tuple:
        """Canonical report order: severity, then subject."""
        return (
            FINDING_KINDS.index(self.kind),
            self.node if self.node is not None else -1,
            self.link if self.link is not None else (),
            self.channel if self.channel is not None else -1,
        )

    def to_dict(self) -> dict:
        """Plain-dict form with ``None`` subjects omitted."""
        out: dict = {"kind": self.kind,
                     "confidence": round(self.confidence, 3)}
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = list(self.link)
        if self.channel is not None:
            out["channel"] = self.channel
        if self.summary:
            out["summary"] = self.summary
        if self.evidence:
            out["evidence"] = _jsonable(self.evidence)
        return out

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "Finding":
        link = data.get("link")
        return cls(
            kind=data["kind"],
            node=data.get("node"),
            link=tuple(link) if link is not None else None,
            channel=data.get("channel"),
            confidence=data.get("confidence", 1.0),
            summary=data.get("summary", ""),
            evidence=dict(data.get("evidence", {})),
        )

    def render(self) -> str:
        """One verdict line, e.g. ``[broken_link] link 2->3 (0.97): …``."""
        head = f"[{self.kind}] {self.subject} ({self.confidence:.2f})"
        return f"{head}: {self.summary}" if self.summary else head


@dataclass
class DiagnosisReport:
    """Everything one diagnosis run concluded, plus how it got there.

    ``findings`` is kept in canonical order (severity, then subject);
    ``path_stories`` holds the hop-by-hop narratives of any path probes
    the plan ran, so :meth:`explain` can tell the same story the
    ``repro.obs`` tracer records as ``diag.*`` events.
    """

    findings: list[Finding] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    probes_run: int = 0
    probes_failed: int = 0
    path_stories: list[str] = field(default_factory=list)

    def __iter__(self):
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def of_kind(self, kind: str) -> list[Finding]:
        """Findings of one kind, in canonical order."""
        if kind not in FINDING_KINDS:
            raise ValueError(f"unknown finding kind {kind!r}")
        return [f for f in self.findings if f.kind == kind]

    @property
    def healthy(self) -> bool:
        """No finding means no diagnosed problem."""
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "started_at": round(self.started_at, 6),
            "finished_at": round(self.finished_at, 6),
            "probes_run": self.probes_run,
            "probes_failed": self.probes_failed,
        }

    def to_json(self) -> str:
        """Canonical JSON of the whole report."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def explain(self) -> str:
        """Render the report as the story a field engineer would tell.

        Verdicts first (worst first), each with its evidence, then the
        hop-by-hop path narratives that back them up.
        """
        lines: list[str] = []
        if self.healthy:
            lines.append("No problems diagnosed: all probed subjects "
                         "look healthy.")
        else:
            lines.append(f"Diagnosed {len(self.findings)} problem(s):")
            for f in self.findings:
                lines.append(f"  {f.render()}")
                for key in sorted(f.evidence):
                    lines.append(f"      {key} = {_jsonable(f.evidence[key])}")
        lines.append(
            f"Ran {self.probes_run} probe(s), {self.probes_failed} "
            f"failed, over {self.finished_at - self.started_at:.1f} s "
            f"of network time."
        )
        for story in self.path_stories:
            lines.append("")
            lines.append(story)
        return "\n".join(lines)
