"""Deterministic fault injection (``repro.faults``).

Declarative, seed-deterministic fault plans — dead nodes, degraded
links, interference bursts, corrupted packets, saturated queues,
drifting clocks — compiled into simulator events.  See
``docs/FAULTS.md`` for the spec schema and the determinism contract.
"""

from repro.faults.engine import FaultInjector, install_faults
from repro.faults.spec import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "install_faults",
]
