"""The fault engine: compiles a :class:`FaultPlan` into simulator events.

:func:`install_faults` walks a plan and schedules each spec's
activation/deactivation through :meth:`Environment.call_at`, so faults
interleave with traffic in ordinary event order.  The resulting
:class:`FaultInjector` is also the medium's live fault interface — the
radio hot path queries it for the injected noise floor and for
packet-corruption rolls.

Determinism contract (the one the chaos property tests assert):

* An inert plan (``enabled=False`` or no specs) installs **nothing**:
  no events, no RNG stream, no medium hook — runs are byte-identical
  to runs with no plan at all.
* All stochastic faults draw from the dedicated ``faults`` stream, so
  an active plan never perturbs the draw order of any other subsystem;
  the same seed and plan reproduce the same injured world bit-for-bit.
"""

from __future__ import annotations

import typing as _t

from repro.faults.spec import FaultPlan, FaultSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.testbed import Testbed

__all__ = ["FaultInjector", "install_faults"]

#: Number of discrete steps a ramped ``link_degrade`` climbs in.
RAMP_STEPS = 8


class FaultInjector:
    """Live fault state for one run, installed from a plan.

    Construction schedules every activation/deactivation; after that the
    injector is passive — the medium pulls noise offsets and corruption
    rolls from it, and the scheduled callbacks mutate node/link/queue
    state at their appointed times.
    """

    def __init__(self, testbed: "Testbed", plan: FaultPlan):
        self.testbed = testbed
        self.plan = plan
        self.env = testbed.env
        self.monitor = testbed.monitor
        #: Dedicated stream: stochastic faults draw only from here.
        self.rng = testbed.rng.stream("faults")
        #: Injected noise-floor raise per channel (dB, additive).
        self._noise: dict[int, float] = {}
        #: Active packet_corrupt specs: (probability, scope-or-None).
        self._corrupters: list[tuple[float, frozenset[int] | None]] = []
        #: Saved queue capacities, restored on deactivation.
        self._saved_capacity: dict[int, int] = {}
        #: True while any packet_corrupt spec is active (medium fast-path
        #: gate: one attribute read when no corruption is in flight).
        self.corrupt_active = False
        #: Activation counter per kind, for tests and reports.
        self.activations: dict[str, int] = {}
        for index, spec in enumerate(plan.specs):
            self._compile(index, spec)

    # -- medium interface ---------------------------------------------------

    def noise_offset_dbm(self, channel: int) -> float:
        """Injected noise-floor raise on ``channel`` (0.0 when quiet)."""
        return self._noise.get(channel, 0.0) if self._noise else 0.0

    def corrupt_roll(self, receiver_id: int) -> bool:
        """Decide whether one successful reception gets corrupted.

        One uniform draw per active corrupter that scopes the receiver —
        all from the faults stream, so the medium's own streams see the
        same sequence of draws they would without the plan.
        """
        for probability, scope in self._corrupters:
            if scope is not None and receiver_id not in scope:
                continue
            if self.rng.random() < probability:
                return True
        return False

    def corrupt_payload(self, payload: bytes) -> bytes:
        """A CRC-breaking copy of ``payload`` (1-3 bit flips)."""
        data = bytearray(payload)
        flips = int(self.rng.integers(1, 4))
        for _ in range(flips):
            idx = int(self.rng.integers(0, len(data)))
            bit = int(self.rng.integers(0, 8))
            data[idx] ^= 1 << bit
        return bytes(data)

    # -- compilation --------------------------------------------------------

    def _compile(self, index: int, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind in ("node_crash", "node_reboot"):
            self._at(spec.at, index, spec, "activate",
                     lambda s=spec: self._crash(s))
            ends = spec.ends_at
            if ends is not None:
                self._at(ends, index, spec, "deactivate",
                         lambda s=spec: self._recover(s))
        elif kind == "link_degrade":
            if spec.ramp_s > 0:
                step_db = spec.loss_db / RAMP_STEPS
                step_s = spec.ramp_s / RAMP_STEPS
                for k in range(1, RAMP_STEPS + 1):
                    label = "activate" if k == RAMP_STEPS else "ramp"
                    self._at(spec.at + k * step_s, index, spec, label,
                             lambda s=spec, d=step_db:
                             self._shift_link(s, d))
            else:
                self._at(spec.at, index, spec, "activate",
                         lambda s=spec: self._shift_link(s, s.loss_db))
            if spec.ends_at is not None:
                self._at(spec.ends_at, index, spec, "deactivate",
                         lambda s=spec: self._shift_link(s, -s.loss_db))
        elif kind == "interference_burst":
            self._at(spec.at, index, spec, "activate",
                     lambda s=spec: self._shift_noise(s, s.loss_db))
            if spec.ends_at is not None:
                self._at(spec.ends_at, index, spec, "deactivate",
                         lambda s=spec: self._shift_noise(s, -s.loss_db))
        elif kind == "packet_corrupt":
            self._at(spec.at, index, spec, "activate",
                     lambda s=spec: self._corrupt_on(s))
            if spec.ends_at is not None:
                self._at(spec.ends_at, index, spec, "deactivate",
                         lambda s=spec: self._corrupt_off(s))
        elif kind == "queue_saturate":
            self._at(spec.at, index, spec, "activate",
                     lambda s=spec: self._clamp_queues(s))
            if spec.ends_at is not None:
                self._at(spec.ends_at, index, spec, "deactivate",
                         lambda s=spec: self._restore_queues(s))
        elif kind == "clock_drift":
            self._at(spec.at, index, spec, "activate",
                     lambda s=spec: self._set_drift(s, 1.0 + s.drift))
            if spec.ends_at is not None:
                self._at(spec.ends_at, index, spec, "deactivate",
                         lambda s=spec: self._set_drift(s, 1.0))

    def _at(self, when: float, index: int, spec: FaultSpec, edge: str,
            fn: _t.Callable[[], None]) -> None:
        def fire() -> None:
            fn()
            self._note(index, spec, edge)
        self.env.call_at(when, fire)

    def _note(self, index: int, spec: FaultSpec, edge: str) -> None:
        monitor = self.monitor
        if edge in ("activate", "ramp"):
            if edge == "activate":
                self.activations[spec.kind] = (
                    self.activations.get(spec.kind, 0) + 1
                )
            monitor.count("faults.activations")
            monitor.count(f"faults.{spec.kind}.activations")
        else:
            monitor.count("faults.deactivations")
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                f"fault.{edge}", self.env.now, spec=index,
                fault_kind=spec.kind,
                nodes=list(spec.nodes) or None,
                link=list(spec.link) if spec.link else None,
                channel=spec.channel,
            )

    # -- per-kind actions ----------------------------------------------------

    def _crash(self, spec: FaultSpec) -> None:
        for node_id in spec.nodes:
            self.testbed.node(node_id).fail()

    def _recover(self, spec: FaultSpec) -> None:
        for node_id in spec.nodes:
            self.testbed.node(node_id).recover()

    def _shift_link(self, spec: FaultSpec, delta_db: float) -> None:
        propagation = self.testbed.propagation
        a, b = spec.link  # type: ignore[misc]
        pairs = ((a, b),) if spec.directed else ((a, b), (b, a))
        for src, dst in pairs:
            current = propagation.link_penalty_db(src, dst)
            propagation.set_link_penalty_db(src, dst, current + delta_db)

    def _shift_noise(self, spec: FaultSpec, delta_db: float) -> None:
        channel = int(spec.channel)  # type: ignore[arg-type]
        value = self._noise.get(channel, 0.0) + delta_db
        if abs(value) < 1e-12:
            self._noise.pop(channel, None)
        else:
            self._noise[channel] = value

    def _corrupt_on(self, spec: FaultSpec) -> None:
        scope = frozenset(spec.nodes) if spec.nodes else None
        self._corrupters.append((spec.probability, scope))
        self.corrupt_active = True

    def _corrupt_off(self, spec: FaultSpec) -> None:
        scope = frozenset(spec.nodes) if spec.nodes else None
        self._corrupters.remove((spec.probability, scope))
        self.corrupt_active = bool(self._corrupters)

    def _clamp_queues(self, spec: FaultSpec) -> None:
        for node_id in spec.nodes:
            queue = self.testbed.node(node_id).mac.queue
            self._saved_capacity.setdefault(node_id, queue.capacity)
            queue.set_capacity(spec.capacity)  # type: ignore[arg-type]

    def _restore_queues(self, spec: FaultSpec) -> None:
        for node_id in spec.nodes:
            original = self._saved_capacity.pop(node_id, None)
            if original is not None:
                self.testbed.node(node_id).mac.queue.set_capacity(original)

    def _set_drift(self, spec: FaultSpec, rate: float) -> None:
        for node_id in spec.nodes:
            self.testbed.node(node_id).set_clock_rate(rate)


def install_faults(testbed: "Testbed",
                   plan: "FaultPlan | str | _t.Mapping | None",
                   ) -> FaultInjector | None:
    """Install ``plan`` on ``testbed``; returns the injector, or ``None``.

    Accepts any form :meth:`FaultPlan.from_param` does (a plan, its
    canonical JSON, a mapping, or ``None``).  Inert plans return ``None``
    and leave the world completely untouched — no events scheduled, no
    RNG stream created, no medium hook set.
    """
    plan = FaultPlan.from_param(plan)
    if not plan.is_active:
        return None
    injector = FaultInjector(testbed, plan)
    testbed.medium.faults = injector
    return injector
