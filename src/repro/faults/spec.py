"""Declarative fault plans: what breaks, where, when, and how badly.

LiteView exists to diagnose *broken* communication paths, so the
simulator must be able to produce broken paths on demand.  A
:class:`FaultPlan` is a list of timed, scoped :class:`FaultSpec`
entries — dead nodes, degraded links, interference bursts, corrupted
packets, saturated queues, drifting clocks — that the fault engine
(:mod:`repro.faults.engine`) compiles into simulator events.

Two contracts live here:

* **Determinism** — a plan is pure data.  All stochastic faults draw
  from one dedicated RNG stream derived from the run seed, so the same
  seed and plan reproduce the same injured world bit-for-bit, and a
  disabled or empty plan leaves every other stream untouched (golden
  fixtures unchanged).
* **Campaign integration** — a plan round-trips through canonical JSON
  (:meth:`FaultPlan.to_param` / :meth:`FaultPlan.from_param`), so whole
  chaos grids become ordinary campaign parameters: they shard, cache
  and derive per-run seeds like any other swept value.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field, fields

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: The fault vocabulary, in the order the docs describe them.
FAULT_KINDS = (
    "node_crash",          # radio off, queue lost; optional reboot after
    "node_reboot",         # short outage + kernel state cleared
    "link_degrade",        # extra path loss on a node pair, optionally ramped
    "interference_burst",  # per-channel noise-floor raise
    "packet_corrupt",      # probabilistic CRC-breaking bit flips at receivers
    "queue_saturate",      # clamp a node's MAC queue capacity
    "clock_drift",         # node-local clock rate error
)

#: Default downtime of a ``node_reboot`` when no duration is given.
DEFAULT_REBOOT_DOWNTIME = 1.0


@dataclass(frozen=True)
class FaultSpec:
    """One timed, scoped fault.

    ``kind`` selects the failure mode; the scope and magnitude fields
    that apply depend on it (see :meth:`validate`):

    ===================  =========================================
    kind                 required fields
    ===================  =========================================
    node_crash           ``nodes``; ``duration`` optional (reboot)
    node_reboot          ``nodes``; ``duration`` = downtime
    link_degrade         ``link``, ``loss_db``; ``ramp_s`` optional
    interference_burst   ``channel``, ``loss_db`` (noise raise, dB)
    packet_corrupt       ``probability``; ``nodes`` optional scope
    queue_saturate       ``nodes``, ``capacity``
    clock_drift          ``nodes``, ``drift`` (rate error, e.g. 0.02)
    ===================  =========================================

    ``at`` is the activation time in simulated seconds; ``duration``
    (where meaningful) bounds the fault window, ``None`` meaning "until
    the end of the run".  ``link_degrade`` applies to both directions of
    ``link`` unless ``directed`` is set.
    """

    kind: str
    at: float = 0.0
    duration: float | None = None
    nodes: tuple[int, ...] = ()
    link: tuple[int, int] | None = None
    channel: int | None = None
    loss_db: float = 0.0
    ramp_s: float = 0.0
    probability: float = 0.0
    capacity: int | None = None
    drift: float = 0.0
    directed: bool = False

    def __post_init__(self) -> None:
        # Normalise list-bearing fields so JSON round-trips compare equal.
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        if self.link is not None:
            a, b = self.link
            object.__setattr__(self, "link", (int(a), int(b)))
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless the spec is internally consistent."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.ramp_s < 0:
            raise ValueError(f"ramp_s must be >= 0, got {self.ramp_s}")
        kind = self.kind
        if kind in ("node_crash", "node_reboot", "queue_saturate",
                    "clock_drift") and not self.nodes:
            raise ValueError(f"{kind} requires a non-empty node scope")
        if kind == "link_degrade":
            if self.link is None:
                raise ValueError("link_degrade requires link=(a, b)")
            if self.loss_db <= 0:
                raise ValueError("link_degrade requires loss_db > 0")
        if kind == "interference_burst":
            if self.channel is None:
                raise ValueError("interference_burst requires a channel")
            if self.loss_db <= 0:
                raise ValueError("interference_burst requires loss_db > 0 "
                                 "(the noise-floor raise)")
        if kind == "packet_corrupt" and not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"packet_corrupt requires 0 < probability <= 1, "
                f"got {self.probability}"
            )
        if kind == "queue_saturate" and (self.capacity is None
                                         or self.capacity < 1):
            raise ValueError("queue_saturate requires capacity >= 1")
        if kind == "clock_drift" and self.drift <= -1.0:
            raise ValueError("clock_drift requires drift > -1 "
                             "(a clock cannot run backwards)")

    # -- timing ---------------------------------------------------------------

    @property
    def downtime(self) -> float | None:
        """The outage length for node faults (reboots default theirs)."""
        if self.kind == "node_reboot" and self.duration is None:
            return DEFAULT_REBOOT_DOWNTIME
        return self.duration

    @property
    def ends_at(self) -> float | None:
        """Deactivation time, or ``None`` for an open-ended fault."""
        window = (self.downtime if self.kind in ("node_crash", "node_reboot")
                  else self.duration)
        return None if window is None else self.at + window

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form, defaults omitted so encodings stay canonical."""
        out: dict[str, object] = {"kind": self.kind, "at": self.at}
        for f in fields(self):
            if f.name in ("kind", "at"):
                continue
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if f.name in ("nodes", "link"):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "FaultSpec":
        kwargs = dict(data)
        if "nodes" in kwargs:
            kwargs["nodes"] = tuple(kwargs["nodes"])
        if kwargs.get("link") is not None:
            kwargs["link"] = tuple(kwargs["link"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults for one run.

    ``enabled=False`` (or an empty spec list) makes the plan inert: the
    engine installs nothing, consumes no RNG, and the run is
    byte-identical to one with no plan at all — the property the
    chaos-determinism tests assert.
    """

    name: str = ""
    specs: tuple[FaultSpec, ...] = ()
    enabled: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_active(self) -> bool:
        """Whether installing this plan changes anything."""
        return self.enabled and bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "enabled": self.enabled,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "FaultPlan":
        return cls(
            name=data.get("name", ""),
            enabled=bool(data.get("enabled", True)),
            specs=tuple(FaultSpec.from_dict(s)
                        for s in data.get("specs", ())),
        )

    def to_param(self) -> str:
        """Canonical JSON — the campaign-parameter form.

        Sorted keys and fixed separators, so equal plans encode to equal
        strings and the derived seeds / cache keys are stable.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_param(cls, param: "str | _t.Mapping | FaultPlan | None",
                   ) -> "FaultPlan":
        """Decode a campaign parameter back into a plan.

        Accepts the canonical JSON string, an already-decoded mapping, a
        plan instance (returned as-is), or ``None``/``"null"`` (an inert
        plan) — the forms a scenario may receive.
        """
        if param is None or param == "null":
            return cls(enabled=False)
        if isinstance(param, FaultPlan):
            return param
        if isinstance(param, str):
            param = json.loads(param)
        return cls.from_dict(param)  # type: ignore[arg-type]
