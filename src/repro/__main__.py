"""``python -m repro`` — the LiteView shell, campaign runner and server.

Three subcommands:

``python -m repro shell [--seed N] [--nodes field|chain:K]``
    Build a simulated testbed with LiteView deployed everywhere and drop
    into the shell-style command interpreter.  This is the default: bare
    ``python -m repro [--seed N] [--nodes ...]`` still works.

``python -m repro campaign --scenario NAME [options]``
    Expand a seeded campaign (grid x repeats) over a scenario cell and
    run it across a worker pool with live progress, optional on-disk
    result caching, per-run timeouts and retries.  Prints a per-cell
    aggregate table and the campaign digest (the digest is identical for
    any worker count — sharding never changes results).

``python -m repro serve [SCENARIO] [--port P] [options]``
    Host a persistent simulated fleet over HTTP: Prometheus metrics on
    ``/metrics``, traffic-light health on ``/health``, live telemetry on
    ``/events`` (SSE), and fault injection via
    ``POST /fleets/<name>/faults``.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def build_testbed(spec: str, seed: int):
    from repro.workloads import build_chain, thirty_node_field
    from repro.workloads.scenarios import QUIET_PROPAGATION

    if spec == "field":
        return thirty_node_field(seed=seed)
    if spec.startswith("chain:"):
        return build_chain(int(spec.split(":", 1)[1]), seed=seed,
                           propagation_kwargs=QUIET_PROPAGATION)
    raise SystemExit(f"unknown topology spec {spec!r} "
                     "(use 'field' or 'chain:K')")


def run_shell(args: argparse.Namespace) -> int:
    from repro.core.deploy import deploy_liteview

    testbed = build_testbed(args.nodes, args.seed)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    interpreter = deployment.interpreter
    print(f"LiteView shell on {len(testbed)} nodes (seed {args.seed}). "
          "`help` lists commands, `cd <node>` logs in, `quit` exits.")
    while True:
        try:
            line = input("$ ").strip()
        except EOFError:
            break
        if line in ("quit", "q", "exit") and not interpreter.neighbor_mode:
            break
        if line.startswith("cd ") and line.split()[1] in testbed:
            deployment.workstation.attach_near(line.split()[1])
        try:
            output = interpreter.execute(line)
        except ReproError as exc:
            output = f"error: {exc}"
        if output:
            print(output)
    return 0


def _parse_value(text: str):
    """CLI parameter literal: int, then float, then bare string."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _parse_param(text: str) -> tuple[str, object]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise SystemExit(f"bad --param {text!r} (expected name=value)")
    return name, _parse_value(value)


def _parse_grid(text: str) -> tuple[str, list[object]]:
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise SystemExit(f"bad --grid {text!r} (expected name=v1,v2,...)")
    return name, [_parse_value(v) for v in values.split(",")]


def _parse_shard(text: str) -> tuple[int, int]:
    index, sep, of = text.partition("/")
    try:
        if not sep:
            raise ValueError
        return int(index), int(of)
    except ValueError:
        raise SystemExit(
            f"bad --shard {text!r} (expected K/N with 0 <= K < N)") from None


def run_campaign_cli(args: argparse.Namespace) -> int:
    from repro.analysis import aggregate_cells, render_table
    from repro.campaign import (Campaign, default_workers, run_campaign,
                                scenario_names)

    if args.list:
        print("\n".join(scenario_names()))
        return 0
    if not args.scenario:
        raise SystemExit("--scenario is required (try --list)")

    campaign = Campaign(
        name=args.name, scenario=args.scenario, seed=args.seed,
        base_params=dict(args.param or ()), grid=dict(args.grid or ()),
        repeats=args.repeats,
    )
    target = campaign
    if args.shard is not None:
        index, of = args.shard
        try:
            target = campaign.shard(index, of)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    workers = args.workers if args.workers else default_workers()
    total = len(target)
    shard_note = ("" if args.shard is None
                  else f", shard {target.index}/{target.of}")
    print(f"campaign {campaign.name!r}: {total} runs "
          f"({args.scenario}, seed {campaign.seed}{shard_note}) on "
          f"{workers} worker{'s' if workers != 1 else ''}",
          file=sys.stderr)

    def progress(done, total, result):
        source = "cache" if result.cached else f"{result.wall_s:.2f}s"
        state = "ok" if result.ok else f"FAILED: {result.error}"
        print(f"  [{done}/{total}] {result.spec.label()} {state} "
              f"({source})", file=sys.stderr)

    out = run_campaign(
        target, workers=workers, cache=args.cache,
        timeout_s=args.timeout, retries=args.retries, progress=progress,
    )

    rows = [(r.spec.params_dict, {**r.counters, **r.values})
            for r in out.ok]
    cells = aggregate_cells(rows) if rows else []
    if cells:
        print(render_table(
            ["cell", "metric", "n", "mean", "ci95"],
            [[", ".join(f"{k}={v}" for k, v in a.params.items()) or "-",
              a.metric, a.n, f"{a.mean:.3f}",
              "-" if a.n < 2 else f"±{a.half_width:.3f}"]
             for a in cells],
            title=f"campaign {campaign.name!r} aggregates",
        ))
    print(f"digest: {out.digest()}")
    print(f"runs: {len(out.runs)}  ok: {len(out.ok)}  "
          f"failed: {len(out.failures)}  cached: {out.n_cached}  "
          f"wall: {out.wall_s:.2f}s")
    for failure in out.failures:
        print(f"  FAILED {failure.spec.label()}: {failure.error}",
              file=sys.stderr)
    return 1 if out.failures else 0


def run_serve_cli(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp, build_fleet

    fleet = build_fleet(
        args.scenario, seed=args.seed, assess_every=args.assess_every,
        fault_plan=args.faults, mode=args.mode,
    )
    app = ServeApp([fleet], tick_s=args.tick, step_s=args.step)
    print(f"serving fleet {fleet.name!r} ({len(fleet.testbed)} nodes, "
          f"seed {args.seed}) on http://{args.host}:{args.port} — "
          "endpoints: /metrics /health /events "
          f"POST /fleets/{fleet.name}/faults", file=sys.stderr)
    try:
        asyncio.run(app.serve_forever(host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LiteView reproduction: interactive shell and "
                    "campaign runner.",
    )
    sub = parser.add_subparsers(dest="command")

    shell = sub.add_parser("shell", help="interactive LiteView shell")
    shell.add_argument("--seed", type=int, default=3)
    shell.add_argument("--nodes", default="field",
                       help="'field' (30 nodes) or 'chain:K'")

    camp = sub.add_parser("campaign", help="run a simulation campaign")
    camp.add_argument("--scenario", help="scenario cell (see --list)")
    camp.add_argument("--name", default="cli")
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--repeats", type=int, default=1)
    camp.add_argument("--workers", type=int, default=0,
                      help="warm-pool worker processes (default: all "
                           "cores, or the REPRO_WORKERS env var)")
    camp.add_argument("--shard", type=_parse_shard, metavar="K/N",
                      default=None,
                      help="run only shard K of N (0-based); digests of "
                           "merged shards match the serial run")
    camp.add_argument("--param", action="append", type=_parse_param,
                      metavar="NAME=VALUE",
                      help="fixed scenario parameter (repeatable)")
    camp.add_argument("--grid", action="append", type=_parse_grid,
                      metavar="NAME=V1,V2,...",
                      help="swept parameter axis (repeatable)")
    camp.add_argument("--cache", metavar="DIR",
                      help="on-disk result cache directory")
    camp.add_argument("--timeout", type=float, default=None,
                      help="per-run timeout in seconds")
    camp.add_argument("--retries", type=int, default=1,
                      help="attempts per failing run (default 1)")
    camp.add_argument("--list", action="store_true",
                      help="list built-in scenarios and exit")

    serve = sub.add_parser("serve", help="serve a live fleet over HTTP")
    serve.add_argument("scenario", nargs="?", default="field",
                       help="'field' (30 nodes), 'hundred' (100), "
                            "'city' (~1040, spatially indexed), "
                            "'city:K' (a city of roughly K nodes) or "
                            "'chain:K' (default: field)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8700)
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument("--assess-every", type=float, default=30.0,
                       help="simulated seconds between health "
                            "assessments (default 30)")
    serve.add_argument("--tick", type=float, default=0.25,
                       help="wall-clock seconds between sim ticks")
    serve.add_argument("--step", type=float, default=1.0,
                       help="simulated seconds advanced per tick")
    serve.add_argument("--faults", metavar="JSON", default=None,
                       help="canonical FaultPlan JSON to pre-inject")
    serve.add_argument("--mode", default="active",
                       choices=("active", "passive", "hybrid"),
                       help="assessment mode: probe the watchlist "
                            "(active), read the zero-probe beacon "
                            "detectors (passive), or both (hybrid)")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: bare `python -m repro [--seed ...]` is the
    # shell, exactly as before subcommands existed.
    if not argv or argv[0].startswith("-"):
        argv.insert(0, "shell")
    args = _parser().parse_args(argv)
    if args.command == "campaign":
        return run_campaign_cli(args)
    if args.command == "serve":
        return run_serve_cli(args)
    return run_shell(args)


if __name__ == "__main__":
    sys.exit(main())
