"""``python -m repro`` — launch the interactive LiteView shell.

Builds a 30-node simulated testbed with LiteView deployed everywhere and
drops into the shell-style command interpreter.  ``--seed N`` selects
the world; ``--nodes chain:K`` swaps the field for a K-node chain.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.deploy import deploy_liteview
from repro.errors import ReproError
from repro.workloads import build_chain, thirty_node_field
from repro.workloads.scenarios import QUIET_PROPAGATION


def build_testbed(spec: str, seed: int):
    if spec == "field":
        return thirty_node_field(seed=seed)
    if spec.startswith("chain:"):
        return build_chain(int(spec.split(":", 1)[1]), seed=seed,
                           propagation_kwargs=QUIET_PROPAGATION)
    raise SystemExit(f"unknown topology spec {spec!r} "
                     "(use 'field' or 'chain:K')")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive LiteView shell on a simulated testbed.",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--nodes", default="field",
                        help="'field' (30 nodes) or 'chain:K'")
    args = parser.parse_args(argv)

    testbed = build_testbed(args.nodes, args.seed)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    interpreter = deployment.interpreter
    print(f"LiteView shell on {len(testbed)} nodes (seed {args.seed}). "
          "`help` lists commands, `cd <node>` logs in, `quit` exits.")
    while True:
        try:
            line = input("$ ").strip()
        except EOFError:
            break
        if line in ("quit", "q", "exit") and not interpreter.neighbor_mode:
            break
        if line.startswith("cd ") and line.split()[1] in testbed:
            deployment.workstation.attach_near(line.split()[1])
        try:
            output = interpreter.execute(line)
        except ReproError as exc:
            output = f"error: {exc}"
        if output:
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
