"""Export traces and metrics: JSONL and Chrome ``trace_event`` format.

Two formats, two audiences:

* **JSONL** — one JSON object per trace event, stable key order, compact
  separators.  Byte-identical across same-seed runs, which makes it the
  format the determinism tests diff and the format to commit as a
  regression artifact.
* **Chrome trace_event** — load the file at ``chrome://tracing`` (or
  Perfetto) to scrub through a simulation visually: rows are nodes,
  instants are lifecycle events, args carry the detail dict.

Metrics export comes in two flavours: a plain JSON dump of the registry
snapshot, and the **Prometheus text exposition format** (version 0.0.4)
for scraping — ``repro.serve`` feeds its ``/metrics`` endpoint from
:func:`metrics_to_prometheus`, and batch runs can
:func:`write_prometheus` a final snapshot for node-exporter-style
textfile collection.
"""

from __future__ import annotations

import json
import re
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "trace_to_jsonl",
    "write_trace_jsonl",
    "trace_to_chrome",
    "write_chrome_trace",
    "metrics_to_json",
    "sanitize_metric_name",
    "escape_label_value",
    "prometheus_line",
    "metrics_to_prometheus",
    "write_prometheus",
]

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def trace_to_jsonl(tracer: "Tracer") -> str:
    """Serialise every trace event as one JSON line (trailing newline)."""
    lines = []
    for event in tracer.events:
        lines.append(json.dumps(
            {
                "time": event.time,
                "kind": event.kind,
                "node": event.node,
                "packet": event.packet,
                "detail": event.detail,
            },
            **_COMPACT,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(tracer: "Tracer", path: str) -> int:
    """Write the JSONL export to ``path``; returns the event count."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_jsonl(tracer))
    return len(tracer.events)


def trace_to_chrome(tracer: "Tracer") -> dict:
    """Render the trace in Chrome's ``trace_event`` JSON schema.

    Nodes become pids (so the viewer groups rows per node); each packet
    gets a small deterministic tid in first-seen order; sim seconds map
    to microseconds, the unit the schema expects.
    """
    packet_tids: dict[str, int] = {}
    events = []
    for event in tracer.events:
        tid = 0
        if event.packet is not None:
            tid = packet_tids.setdefault(event.packet,
                                         len(packet_tids) + 1)
        args = dict(event.detail)
        if event.packet is not None:
            args["packet"] = event.packet
        events.append({
            "name": event.kind,
            "ph": "i",           # instant event
            "s": "t",            # thread-scoped
            "ts": round(event.time * 1e6, 3),
            "pid": event.node if event.node is not None else 0,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: "Tracer", path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_chrome(tracer), fh, **_COMPACT)
    return len(tracer.events)


def metrics_to_json(registry: "MetricsRegistry") -> str:
    """The registry snapshot as deterministic, indented JSON."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)


# -- Prometheus text exposition ------------------------------------------------

#: Characters legal in a Prometheus metric name body.
_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram-summary keys exported as one gauge each (the
#: "gauge-per-percentile" mapping: exact-sample percentiles become
#: ``<name>_p50`` etc., not native Prometheus quantile labels, so every
#: scraper — including the dumbest — can graph them directly).
_SUMMARY_GAUGES = ("min", "mean", "max", "p50", "p90", "p99")


def sanitize_metric_name(name: str) -> str:
    """A legal Prometheus metric name for ``name``.

    Registry names use dots (``mac.sent_frames``); Prometheus allows
    only ``[a-zA-Z0-9_:]`` with a non-digit first character.  Every
    illegal character becomes ``_``; a leading digit gets a ``_``
    prefix; an empty name is spelled out rather than emitted blank.
    """
    if not name:
        return "_empty_"
    sanitized = _NAME_ILLEGAL.sub("_", name)
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: object) -> str:
    """Escape a label value per the text-format rules
    (backslash, double-quote and newline)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float | int) -> str:
    """Deterministic sample-value rendering (ints stay integral)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_line(name: str, labels: "_t.Mapping[str, object] | None",
                    value: float | int) -> str:
    """One exposition sample line: ``name{k="v",...} value``.

    ``name`` is sanitized here, so callers can pass registry names
    verbatim; labels are rendered in sorted key order for determinism.
    """
    body = sanitize_metric_name(name)
    if labels:
        rendered = ",".join(
            f'{sanitize_metric_name(str(k))}="{escape_label_value(v)}"'
            for k, v in sorted(labels.items())
        )
        body += "{" + rendered + "}"
    return f"{body} {_format_value(value)}"


def metrics_to_prometheus(registry: "MetricsRegistry", *,
                          labels: "_t.Mapping[str, object] | None" = None,
                          namespace: str = "") -> str:
    """Render the whole registry in Prometheus text format 0.0.4.

    * counters → ``# TYPE <name> counter`` + one sample;
    * gauges → ``# TYPE <name> gauge`` + one sample;
    * histograms → the summary mapped to one gauge per statistic
      (``_min``/``_mean``/``_max``/``_p50``/``_p90``/``_p99``) plus a
      ``_count`` counter.  Empty histograms emit only ``_count 0`` —
      a percentile of nothing is not a sample.

    ``labels`` (e.g. ``{"fleet": "field", "node": 7}``) are attached to
    every sample; ``namespace`` prefixes every metric name
    (``namespace_name``).  Output is sorted by metric name, so equal
    registries render byte-identically.  An empty registry renders as
    the empty string.
    """
    prefix = f"{namespace}_" if namespace else ""
    lines: list[str] = []

    def emit(name: str, kind: str, value: float | int) -> None:
        full = sanitize_metric_name(prefix + name)
        lines.append(f"# TYPE {full} {kind}")
        lines.append(prometheus_line(full, labels, value))

    for name, value in sorted(registry.counters().items()):
        emit(name, "counter", value)
    for name, value in sorted(registry.gauges().items()):
        emit(name, "gauge", value)
    for name, hist in sorted(registry.histograms().items()):
        summary = hist.summary()
        emit(f"{name}_count", "counter", summary["count"])
        for key in _SUMMARY_GAUGES:
            stat = summary[key]
            if stat is None:
                continue
            emit(f"{name}_{key}", "gauge", stat)
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: "MetricsRegistry", path: str, *,
                     labels: "_t.Mapping[str, object] | None" = None,
                     namespace: str = "") -> int:
    """Write the Prometheus rendering to ``path``.

    Returns the number of sample lines written (comment lines not
    counted) — the textfile-collector analogue of
    :func:`write_trace_jsonl`'s event count.
    """
    text = metrics_to_prometheus(registry, labels=labels,
                                 namespace=namespace)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return sum(1 for line in text.splitlines()
               if line and not line.startswith("#"))
