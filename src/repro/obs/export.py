"""Export traces and metrics: JSONL and Chrome ``trace_event`` format.

Two formats, two audiences:

* **JSONL** — one JSON object per trace event, stable key order, compact
  separators.  Byte-identical across same-seed runs, which makes it the
  format the determinism tests diff and the format to commit as a
  regression artifact.
* **Chrome trace_event** — load the file at ``chrome://tracing`` (or
  Perfetto) to scrub through a simulation visually: rows are nodes,
  instants are lifecycle events, args carry the detail dict.

Metrics export is a plain JSON dump of the registry snapshot.
"""

from __future__ import annotations

import json
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "trace_to_jsonl",
    "write_trace_jsonl",
    "trace_to_chrome",
    "write_chrome_trace",
    "metrics_to_json",
]

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def trace_to_jsonl(tracer: "Tracer") -> str:
    """Serialise every trace event as one JSON line (trailing newline)."""
    lines = []
    for event in tracer.events:
        lines.append(json.dumps(
            {
                "time": event.time,
                "kind": event.kind,
                "node": event.node,
                "packet": event.packet,
                "detail": event.detail,
            },
            **_COMPACT,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(tracer: "Tracer", path: str) -> int:
    """Write the JSONL export to ``path``; returns the event count."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_jsonl(tracer))
    return len(tracer.events)


def trace_to_chrome(tracer: "Tracer") -> dict:
    """Render the trace in Chrome's ``trace_event`` JSON schema.

    Nodes become pids (so the viewer groups rows per node); each packet
    gets a small deterministic tid in first-seen order; sim seconds map
    to microseconds, the unit the schema expects.
    """
    packet_tids: dict[str, int] = {}
    events = []
    for event in tracer.events:
        tid = 0
        if event.packet is not None:
            tid = packet_tids.setdefault(event.packet,
                                         len(packet_tids) + 1)
        args = dict(event.detail)
        if event.packet is not None:
            args["packet"] = event.packet
        events.append({
            "name": event.kind,
            "ph": "i",           # instant event
            "s": "t",            # thread-scoped
            "ts": round(event.time * 1e6, 3),
            "pid": event.node if event.node is not None else 0,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: "Tracer", path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_chrome(tracer), fh, **_COMPACT)
    return len(tracer.events)


def metrics_to_json(registry: "MetricsRegistry") -> str:
    """The registry snapshot as deterministic, indented JSON."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)
