"""Metrics registry: counters, gauges, and percentile histograms.

The raw-list series :class:`~repro.sim.monitor.Monitor` keeps are fine
for regenerating the paper's figures, but diagnosis wants *summaries*:
"what is the p99 ping RTT", "how full do MAC queues get".  The registry
is the typed store behind the monitor — the monitor's public API is
unchanged and delegates here — plus the ``stats`` shell command's data
source.

Percentiles use the nearest-rank method on the exact sample set (sim
scale makes keeping samples affordable; there is no bucketing error to
reason about).  An empty histogram reports ``None`` percentiles rather
than inventing a value.
"""

from __future__ import annotations

import math
import typing as _t

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: The percentile triple every summary reports.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    # __slots__ classes need explicit state for the oldest pickle
    # protocols; campaign workers ship metrics across process boundaries.
    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A set-to-current-value metric (queue depth, table size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Exact-sample histogram with nearest-rank percentiles."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float | None:
        return self.total / len(self._values) if self._values else None

    @property
    def min(self) -> float | None:
        return min(self._values) if self._values else None

    @property
    def max(self) -> float | None:
        return max(self._values) if self._values else None

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile ``p`` in [0, 100]; None when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside 0..100")
        if not self._values:
            return None
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        if p == 0.0:
            return self._values[0]
        rank = math.ceil(p / 100.0 * len(self._values))
        return self._values[rank - 1]

    def summary(self) -> dict[str, float | int | None]:
        """count/min/mean/max plus the p50/p90/p99 triple."""
        out: dict[str, float | int | None] = {
            "count": self.count, "min": self.min, "mean": self.mean,
            "max": self.max,
        }
        for p in SUMMARY_PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        return out

    def values(self) -> list[float]:
        """The raw samples, in observation order is *not* guaranteed
        (percentile queries sort in place); use for distribution checks."""
        return list(self._values)

    def __getstate__(self):
        return (self.name, self._values, self._sorted)

    def __setstate__(self, state) -> None:
        self.name, self._values, self._sorted = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named metrics, one namespace per simulation.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name as a different type raises — silent type morphing is
    how dashboards end up lying.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls: type) -> _t.Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        """The metric registered under ``name``, if any (no creation)."""
        return self._metrics.get(name)

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- bulk views ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def counters(self) -> dict[str, int]:
        return {m.name: m.value for m in self._metrics.values()
                if isinstance(m, Counter)}

    def gauges(self) -> dict[str, float]:
        return {m.name: m.value for m in self._metrics.values()
                if isinstance(m, Gauge)}

    def histograms(self) -> dict[str, Histogram]:
        return {m.name: m for m in self._metrics.values()
                if isinstance(m, Histogram)}

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-data dump: {counters: {...}, gauges: {...},
        histograms: {name: summary}} — JSON-ready."""
        return {
            "counters": dict(sorted(self.counters().items())),
            "gauges": dict(sorted(self.gauges().items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms().items())
            },
        }

    def render(self, prefix: str = "") -> str:
        """ASCII table of everything, for the ``stats`` shell command.

        ``prefix`` keeps only metrics whose name starts with it — the
        shell's ``stats mac.`` narrows a busy registry to one subsystem.
        """
        snap = self.snapshot()
        if prefix:
            snap = {
                group: {name: value for name, value in metrics.items()
                        if name.startswith(prefix)}
                for group, metrics in snap.items()
            }
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snap["counters"])
            lines.extend(f"  {name:<{width}}  {value}"
                         for name, value in snap["counters"].items())
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snap["gauges"])
            lines.extend(f"  {name:<{width}}  {value:g}"
                         for name, value in snap["gauges"].items())
        if snap["histograms"]:
            lines.append("histograms:"
                         "               count       min      mean       max"
                         "       p50       p90       p99")
            for name, summary in snap["histograms"].items():
                cells = [f"{summary['count']:>9}"]
                for key in ("min", "mean", "max", "p50", "p90", "p99"):
                    value = summary[key]
                    cells.append("        -" if value is None
                                 else f"{value:>9.3f}")
                lines.append(f"  {name:<24}" + " ".join(cells))
        if lines:
            return "\n".join(lines)
        if prefix:
            return f"no metrics match prefix {prefix!r}"
        return "no metrics recorded"

    def reset(self) -> None:
        self._metrics.clear()

    def __getstate__(self):
        return self._metrics

    def __setstate__(self, state) -> None:
        self._metrics = state

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
