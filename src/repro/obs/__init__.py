"""Observability: packet-lifecycle tracing, metrics, and profiling.

The diagnosis story of the paper, turned inward on the reproduction
itself:

* :mod:`repro.obs.trace` — deterministic structured tracing; per-packet
  lifecycle records and :meth:`~repro.obs.trace.Tracer.explain`, the
  software analogue of per-hop traceroute reporting.
* :mod:`repro.obs.metrics` — counters, gauges and percentile histograms
  behind the :class:`~repro.sim.monitor.Monitor` facade.
* :mod:`repro.obs.profiler` — opt-in wall-clock hotspot accounting for
  the event loop.
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event`` and
  Prometheus text-format export.

Import discipline: these modules import nothing from ``repro.sim`` at
runtime (type hints only), because the sim engine itself instantiates a
:class:`~repro.obs.trace.Tracer` — observability sits *below* the
substrate, not above it.
"""

from repro.obs.export import (
    metrics_to_json,
    metrics_to_prometheus,
    prometheus_line,
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import ProfileEntry, SimProfiler
from repro.obs.trace import TraceEvent, Tracer, packet_trace_id

__all__ = [
    "Tracer",
    "TraceEvent",
    "packet_trace_id",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SimProfiler",
    "ProfileEntry",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "trace_to_chrome",
    "write_chrome_trace",
    "metrics_to_json",
    "metrics_to_prometheus",
    "prometheus_line",
    "write_prometheus",
]
