"""Sim profiler: wall-clock accounting per process / event callback.

The ROADMAP's perf work needs a baseline: *which* event callbacks eat
the wall-clock when a testbed runs.  :class:`SimProfiler` hooks the
engine's dispatch loop (``Environment.profiler``) and times each
``event._process()`` call, attributing the cost to the simulated
process the event resumes (or, for bare events, the event class).

This is the **only** place wall time is allowed in the observability
stack — trace records are sim-clock-only so they stay deterministic.
The hook is opt-in: with no profiler attached the engine pays one
attribute read and an ``is None`` branch per event, nothing more.
"""

from __future__ import annotations

import time
import typing as _t
from dataclasses import dataclass

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.events import Event

__all__ = ["ProfileEntry", "SimProfiler"]


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregated cost of one label (process name or event class)."""

    label: str
    calls: int
    total_s: float
    max_s: float

    @property
    def mean_us(self) -> float:
        return self.total_s / self.calls * 1e6 if self.calls else 0.0


class SimProfiler:
    """Accumulates per-label wall-clock cost of event dispatch."""

    def __init__(self) -> None:
        # label -> [calls, total_s, max_s]
        self._stats: dict[str, list[float]] = {}
        #: Wall-clock total across all measured dispatches.
        self.total_s = 0.0
        self.calls = 0

    # -- engine hook --------------------------------------------------------

    def measure(self, event: "Event") -> None:
        """Dispatch ``event`` (calling its callbacks), timing the work.

        Called by :meth:`Environment.step` in place of the direct
        ``event._process()`` when a profiler is attached.  The label is
        resolved *before* dispatch because processing consumes the
        callback list.
        """
        label = self._label(event)
        start = time.perf_counter()
        try:
            event._process()
        finally:
            elapsed = time.perf_counter() - start
            stat = self._stats.get(label)
            if stat is None:
                self._stats[label] = [1, elapsed, elapsed]
            else:
                stat[0] += 1
                stat[1] += elapsed
                if elapsed > stat[2]:
                    stat[2] = elapsed
            self.total_s += elapsed
            self.calls += 1

    @staticmethod
    def _label(event: "Event") -> str:
        """Attribute an event to the process it resumes, if any.

        Processes register their ``_resume`` bound method as a callback;
        the first such callback names the bill-payer.  Bare events
        (timeouts nobody waits on, medium end-of-frame callbacks) fall
        back to their class name.
        """
        for callback in event.callbacks or ():
            owner = getattr(callback, "__self__", None)
            name = getattr(owner, "name", None)
            if name is not None and hasattr(owner, "_generator"):
                return f"process:{name}"
        return f"event:{type(event).__name__}"

    # -- lifecycle ----------------------------------------------------------

    def attach(self, env: "Environment") -> "SimProfiler":
        """Install onto ``env`` (replacing any previous profiler)."""
        env.profiler = self
        return self

    @staticmethod
    def detach(env: "Environment") -> None:
        """Remove whatever profiler ``env`` carries."""
        env.profiler = None

    def reset(self) -> None:
        self._stats.clear()
        self.total_s = 0.0
        self.calls = 0

    # -- reporting ----------------------------------------------------------

    def entries(self) -> list[ProfileEntry]:
        """Per-label costs, hottest first (ties break by label)."""
        entries = [
            ProfileEntry(label=label, calls=int(stat[0]),
                         total_s=stat[1], max_s=stat[2])
            for label, stat in self._stats.items()
        ]
        entries.sort(key=lambda e: (-e.total_s, e.label))
        return entries

    def report(self, top: int = 20) -> str:
        """The hotspot table future perf PRs cite as their baseline."""
        entries = self.entries()
        if not entries:
            return "profiler: no events dispatched yet"
        lines = [
            f"profiler: {self.calls} dispatches, "
            f"{self.total_s * 1e3:.3f} ms wall-clock total",
            f"{'label':<40} {'calls':>8} {'total ms':>10} "
            f"{'mean us':>9} {'max us':>9}",
        ]
        for entry in entries[:top]:
            lines.append(
                f"{entry.label:<40} {entry.calls:>8} "
                f"{entry.total_s * 1e3:>10.3f} {entry.mean_us:>9.2f} "
                f"{entry.max_s * 1e6:>9.2f}"
            )
        if len(entries) > top:
            lines.append(f"... {len(entries) - top} more labels")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimProfiler {self.calls} calls "
                f"{self.total_s * 1e3:.1f} ms>")
