"""Structured, deterministic tracing of packet lifecycles.

The paper's tools answer "what happened to *this* probe and *where* did
it die" on real motes; :class:`Tracer` is the simulation-side analogue.
Instrumented subsystems (stack, MAC queue, CSMA, medium, routing,
kernel event log) emit time-stamped :class:`TraceEvent` records, and the
records that belong to one network packet — keyed by the wire-stable
packet id ``origin:port:seq`` — form its **lifecycle trace**:

    stack.send → mac.enqueue → mac.backoff* → mac.tx → radio.rx /
    radio.drop(reason) → stack.rx → route.forward → … → route.deliver
    or route.drop(reason)

Design constraints, both load-bearing:

* **Off by default, near-zero overhead when off.**  Every call site
  guards with ``if tracer.enabled:`` before building any record, so the
  disabled path costs one attribute read and a branch.
* **Deterministic.**  Records carry only simulated time and
  seed-deterministic fields (never wall time, object ids, or the MAC
  frame's process-global sequence counter), so two runs of the same
  seeded scenario export byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Tracer", "packet_trace_id"]


def packet_trace_id(origin: int, port: int, seq: int) -> str:
    """The wire-stable lifecycle key of one network packet.

    ``origin`` scopes ``seq`` (each sender numbers its own packets) and
    ``port`` separates protocols sharing a node, so the triple survives
    serialisation and re-parsing at every hop — unlike Python object
    identity, which dies at the first ``to_bytes``.
    """
    return f"{origin}:{port}:{seq}"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One time-stamped observation, optionally tied to a packet."""

    time: float
    kind: str                      # e.g. "mac.tx", "route.drop"
    node: int | None = None        # node where the event happened
    packet: str | None = None      # lifecycle key (packet_trace_id)
    detail: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        where = f"node {self.node}" if self.node is not None else "-"
        return (f"[{self.time:10.6f}] {where:>8}  {self.kind}"
                + (f"  {extras}" if extras else ""))


class Tracer:
    """Collects trace events for one simulation.

    Disabled by default; call sites must guard on :attr:`enabled` so the
    off path allocates nothing.  All bookkeeping (global timeline,
    per-packet index, last-packet pointer) happens on the enabled path
    only.
    """

    __slots__ = ("enabled", "events", "_by_packet", "last_packet_id")

    def __init__(self) -> None:
        self.enabled = False
        #: Global timeline, in emission order (== time order, since the
        #: simulation clock never goes backwards).
        self.events: list[TraceEvent] = []
        self._by_packet: dict[str, list[TraceEvent]] = {}
        #: The packet most recently touched by any event (`trace last`).
        self.last_packet_id: str | None = None

    # -- control ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all collected events (the enabled flag is kept)."""
        self.events.clear()
        self._by_packet.clear()
        self.last_packet_id = None

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, time: float, *, node: int | None = None,
             packet: str | None = None, **detail: object) -> None:
        """Record one event.  Callers must check :attr:`enabled` first."""
        event = TraceEvent(time=time, kind=kind, node=node, packet=packet,
                           detail=detail)
        self.events.append(event)
        if packet is not None:
            self._by_packet.setdefault(packet, []).append(event)
            self.last_packet_id = packet

    # -- queries ------------------------------------------------------------

    def lifecycle(self, packet_id: str) -> list[TraceEvent]:
        """All events of one packet, in time order (empty if unknown)."""
        return list(self._by_packet.get(packet_id, ()))

    def packet_ids(self) -> list[str]:
        """Every packet with at least one event, in first-seen order."""
        return list(self._by_packet)

    def outcome(self, packet_id: str) -> tuple[str, TraceEvent | None]:
        """Classify a packet's fate from its trace.

        Returns ``(verdict, deciding_event)`` where verdict is one of
        ``"delivered"``, ``"dropped"``, ``"in-flight"`` or ``"unknown"``.
        A packet can be both delivered *and* later dropped (broadcasts,
        TTL death after delivery); delivery wins, matching what the
        end user asked ("did my packet arrive?").
        """
        events = self._by_packet.get(packet_id)
        if not events:
            return "unknown", None
        delivered = None
        dropped = None
        for event in events:
            if event.kind == "route.deliver":
                delivered = delivered or event
            elif event.kind.endswith(".drop") or event.kind.endswith("_drop"):
                dropped = dropped or event
        if delivered is not None:
            return "delivered", delivered
        if dropped is not None:
            return "dropped", dropped
        return "in-flight", events[-1]

    def explain(self, packet_id: str) -> str:
        """Reconstruct the hop-by-hop story of one packet.

        The software analogue of the paper's per-hop traceroute report:
        a header naming the packet's fate (and, for drops, the hop and
        reason), followed by the chronological event list.
        """
        events = self.lifecycle(packet_id)
        if not events:
            return (f"no trace for packet {packet_id!r} "
                    "(tracing disabled, or the id is wrong)")
        verdict, decider = self.outcome(packet_id)
        lines = [f"packet {packet_id}: {len(events)} events, {verdict}"]
        if verdict == "dropped" and decider is not None:
            reason = decider.detail.get("reason", decider.kind)
            lines[0] += (f" at node {decider.node} "
                         f"({reason}, t={decider.time:.6f}s)")
        elif verdict == "delivered" and decider is not None:
            lines[0] += (f" to node {decider.node} "
                         f"(t={decider.time:.6f}s)")
        lines.extend(e.render() for e in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"<Tracer {state} events={len(self.events)} "
                f"packets={len(self._by_packet)}>")
