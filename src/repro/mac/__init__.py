"""802.15.4-style MAC substrate: frames, transmit queue, CSMA/CA."""

from repro.mac.csma import CsmaMac
from repro.mac.frame import (
    BROADCAST,
    FRAME_OVERHEAD_BYTES,
    MAX_PAYLOAD_BYTES,
    Frame,
    frame_airtime,
)
from repro.mac.queue import TxQueue

__all__ = [
    "Frame",
    "frame_airtime",
    "BROADCAST",
    "FRAME_OVERHEAD_BYTES",
    "MAX_PAYLOAD_BYTES",
    "TxQueue",
    "CsmaMac",
]
