"""Unslotted CSMA/CA in the style of 802.15.4.

Each node runs one transmit process: pop a frame from the
:class:`~repro.mac.queue.TxQueue`, back off a random number of unit
periods, carrier-sense, and transmit when clear — doubling the backoff
window (up to ``MAX_BE``) on every busy assessment and dropping the frame
after ``MAX_BACKOFFS`` failures, exactly as macMinBE/macMaxBE/macMaxCSMABackoffs
prescribe.  The random hold-and-release this creates under load is the
mechanism behind the paper's Figure 5 observation that reports can arrive
back-to-back ("the routing layer ... will add random jitters before
sending out packets in the queue").

No MAC-level acknowledgements are modelled: LiteView's reliability lives
in its own command-layer protocol (per-batch acks, §IV-B of the paper),
and the LiteOS broadcast MAC the paper builds on does not ack either.
"""

from __future__ import annotations

import typing as _t

from repro.mac.frame import Frame
from repro.mac.queue import TxQueue
from repro.radio.medium import FrameArrival, RadioMedium, Transceiver
from repro.sim.engine import Environment
from repro.sim.monitor import Monitor
from repro.sim.rng import RngRegistry
from repro.units import us

__all__ = ["CsmaMac"]

#: aUnitBackoffPeriod: 20 symbols of 16 us.
UNIT_BACKOFF = us(320)
#: macMinBE / macMaxBE / macMaxCSMABackoffs defaults.
MIN_BE = 3
MAX_BE = 5
MAX_BACKOFFS = 4
#: Rx/Tx turnaround before a frame actually leaves the radio.
TURNAROUND = us(192)


class CsmaMac:
    """One node's MAC: bounded queue + CSMA/CA transmit process."""

    def __init__(
        self,
        env: Environment,
        medium: RadioMedium,
        xcvr: Transceiver,
        rng: RngRegistry,
        monitor: Monitor,
        *,
        queue_capacity: int = 8,
    ) -> None:
        self.env = env
        self.medium = medium
        self.xcvr = xcvr
        self.monitor = monitor
        self.node_id = xcvr.node_id
        self.tracer = env.tracer
        self.queue = TxQueue(env, capacity=queue_capacity,
                             tracer=env.tracer, owner=self.node_id)
        self._rng = rng.stream(f"mac.backoff.{self.node_id}")
        # Lazily bound handles for the per-frame receive counters
        # (created on first increment so untouched counters stay out of
        # snapshots).
        self._c_received = None
        self._c_filtered = None
        self._receive_handler: _t.Callable[[FrameArrival], None] | None = None
        xcvr.set_receive_handler(self._on_arrival)
        self._tx_process = env.process(self._tx_loop(), name=f"mac-tx-{self.node_id}")

    # -- upper-layer interface ------------------------------------------------

    def set_receive_handler(
        self, handler: _t.Callable[[FrameArrival], None]
    ) -> None:
        """Install the network-stack delivery callback."""
        self._receive_handler = handler

    def send(self, frame: Frame) -> bool:
        """Enqueue a frame for transmission.

        Returns False (and counts the drop) when the queue is full — the
        caller sees the same silent loss a real overloaded mote produces.
        """
        accepted = self.queue.put(frame)
        if not accepted:
            self.monitor.count("mac.queue_drops")
        self.monitor.observe("mac.queue_occupancy", self.queue.occupancy)
        return accepted

    @property
    def queue_occupancy(self) -> int:
        """Frames currently waiting — the ping report's ``Queue`` value."""
        return self.queue.occupancy

    # -- transmit path -----------------------------------------------------------

    def _tx_loop(self):
        while True:
            frame = yield self.queue.get()
            sent = yield from self._csma_transmit(frame)
            if sent:
                self.monitor.count("mac.sent_frames")
            else:
                self.monitor.count("mac.cca_failures")

    def _csma_transmit(self, frame: Frame):
        """One CSMA/CA attempt cycle; returns True if the frame aired."""
        tracer = self.tracer
        be = MIN_BE
        for attempt in range(MAX_BACKOFFS + 1):
            slots = int(self._rng.integers(0, 2 ** be))
            if tracer.enabled:
                tracer.emit("mac.backoff", self.env.now, node=self.node_id,
                            packet=frame.trace_id, attempt=attempt, be=be,
                            slots=slots)
            # Pooled: the backoff delay is yielded and forgotten, so the
            # event object can be recycled by the engine.
            yield self.env.pooled_timeout(slots * UNIT_BACKOFF)
            if not self.xcvr.enabled:
                # The radio was switched off while the frame waited; drop
                # it like the silicon would.
                self.monitor.count("mac.radio_off_drops")
                if tracer.enabled:
                    tracer.emit("mac.drop", self.env.now, node=self.node_id,
                                packet=frame.trace_id, reason="radio_off")
                return False
            if not self.medium.cca_busy(self.xcvr):
                yield self.env.pooled_timeout(TURNAROUND)
                if not self.xcvr.enabled:
                    self.monitor.count("mac.radio_off_drops")
                    if tracer.enabled:
                        tracer.emit("mac.drop", self.env.now,
                                    node=self.node_id,
                                    packet=frame.trace_id,
                                    reason="radio_off")
                    return False
                if tracer.enabled:
                    tracer.emit("mac.tx", self.env.now, node=self.node_id,
                                packet=frame.trace_id, dst=frame.dst,
                                attempts=attempt + 1)
                yield self.medium.transmit(self.xcvr, frame)
                return True
            be = min(be + 1, MAX_BE)
            self.monitor.count("mac.busy_assessments")
            if tracer.enabled:
                tracer.emit("mac.cca_busy", self.env.now, node=self.node_id,
                            packet=frame.trace_id, attempt=attempt)
        if tracer.enabled:
            tracer.emit("mac.drop", self.env.now, node=self.node_id,
                        packet=frame.trace_id, reason="cca_exhausted")
        return False

    # -- receive path ------------------------------------------------------------

    def _on_arrival(self, arrival: FrameArrival) -> None:
        """Filter by MAC address and hand good frames up the stack.

        Corrupted frames are passed up too: the communication stack's CRC
        checker (Figure 2 of the paper) is the component responsible for
        discarding them.
        """
        frame = arrival.frame
        if not frame.is_broadcast and frame.dst != self.node_id:
            c = self._c_filtered
            if c is None:
                c = self._c_filtered = self.monitor.counter_obj(
                    "mac.filtered_frames")
            c.value += 1
            return
        c = self._c_received
        if c is None:
            c = self._c_received = self.monitor.counter_obj(
                "mac.received_frames")
        c.value += 1
        if self._receive_handler is not None:
            self._receive_handler(arrival)
