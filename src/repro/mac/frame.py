"""802.15.4 frame layout and airtime arithmetic.

The MAC layer treats the network-layer packet as an opaque byte string
(the paper's stack keeps packets as "the only shared data between
layers").  What the MAC adds is addressing, a sequence number, a traffic
class used by the monitor, and the on-air size accounting that drives
frame airtime — which in turn drives every delay the evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.units import BYTE_AIRTIME

__all__ = [
    "BROADCAST",
    "PHY_OVERHEAD_BYTES",
    "MAC_HEADER_BYTES",
    "FCS_BYTES",
    "FRAME_OVERHEAD_BYTES",
    "MAX_PAYLOAD_BYTES",
    "Frame",
    "frame_airtime",
]

#: MAC broadcast address.
BROADCAST = 0xFFFF

#: PHY synchronisation header: 4-byte preamble + 1-byte SFD + 1-byte length.
PHY_OVERHEAD_BYTES = 6
#: MAC header: frame control (2) + sequence (1) + PAN/addresses (6).
MAC_HEADER_BYTES = 9
#: Frame check sequence appended by the radio.
FCS_BYTES = 2
#: Total per-frame on-air overhead.
FRAME_OVERHEAD_BYTES = PHY_OVERHEAD_BYTES + MAC_HEADER_BYTES + FCS_BYTES
#: 802.15.4 caps PSDU at 127 bytes; minus MAC header and FCS.
MAX_PAYLOAD_BYTES = 127 - MAC_HEADER_BYTES - FCS_BYTES

_seq_counter = count()


def frame_airtime(payload_bytes: int) -> float:
    """On-air duration of a frame carrying ``payload_bytes`` of payload."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload size {payload_bytes}")
    return (FRAME_OVERHEAD_BYTES + payload_bytes) * BYTE_AIRTIME


@dataclass
class Frame:
    """One MAC frame.

    ``payload`` holds the serialised network-layer packet; ``kind`` is a
    traffic-class label consumed only by the monitor (so the overhead
    bench can count control packets the way Figure 7 does).
    """

    src: int
    dst: int
    payload: bytes
    kind: str = "data"
    #: Network-layer port carried inside the payload, surfaced here only
    #: for the monitor's packet log (the MAC itself never reads it).
    port: int | None = None
    seq: int = field(default_factory=lambda: next(_seq_counter))
    #: Lifecycle key of the carried packet (``origin:port:seq``), stamped
    #: by the stack when tracing is enabled so MAC/radio trace events tie
    #: back to the network packet.  Metadata only — never serialised, and
    #: deterministic unlike ``seq`` (whose counter is process-global).
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError(
                f"frame payload must be bytes, got {type(self.payload).__name__}"
            )
        self.payload = bytes(self.payload)
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {len(self.payload)} B exceeds 802.15.4 limit of "
                f"{MAX_PAYLOAD_BYTES} B"
            )

    @property
    def payload_bytes(self) -> int:
        """Length of the carried payload in bytes."""
        return len(self.payload)

    @property
    def size_bytes(self) -> int:
        """Total on-air size including PHY/MAC overhead."""
        return FRAME_OVERHEAD_BYTES + len(self.payload)

    @property
    def airtime(self) -> float:
        """On-air duration of this frame in seconds."""
        return frame_airtime(len(self.payload))

    @property
    def is_broadcast(self) -> bool:
        """True if addressed to every listener."""
        return self.dst == BROADCAST
