"""Bounded MAC transmit queue.

The queue matters to the reproduction twice over: its *occupancy* is one
of the observables the ping command reports (``Queue = 0/0`` in the
paper's sample output), and its hold-and-release behaviour under a busy
channel is the stated cause of Figure 5's back-to-back report arrivals
("the underlying routing protocol has a queueing mechanism to hold
packets temporarily").
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.sim.engine import Environment
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

__all__ = ["TxQueue"]


class TxQueue:
    """FIFO of frames with event-based consumption and drop accounting."""

    def __init__(self, env: Environment, capacity: int = 8, *,
                 tracer: "Tracer | None" = None, owner: int | None = None):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        #: Frames rejected because the queue was full.
        self.drops = 0
        #: Frames accepted in total.
        self.enqueued = 0
        #: High-water mark of the occupancy.
        self.peak_occupancy = 0
        #: Lifecycle tracer and owning node id (None when untraced).
        self._tracer = tracer
        self._owner = owner

    @property
    def occupancy(self) -> int:
        """Number of frames currently waiting (the ping report's value)."""
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """True when another ``put`` would be rejected."""
        return len(self._items) >= self.capacity

    def put(self, item: object) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) if full."""
        tracer = self._tracer
        if self._getters:
            # A consumer is already waiting: hand over directly.
            self.enqueued += 1
            self._getters.popleft().succeed(item)
            if tracer is not None and tracer.enabled:
                tracer.emit("mac.enqueue", self.env.now, node=self._owner,
                            packet=getattr(item, "trace_id", None),
                            occupancy=0)
            return True
        if len(self._items) >= self.capacity:
            self.drops += 1
            if tracer is not None and tracer.enabled:
                tracer.emit("mac.queue_drop", self.env.now, node=self._owner,
                            packet=getattr(item, "trace_id", None),
                            reason="queue_full", occupancy=len(self._items))
            return False
        self.enqueued += 1
        self._items.append(item)
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        if tracer is not None and tracer.enabled:
            tracer.emit("mac.enqueue", self.env.now, node=self._owner,
                        packet=getattr(item, "trace_id", None),
                        occupancy=len(self._items))
        return True

    def get(self) -> Event:
        """An event that yields the next frame (immediately if available)."""
        event = Event(self.env)
        if self._items:
            item = self._items.popleft()
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.emit("mac.dequeue", self.env.now, node=self._owner,
                            packet=getattr(item, "trace_id", None),
                            occupancy=len(self._items))
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def set_capacity(self, capacity: int) -> None:
        """Re-bound the queue (the fault engine's ``queue_saturate`` hook).

        Frames already waiting above a lowered bound stay queued — the
        clamp starts rejecting new work, it does not destroy old work —
        so occupancy drains through the MAC as usual while ``put``
        answers False, exactly the congested-mote symptom the diagnosis
        commands report as a full queue.
        """
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity

    def clear(self) -> list:
        """Drop all queued frames (used when a node's radio is disabled)."""
        dropped = list(self._items)
        self._items.clear()
        return dropped

    def snapshot(self) -> _t.Mapping[str, int]:
        """Counters for diagnostics and tests."""
        return {
            "occupancy": self.occupancy,
            "capacity": self.capacity,
            "enqueued": self.enqueued,
            "drops": self.drops,
            "peak_occupancy": self.peak_occupancy,
        }
