"""PartitionedMedium: component structure and bit-identical parity.

The facade's contract (see ``repro.radio.partition``): partitioning a
deployment into per-component child media changes *nothing* about the
simulation — with uniform transmit power, the packet log of a
partitioned run is byte-identical to the single-medium run, because a
component's in-range candidate sets equal the single medium's.
"""

import pytest

from repro.core.deploy import deploy_liteview
from repro.radio import PartitionedMedium
from repro.workloads import build_city
from repro.workloads.scenarios import (
    QUIET_PROPAGATION,
    REALISTIC_PROPAGATION,
)


def _two_islands(partitioned: bool, *, bridges: bool = False,
                 propagation: dict = QUIET_PROPAGATION, seed: int = 11):
    """Two 8-node districts, 1500 m apart: disconnected unless bridged."""
    return build_city(2, 1, 8, pitch=1500.0, spacing=45.0,
                      bridges=bridges, seed=seed,
                      propagation_kwargs=propagation,
                      partitioned=partitioned)


def test_partitions_reflect_radio_islands():
    testbed = _two_islands(True)
    medium = testbed.medium
    assert isinstance(medium, PartitionedMedium)
    parts = medium.partitions()
    assert len(parts) == 2
    assert [len(p) for p in parts] == [8, 8]
    # Every node lands in exactly one component.
    assert sorted(i for p in parts for i in p) == \
        [n.id for n in testbed.nodes()]


def test_bridged_city_is_one_component():
    # Realistic propagation: the conservative range bound (~1.1 km)
    # reaches the mid-pitch bridge relay; under quiet propagation the
    # bound is ~100 m and the relay would be its own island.
    testbed = _two_islands(True, bridges=True,
                           propagation=REALISTIC_PROPAGATION)
    assert len(testbed.medium.partitions()) == 1


@pytest.mark.parametrize("propagation", [
    pytest.param(QUIET_PROPAGATION, id="quiet"),
    pytest.param(REALISTIC_PROPAGATION, id="realistic"),
])
def test_partitioned_run_is_bit_identical(propagation):
    digests = []
    counters = []
    for partitioned in (False, True):
        testbed = _two_islands(partitioned, propagation=propagation)
        deploy_liteview(testbed, warm_up=30.0)
        digests.append(testbed.monitor.packet_digest())
        counters.append(testbed.monitor.counters)
    assert digests[0] == digests[1]
    assert counters[0] == counters[1]


def test_partition_facade_aggregates_candidate_accounting():
    testbed = _two_islands(True)
    deploy_liteview(testbed, warm_up=20.0)
    medium = testbed.medium
    assert medium.candidates_considered > 0
    # Children track their own totals; the facade sums them, and the
    # shared monitor gauges carry the same numbers.
    registry = testbed.monitor.registry
    assert registry.gauge("medium.candidates.considered").value == \
        medium.candidates_considered
    assert registry.gauge("medium.candidates.pruned").value == \
        medium.candidates_pruned
    # The other island never enters a child's books at all: each child
    # holds only its own component's radios (plus the workstation in
    # whichever district it attached to).
    parts = medium.partitions()
    assert len(parts) == 2
    assert sum(len(p) for p in parts) == len(testbed.nodes())
