"""PartitionedMedium: component structure and bit-identical parity.

The facade's contract (see ``repro.radio.partition``): partitioning a
deployment into per-component child media changes *nothing* about the
simulation — with uniform transmit power, the packet log of a
partitioned run is byte-identical to the single-medium run, because a
component's in-range candidate sets equal the single medium's.
"""

import pytest

from repro.core.deploy import deploy_liteview
from repro.radio import PartitionedMedium
from repro.workloads import build_city
from repro.workloads.scenarios import (
    QUIET_PROPAGATION,
    REALISTIC_PROPAGATION,
)


def _two_islands(partitioned: bool, *, bridges: bool = False,
                 propagation: dict = QUIET_PROPAGATION, seed: int = 11):
    """Two 8-node districts, 1500 m apart: disconnected unless bridged."""
    return build_city(2, 1, 8, pitch=1500.0, spacing=45.0,
                      bridges=bridges, seed=seed,
                      propagation_kwargs=propagation,
                      partitioned=partitioned)


def test_partitions_reflect_radio_islands():
    testbed = _two_islands(True)
    medium = testbed.medium
    assert isinstance(medium, PartitionedMedium)
    parts = medium.partitions()
    assert len(parts) == 2
    assert [len(p) for p in parts] == [8, 8]
    # Every node lands in exactly one component.
    assert sorted(i for p in parts for i in p) == \
        [n.id for n in testbed.nodes()]


def test_bridged_city_is_one_component():
    # Realistic propagation: the conservative range bound (~1.1 km)
    # reaches the mid-pitch bridge relay; under quiet propagation the
    # bound is ~100 m and the relay would be its own island.
    testbed = _two_islands(True, bridges=True,
                           propagation=REALISTIC_PROPAGATION)
    assert len(testbed.medium.partitions()) == 1


@pytest.mark.parametrize("propagation", [
    pytest.param(QUIET_PROPAGATION, id="quiet"),
    pytest.param(REALISTIC_PROPAGATION, id="realistic"),
])
def test_partitioned_run_is_bit_identical(propagation):
    digests = []
    counters = []
    for partitioned in (False, True):
        testbed = _two_islands(partitioned, propagation=propagation)
        deploy_liteview(testbed, warm_up=30.0)
        digests.append(testbed.monitor.packet_digest())
        counters.append(testbed.monitor.counters)
    assert digests[0] == digests[1]
    assert counters[0] == counters[1]


# -- time-varying geometry: merges, splits, batching ------------------------


def test_move_across_gap_merges_components():
    """A node walking into the other island's radio range must merge the
    components *immediately* — a missed merge would wrongly silence real
    links (unlike a missed split, which is only coarser than optimal)."""
    testbed = _two_islands(True)
    medium = testbed.medium
    assert len(medium.partitions()) == 2
    builds = medium.partition_builds

    mover = testbed.nodes()[0]
    target = testbed.nodes()[-1]
    mover.position = (target.position[0] + 10.0, target.position[1])

    parts = medium.partitions()
    assert medium.partition_builds == builds + 1
    assert sorted(len(p) for p in parts) == [7, 9]
    merged = next(p for p in parts if mover.id in p)
    assert len(merged) == 9 and target.id in merged


def test_intra_component_moves_batch_until_rebalance():
    """Drift inside a component advances two grid buckets per move, not a
    union-find: the partition is rebuilt only at the rebalance cadence."""
    testbed = _two_islands(True)
    medium = testbed.medium
    medium.repartition_every = 8
    medium.partitions()
    builds = medium.partition_builds

    mover = testbed.nodes()[0]
    x, y = mover.position
    for step in range(1, 8):
        mover.position = (x + 0.1 * step, y)
        medium.partitions()
    assert medium.partition_builds == builds  # 7 moves: all batched

    mover.position = (x, y)  # 8th move hits the cadence
    medium.partitions()
    assert medium.partition_builds == builds + 1


def test_split_defers_but_still_prunes_exactly():
    """A node drifting out of its island leaves the component map coarse
    (one oversized component) until the rebalance — but the stale map is
    still physically exact, because the child's own spatial pruning skips
    the now-out-of-range member.  The rebalance then splits it off."""
    testbed = _two_islands(True)
    medium = testbed.medium
    medium.repartition_every = 4
    assert len(medium.partitions()) == 2
    mover = testbed.nodes()[0]
    x, y = mover.position

    # One big hop straight down: far from both islands, near neither.
    mover.position = (x, y - 800.0)
    parts = medium.partitions()
    assert len(parts) == 2          # coarse: mover still filed under A
    assert mover.id in parts[0]

    for step in range(1, 4):        # drift until the cadence triggers
        mover.position = (x + 0.1 * step, y - 800.0)
        medium.partitions()
    parts = medium.partitions()
    assert len(parts) == 3          # rebalanced: the loner split off
    assert [mover.id] in parts


def test_mobile_partitioned_run_is_bit_identical():
    """The end-to-end merge-correctness proof: a node crossing the gap
    mid-run produces byte-identical packet logs partitioned or not."""
    digests = []
    counters = []
    for partitioned in (False, True):
        testbed = _two_islands(partitioned)
        mover = testbed.nodes()[2]
        target = testbed.nodes()[-3]

        def cross(mover=mover, target=target):
            mover.position = (target.position[0] + 12.0,
                              target.position[1] + 3.0)

        testbed.env.call_at(12.0, cross)
        deploy_liteview(testbed, warm_up=30.0)
        digests.append(testbed.monitor.packet_digest())
        counters.append(testbed.monitor.counters)
    assert digests[0] == digests[1]
    assert counters[0] == counters[1]


def test_partition_facade_aggregates_candidate_accounting():
    testbed = _two_islands(True)
    deploy_liteview(testbed, warm_up=20.0)
    medium = testbed.medium
    assert medium.candidates_considered > 0
    # Children track their own totals; the facade sums them, and the
    # shared monitor gauges carry the same numbers.
    registry = testbed.monitor.registry
    assert registry.gauge("medium.candidates.considered").value == \
        medium.candidates_considered
    assert registry.gauge("medium.candidates.pruned").value == \
        medium.candidates_pruned
    # The other island never enters a child's books at all: each child
    # holds only its own component's radios (plus the workstation in
    # whichever district it attached to).
    parts = medium.partitions()
    assert len(parts) == 2
    assert sum(len(p) for p in parts) == len(testbed.nodes())
