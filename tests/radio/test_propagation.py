"""Unit tests for the propagation model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio import LogDistancePropagation, distance_matrix
from repro.sim import RngRegistry


def make_model(**kw):
    return LogDistancePropagation(RngRegistry(42), **kw)


def test_reference_loss_at_reference_distance():
    model = make_model(reference_loss_db=40.0, reference_distance_m=1.0)
    assert model.deterministic_loss_db(1.0) == 40.0


def test_loss_increases_with_distance():
    model = make_model()
    assert model.deterministic_loss_db(20.0) > model.deterministic_loss_db(5.0)


def test_exponent_controls_slope():
    """10x the distance adds 10*n dB."""
    model = make_model(exponent=3.0)
    d1 = model.deterministic_loss_db(2.0)
    d10 = model.deterministic_loss_db(20.0)
    assert d10 - d1 == pytest.approx(30.0)


def test_near_field_clamps_to_reference():
    model = make_model(reference_loss_db=40.0, reference_distance_m=1.0)
    assert model.deterministic_loss_db(0.01) == 40.0


@given(st.floats(0.1, 1000.0), st.floats(0.1, 1000.0))
def test_deterministic_loss_monotone(d1, d2):
    model = make_model()
    lo, hi = sorted((d1, d2))
    assert model.deterministic_loss_db(lo) <= model.deterministic_loss_db(hi)


def test_shadowing_is_static_per_link():
    model = make_model()
    first = model.link_shadowing_db(1, 2)
    assert model.link_shadowing_db(1, 2) == first


def test_shadowing_is_directional():
    """Forward and backward draws are independent — the source of the
    asymmetric links Figure 6 exhibits."""
    model = make_model(shadowing_sigma_db=6.0)
    forward = [model.link_shadowing_db(i, i + 100) for i in range(50)]
    backward = [model.link_shadowing_db(i + 100, i) for i in range(50)]
    assert any(abs(f - b) > 0.5 for f, b in zip(forward, backward))


def test_shadowing_reproducible_across_registries():
    a = LogDistancePropagation(RngRegistry(7))
    b = LogDistancePropagation(RngRegistry(7))
    assert a.link_shadowing_db(3, 4) == b.link_shadowing_db(3, 4)


def test_set_link_shadowing_overrides():
    model = make_model()
    model.set_link_shadowing_db(1, 2, 100.0)  # break the link
    assert model.link_shadowing_db(1, 2) == 100.0


def test_sample_loss_includes_fading_jitter():
    model = make_model(fading_sigma_db=2.0)
    draws = {model.sample_loss_db(1, 2, 10.0) for _ in range(10)}
    assert len(draws) > 1


def test_zero_fading_sample_is_deterministic():
    model = make_model(fading_sigma_db=0.0)
    draws = {model.sample_loss_db(1, 2, 10.0) for _ in range(5)}
    assert len(draws) == 1


def test_received_power_decreases_with_lower_tx_power():
    model = make_model(fading_sigma_db=0.0)
    high = model.received_power_dbm(0.0, 1, 2, 10.0)
    low = model.received_power_dbm(-10.0, 1, 2, 10.0)
    assert high - low == pytest.approx(10.0)


def test_mean_received_power_has_no_fading():
    model = make_model(fading_sigma_db=5.0)
    values = {model.mean_received_power_dbm(0.0, 1, 2, 10.0)
              for _ in range(5)}
    assert len(values) == 1


def test_distance_matrix_shape_and_symmetry():
    positions = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
    dm = distance_matrix(positions)
    assert dm.shape == (3, 3)
    assert np.allclose(dm, dm.T)
    assert np.allclose(np.diag(dm), 0.0)
    assert dm[0, 1] == pytest.approx(5.0)


def test_distance_matrix_rejects_bad_shape():
    with pytest.raises(ValueError):
        distance_matrix(np.zeros((3, 3)))


def test_loss_matrix_matches_scalar_path():
    model = make_model()
    positions = np.array([[0.0, 0.0], [10.0, 0.0]])
    lm = model.loss_matrix(positions)
    assert lm[0, 1] == pytest.approx(model.deterministic_loss_db(10.0))


@pytest.mark.parametrize("kw", [
    {"reference_distance_m": 0.0},
    {"exponent": -1.0},
    {"shadowing_sigma_db": -1.0},
    {"fading_sigma_db": -0.5},
])
def test_constructor_validation(kw):
    with pytest.raises(ValueError):
        make_model(**kw)
