"""Unit and property tests for the 802.15.4 link model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio import bit_error_rate, packet_reception_ratio, snr_db_for_prr


def test_high_snr_is_nearly_error_free():
    assert bit_error_rate(20.0) < 1e-9
    assert packet_reception_ratio(20.0, 64) > 0.999


def test_low_snr_is_hopeless():
    assert packet_reception_ratio(-10.0, 64) < 0.01


def test_ber_bounds():
    for snr in (-30.0, -5.0, 0.0, 5.0, 30.0):
        assert 0.0 <= bit_error_rate(snr) <= 0.5


@given(st.floats(-20.0, 30.0), st.floats(-20.0, 30.0))
def test_ber_monotone_decreasing(a, b):
    lo, hi = sorted((a, b))
    assert bit_error_rate(hi) <= bit_error_rate(lo) + 1e-12


@given(st.floats(-20.0, 30.0))
def test_prr_is_probability(snr):
    prr = packet_reception_ratio(snr, 32)
    assert 0.0 <= prr <= 1.0


@given(st.floats(-20.0, 30.0), st.integers(1, 120))
def test_longer_frames_are_harder(snr, length):
    shorter = packet_reception_ratio(snr, length)
    longer = packet_reception_ratio(snr, length + 10)
    assert longer <= shorter + 1e-12


def test_waterfall_region_location():
    """The DSSS PRR waterfall sits in roughly -3..+1 dB (processing gain
    lets 802.15.4 decode near the noise floor)."""
    assert packet_reception_ratio(-4.0, 50) < 0.01
    assert packet_reception_ratio(1.0, 50) > 0.99
    # The 50% crossing lies between -2 and 0 dB.
    assert packet_reception_ratio(-2.0, 50) < 0.5 < packet_reception_ratio(0.0, 50)


def test_vectorised_matches_scalar():
    snrs = np.array([-5.0, 0.0, 3.0, 10.0])
    vec = packet_reception_ratio(snrs, 40)
    for i, snr in enumerate(snrs):
        assert vec[i] == pytest.approx(packet_reception_ratio(float(snr), 40))


def test_vectorised_ber_shape():
    snrs = np.linspace(-10, 20, 101)
    assert bit_error_rate(snrs).shape == (101,)


def test_prr_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        packet_reception_ratio(5.0, 0)


def test_snr_for_prr_inverts_the_curve():
    snr = snr_db_for_prr(0.95, 64)
    assert packet_reception_ratio(snr, 64) == pytest.approx(0.95, abs=0.01)


def test_snr_for_prr_higher_target_needs_more_snr():
    assert snr_db_for_prr(0.99, 64) > snr_db_for_prr(0.5, 64)


@pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
def test_snr_for_prr_rejects_bad_target(bad):
    with pytest.raises(ValueError):
        snr_db_for_prr(bad, 64)
