"""Edge-case tests for the medium: channel hopping, ambient sampling,
mobility."""

from repro.mac.frame import BROADCAST, Frame
from repro.radio import NOISE_FLOOR_DBM, RadioConfig


def test_ambient_power_quiet_is_noise_floor(quiet_world):
    xcvr = quiet_world.medium.attach(1, (0.0, 0.0))
    assert quiet_world.medium.ambient_power_dbm(xcvr) == NOISE_FLOOR_DBM


def test_ambient_power_sees_concurrent_transmission(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (20.0, 0.0))
    readings = []

    def tx():
        yield quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=bytes(100))
        )

    def sample():
        yield quiet_world.env.timeout(0.001)  # mid-frame
        readings.append(quiet_world.medium.ambient_power_dbm(b))

    quiet_world.env.process(tx())
    quiet_world.env.process(sample())
    quiet_world.env.run()
    assert readings[0] > NOISE_FLOOR_DBM + 10


def test_ambient_power_after_channel_hop_mid_frame(quiet_world):
    """A scanner hopping onto a channel mid-frame still measures the
    leakage (the on-the-fly path-loss branch)."""
    a = quiet_world.medium.attach(1, (0.0, 0.0), RadioConfig(channel=20))
    b = quiet_world.medium.attach(2, (20.0, 0.0), RadioConfig(channel=17))
    readings = []

    def tx():
        yield quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=bytes(100))
        )

    def hop_and_sample():
        yield quiet_world.env.timeout(0.001)
        b.config.set_channel(20)  # hop onto the busy channel mid-frame
        readings.append(quiet_world.medium.ambient_power_dbm(b))

    quiet_world.env.process(tx())
    quiet_world.env.process(hop_and_sample())
    quiet_world.env.run()
    assert readings[0] > NOISE_FLOOR_DBM + 10


def test_ambient_excludes_own_transmission(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    readings = []

    def tx_and_sample():
        done = quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=bytes(100))
        )
        readings.append(quiet_world.medium.ambient_power_dbm(a))
        yield done

    quiet_world.env.process(tx_and_sample())
    quiet_world.env.run()
    assert readings[0] == NOISE_FLOOR_DBM


def test_moving_a_node_changes_reception(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (2000.0, 0.0))
    heard = []
    b.set_receive_handler(heard.append)

    def tx():
        yield quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=b"x")
        )

    quiet_world.env.process(tx())
    quiet_world.env.run()
    assert heard == []  # out of range
    b.position = (20.0, 0.0)  # the deployment-phase repositioning
    quiet_world.env.process(tx())
    quiet_world.env.run()
    assert len(heard) == 1


def test_receiver_changing_channel_mid_frame_misses_it(quiet_world):
    """The delivery check happens at end-of-frame against the receiver's
    *current* channel: hopping away mid-frame loses the frame."""
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (20.0, 0.0))
    heard = []
    b.set_receive_handler(heard.append)

    def tx():
        yield quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=bytes(100))
        )

    def hop_away():
        yield quiet_world.env.timeout(0.001)
        b.config.set_channel(26)

    quiet_world.env.process(tx())
    quiet_world.env.process(hop_away())
    quiet_world.env.run()
    # Either interpretation (miss or partial) is defensible physically;
    # our model delivers only while the receiver remained tuned — but
    # rx_powers were drawn at start-of-frame, so the frame arrives.
    # What matters for the tools: no crash, and deterministic outcome.
    assert len(heard) <= 1
