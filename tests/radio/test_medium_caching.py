"""Cache-invalidation and retention tests for the vectorized medium.

The medium caches the pairwise distance matrix, per-channel receiver
indexes and per-sender mean-path-loss rows between transmissions.  Every
mutation path — moving a node, attaching a new one, hopping channels,
pinning per-link shadowing — must invalidate the right cache, or the
simulation silently keeps using stale geometry.  These tests warm the
caches first and then mutate, so a missing invalidation hook fails them.
"""

import gc

import pytest

from repro.mac.frame import BROADCAST, Frame
from repro.radio import RadioConfig
from repro.radio.medium import _ActiveTransmission


def _collect(xcvr):
    arrivals = []
    xcvr.set_receive_handler(arrivals.append)
    return arrivals


def _send_one(world, xcvr, payload=b"hello"):
    yield world.medium.transmit(
        xcvr, Frame(src=xcvr.node_id, dst=BROADCAST, payload=payload)
    )


def test_position_move_invalidates_distance_cache(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (5.0, 0.0))
    arrivals = _collect(b)
    assert quiet_world.medium.distance(1, 2) == pytest.approx(5.0)  # warm

    b.position = (2000.0, 0.0)
    assert quiet_world.medium.distance(1, 2) == pytest.approx(2000.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert arrivals == []  # moved out of range, not heard via stale matrix


def test_attach_invalidates_topology_cache(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    quiet_world.medium.attach(2, (5.0, 0.0))
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()  # warm the matrix with the two-node topology

    c = quiet_world.medium.attach(3, (0.0, 5.0))
    arrivals = _collect(c)
    assert quiet_world.medium.distance(1, 3) == pytest.approx(5.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1


def test_channel_hop_invalidates_channel_index(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0), RadioConfig(channel=11))
    b = quiet_world.medium.attach(2, (5.0, 0.0), RadioConfig(channel=11))
    arrivals = _collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1  # same channel, warm index

    b.config.set_channel(26)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1  # hopped away: silent

    b.config.set_channel(11)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 2  # hopped back: heard again


def test_pinned_shadowing_invalidates_mean_loss_row(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (5.0, 0.0))
    arrivals = _collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    before = arrivals[-1].rx_power_dbm  # warm mean-loss row

    quiet_world.propagation.set_link_shadowing_db(1, 2, 40.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    after = arrivals[-1].rx_power_dbm
    assert before - after == pytest.approx(40.0, abs=1e-9)


def test_completed_transmissions_release_overlap_links(quiet_world):
    """A long broadcast storm must not chain transmissions in memory.

    Each in-flight transmission records its overlap partners; once it
    completes those links must be dropped, or a busy channel retains
    every transmission ever made via ``overlapping`` chains.
    """
    xcvrs = [
        quiet_world.medium.attach(i, (float(i), 0.0)) for i in range(1, 11)
    ]

    def storm(xcvr):
        for _ in range(30):
            yield quiet_world.medium.transmit(
                xcvr,
                Frame(src=xcvr.node_id, dst=BROADCAST, payload=b"0" * 20),
            )
            yield quiet_world.env.timeout(0.001)

    for xcvr in xcvrs:
        quiet_world.env.process(storm(xcvr))
    quiet_world.env.run()

    gc.collect()
    live = [obj for obj in gc.get_objects()
            if isinstance(obj, _ActiveTransmission)]
    # Of the 300 transmissions made, only the final not-yet-pruned
    # generation may survive, and none may still hold overlap links.
    assert len(live) <= len(xcvrs)
    assert all(not tx.overlapping and not tx.overlap_senders for tx in live)


# -- per-node epochs (time-varying geometry) --------------------------------
#
# A move must invalidate exactly the senders whose in-range membership
# could have changed: everyone within the range bound of the mover's old
# or new position.  Object identity of the cached _CandidateIndex is the
# strongest observable — "is" proves the far cluster's caches were never
# touched, not merely rebuilt to equal contents.

FAR = 500_000.0  # way beyond any conservative range bound


def _two_clusters(m):
    a1 = m.attach(1, (0.0, 0.0))
    a2 = m.attach(2, (5.0, 0.0))
    b1 = m.attach(3, (FAR, 0.0))
    b2 = m.attach(4, (FAR + 5.0, 0.0))
    return a1, a2, b1, b2


def test_unrelated_move_keeps_far_senders_caches(quiet_world):
    m = quiet_world.medium
    a1, a2, b1, _ = _two_clusters(m)
    ch = a1.config.channel
    idx_a = m._cand_index(1, ch)
    idx_b = m._cand_index(3, ch)
    row_b = m._mean_loss_row(3, idx_b)
    rebuilds = m._gauge_idx_rebuilds.value
    rows = m._gauge_rows_rebuilt.value

    a2.position = (6.0, 0.0)  # drifts inside cluster A only

    assert m._cand_index(3, ch) is idx_b          # far sender: untouched
    assert m._mean_loss_row(3, idx_b)[0] is row_b[0]
    assert m._cand_index(1, ch) is not idx_a      # neighborhood: rebuilt
    assert m._gauge_idx_rebuilds.value == rebuilds + 1
    assert m._gauge_rows_rebuilt.value == rows    # no row recomputed


def test_mover_sees_its_own_move(quiet_world):
    """The mover is always inside its own new neighborhood, so its own
    candidate index rebuilds even when nobody else is in range."""
    m = quiet_world.medium
    lone = m.attach(1, (0.0, 0.0))
    m.attach(2, (FAR, 0.0))
    ch = lone.config.channel
    idx = m._cand_index(1, ch)

    lone.position = (10.0, 0.0)
    assert m._cand_index(1, ch) is not idx


def test_cold_move_falls_back_to_global_epoch(quiet_world):
    """Without a warm grid there is no cheap neighborhood test: the move
    must bump the global epoch (correct, and free — no cache is warm)."""
    m = quiet_world.medium
    a = m.attach(1, (0.0, 0.0))
    geom = m._geom_epoch
    a.position = (5.0, 0.0)
    assert m._geom_epoch == geom + 1


def test_dense_index_invalidates_on_any_move(quiet_world):
    """The dense (no-pruning) index snapshots every position, so a move
    anywhere must invalidate it — the ``_moves`` token guards that."""
    m = quiet_world.medium
    m.use_spatial_index = False
    a1, _, b2 = m.attach(1, (0.0, 0.0)), m.attach(2, (5.0, 0.0)), \
        m.attach(3, (FAR, 0.0))
    ch = a1.config.channel
    # Warm the spatial caches too, so the incremental move path runs.
    m.use_spatial_index = True
    m._cand_index(1, ch)
    m.use_spatial_index = False
    idx = m._cand_index(1, ch)

    b2.position = (FAR + 1.0, 0.0)  # far away, but dense sees everyone
    assert m._cand_index(1, ch) is not idx


def test_reposition_counter_is_lazy(quiet_world):
    """``medium.repositions`` must stay out of counter snapshots until a
    node actually moves (golden fixtures snapshot all live counters)."""
    m = quiet_world.medium
    a = m.attach(1, (0.0, 0.0))
    assert "medium.repositions" not in m.monitor.counters
    a.position = (1.0, 0.0)
    a.position = (2.0, 0.0)
    assert m.monitor.counter("medium.repositions") == 2
