"""Cache-invalidation and retention tests for the vectorized medium.

The medium caches the pairwise distance matrix, per-channel receiver
indexes and per-sender mean-path-loss rows between transmissions.  Every
mutation path — moving a node, attaching a new one, hopping channels,
pinning per-link shadowing — must invalidate the right cache, or the
simulation silently keeps using stale geometry.  These tests warm the
caches first and then mutate, so a missing invalidation hook fails them.
"""

import gc

import pytest

from repro.mac.frame import BROADCAST, Frame
from repro.radio import RadioConfig
from repro.radio.medium import _ActiveTransmission


def _collect(xcvr):
    arrivals = []
    xcvr.set_receive_handler(arrivals.append)
    return arrivals


def _send_one(world, xcvr, payload=b"hello"):
    yield world.medium.transmit(
        xcvr, Frame(src=xcvr.node_id, dst=BROADCAST, payload=payload)
    )


def test_position_move_invalidates_distance_cache(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (5.0, 0.0))
    arrivals = _collect(b)
    assert quiet_world.medium.distance(1, 2) == pytest.approx(5.0)  # warm

    b.position = (2000.0, 0.0)
    assert quiet_world.medium.distance(1, 2) == pytest.approx(2000.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert arrivals == []  # moved out of range, not heard via stale matrix


def test_attach_invalidates_topology_cache(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    quiet_world.medium.attach(2, (5.0, 0.0))
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()  # warm the matrix with the two-node topology

    c = quiet_world.medium.attach(3, (0.0, 5.0))
    arrivals = _collect(c)
    assert quiet_world.medium.distance(1, 3) == pytest.approx(5.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1


def test_channel_hop_invalidates_channel_index(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0), RadioConfig(channel=11))
    b = quiet_world.medium.attach(2, (5.0, 0.0), RadioConfig(channel=11))
    arrivals = _collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1  # same channel, warm index

    b.config.set_channel(26)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1  # hopped away: silent

    b.config.set_channel(11)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 2  # hopped back: heard again


def test_pinned_shadowing_invalidates_mean_loss_row(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (5.0, 0.0))
    arrivals = _collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    before = arrivals[-1].rx_power_dbm  # warm mean-loss row

    quiet_world.propagation.set_link_shadowing_db(1, 2, 40.0)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    after = arrivals[-1].rx_power_dbm
    assert before - after == pytest.approx(40.0, abs=1e-9)


def test_completed_transmissions_release_overlap_links(quiet_world):
    """A long broadcast storm must not chain transmissions in memory.

    Each in-flight transmission records its overlap partners; once it
    completes those links must be dropped, or a busy channel retains
    every transmission ever made via ``overlapping`` chains.
    """
    xcvrs = [
        quiet_world.medium.attach(i, (float(i), 0.0)) for i in range(1, 11)
    ]

    def storm(xcvr):
        for _ in range(30):
            yield quiet_world.medium.transmit(
                xcvr,
                Frame(src=xcvr.node_id, dst=BROADCAST, payload=b"0" * 20),
            )
            yield quiet_world.env.timeout(0.001)

    for xcvr in xcvrs:
        quiet_world.env.process(storm(xcvr))
    quiet_world.env.run()

    gc.collect()
    live = [obj for obj in gc.get_objects()
            if isinstance(obj, _ActiveTransmission)]
    # Of the 300 transmissions made, only the final not-yet-pruned
    # generation may survive, and none may still hold overlap links.
    assert len(live) <= len(xcvrs)
    assert all(not tx.overlapping and not tx.overlap_senders for tx in live)
