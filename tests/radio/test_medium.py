"""Unit tests for the shared radio medium."""

import pytest

from repro.errors import RadioError
from repro.mac.frame import BROADCAST, Frame
from repro.radio import RadioConfig


def attach_pair(world, distance=5.0, **cfg):
    a = world.medium.attach(1, (0.0, 0.0), RadioConfig(**cfg))
    b = world.medium.attach(2, (distance, 0.0), RadioConfig(**cfg))
    return a, b


def collect(xcvr):
    arrivals = []
    xcvr.set_receive_handler(arrivals.append)
    return arrivals


def test_attach_and_lookup(world):
    a, _b = attach_pair(world)
    assert world.medium.transceiver(1) is a
    assert world.medium.node_ids() == [1, 2]


def test_double_attach_rejected(world):
    world.medium.attach(1, (0, 0))
    with pytest.raises(RadioError):
        world.medium.attach(1, (1, 1))


def test_lookup_missing_raises(world):
    with pytest.raises(RadioError):
        world.medium.transceiver(99)


def test_distance(world):
    attach_pair(world, distance=5.0)
    assert world.medium.distance(1, 2) == pytest.approx(5.0)


def test_close_nodes_hear_each_other(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    arrivals = collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert len(arrivals) == 1
    assert arrivals[0].crc_ok
    assert arrivals[0].sender == 1


def _send_one(world, xcvr, payload=b"hello", dst=BROADCAST, kind="data"):
    yield world.medium.transmit(
        xcvr, Frame(src=xcvr.node_id, dst=dst, payload=payload, kind=kind)
    )


def test_far_nodes_hear_nothing(quiet_world):
    a, b = attach_pair(quiet_world, distance=2000.0)
    arrivals = collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert arrivals == []


def test_arrival_carries_phy_observables(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    arrivals = collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    arr = arrivals[0]
    assert -128 <= arr.rssi <= 127
    assert 50 <= arr.lqi <= 110
    assert arr.rx_power_dbm > -95.0
    assert arr.sinr_db > 0


def test_lower_power_lowers_rssi(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    arrivals = collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    high = arrivals[-1].rx_power_dbm
    a.config.set_power_level(10)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    low = arrivals[-1].rx_power_dbm
    from repro.radio import power_level_to_dbm
    expected = power_level_to_dbm(31) - power_level_to_dbm(10)
    assert high - low == pytest.approx(expected, abs=0.5)


def test_different_channels_do_not_communicate(quiet_world):
    a = quiet_world.medium.attach(1, (0, 0), RadioConfig(channel=11))
    b = quiet_world.medium.attach(2, (5, 0), RadioConfig(channel=26))
    arrivals = collect(b)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert arrivals == []


def test_unicast_delivery_flag_logged(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    collect(b)
    quiet_world.env.process(_send_one(quiet_world, a, dst=2))
    quiet_world.env.run()
    [record] = quiet_world.monitor.packets
    assert record.delivered
    assert record.receiver == 2
    assert record.kind == "data"


def test_disabled_radio_does_not_receive(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    arrivals = collect(b)
    b.enabled = False
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert arrivals == []


def test_disabled_radio_cannot_transmit(quiet_world):
    a, _b = attach_pair(quiet_world)
    a.enabled = False
    with pytest.raises(RadioError):
        quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=b"x")
        )


def test_transmitter_marked_busy_during_airtime(quiet_world):
    a, _b = attach_pair(quiet_world)
    seen = []

    def sender():
        done = quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=b"0" * 50)
        )
        seen.append(a.is_transmitting)
        yield done
        seen.append(a.is_transmitting)

    quiet_world.env.process(sender())
    quiet_world.env.run()
    assert seen == [True, False]


def test_cca_sees_nearby_transmission(quiet_world):
    a, b = attach_pair(quiet_world, distance=5.0)
    busy = []

    def sender():
        yield quiet_world.medium.transmit(
            a, Frame(src=1, dst=BROADCAST, payload=b"0" * 50)
        )

    def sensor():
        yield quiet_world.env.timeout(0.0005)  # mid-frame
        busy.append(quiet_world.medium.cca_busy(b))

    quiet_world.env.process(sender())
    quiet_world.env.process(sensor())
    quiet_world.env.run()
    assert busy == [True]


def test_cca_clear_when_idle(quiet_world):
    _a, b = attach_pair(quiet_world)
    assert not quiet_world.medium.cca_busy(b)


def test_half_duplex_collision(quiet_world):
    """Two nodes transmitting simultaneously cannot hear each other."""
    a, b = attach_pair(quiet_world, distance=5.0)
    a_heard = collect(a)
    b_heard = collect(b)

    def tx(xcvr):
        yield quiet_world.medium.transmit(
            xcvr, Frame(src=xcvr.node_id, dst=BROADCAST, payload=b"0" * 50)
        )

    quiet_world.env.process(tx(a))
    quiet_world.env.process(tx(b))
    quiet_world.env.run()
    assert a_heard == [] and b_heard == []
    assert quiet_world.monitor.counter("medium.halfduplex_loss") == 2


def test_interference_degrades_third_party_reception(quiet_world):
    """A receiver between two simultaneous senders sees a collision."""
    a = quiet_world.medium.attach(1, (0.0, 0.0))
    b = quiet_world.medium.attach(2, (10.0, 0.0))
    c = quiet_world.medium.attach(3, (5.0, 0.0))
    arrivals = collect(c)

    def tx(xcvr):
        yield quiet_world.medium.transmit(
            xcvr, Frame(src=xcvr.node_id, dst=BROADCAST, payload=b"0" * 50)
        )

    quiet_world.env.process(tx(a))
    quiet_world.env.process(tx(b))
    quiet_world.env.run()
    # Equal powers at the midpoint: SINR ~ 0 dB, reception must fail.
    good = [arr for arr in arrivals if arr.crc_ok]
    assert good == []
    assert quiet_world.monitor.counter("medium.interfered_receptions") >= 1


def test_marginal_link_sometimes_corrupts_but_flags_crc(make_world):
    """Failed receptions delivered as corrupted bytes carry crc_ok=False
    and a payload that differs from the original."""
    world = make_world(seed=7, shadowing_sigma_db=0.0, fading_sigma_db=0.0)
    a = world.medium.attach(1, (0.0, 0.0))
    b = world.medium.attach(2, (93.0, 0.0))  # in the gray region at full power
    arrivals = collect(b)

    def tx():
        for _ in range(300):
            yield world.medium.transmit(
                a, Frame(src=1, dst=BROADCAST, payload=b"payload-bytes")
            )
            yield world.env.timeout(0.01)

    world.env.process(tx())
    world.env.run()
    bad = [arr for arr in arrivals if not arr.crc_ok]
    good = [arr for arr in arrivals if arr.crc_ok]
    assert good, "expected some successes on a marginal link"
    assert bad, "expected some corrupted deliveries on a marginal link"
    assert all(arr.payload != b"payload-bytes" for arr in bad)
    assert all(arr.payload == b"payload-bytes" for arr in good)


def test_monitor_counts_every_transmission(quiet_world):
    a, _b = attach_pair(quiet_world)
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.process(_send_one(quiet_world, a))
    quiet_world.env.run()
    assert quiet_world.monitor.counter("medium.transmissions") == 2
    assert len(quiet_world.monitor.packets) == 2
