"""SpatialGrid held to *exact* equality with brute force.

The medium trusts :meth:`SpatialGrid.within` to return precisely the
inclusive in-range id set, sorted ascending — candidate enumeration
order feeds the RNG draw order, so an off-by-one at a bucket boundary
would silently change simulation bytes.  These property tests therefore
compare against a brute-force scan using the *same* float arithmetic,
with strategies biased toward nodes and queries sitting exactly on cell
boundaries, and re-check after ``move`` rewrites buckets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import SpatialGrid

CELL = 50.0

#: Arbitrary coordinates mixed with exact cell-size multiples, so points
#: precisely on a bucket edge are drawn often instead of almost never.
coordinate = st.one_of(
    st.floats(min_value=-400.0, max_value=400.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=-8, max_value=8).map(lambda k: k * CELL),
)
position = st.tuples(coordinate, coordinate)

#: Radii beyond the 3x3 neighborhood (> 2 cells) exercise the widened
#: scan; exact multiples of the cell size sit on the inclusive edge.
radius = st.one_of(
    st.floats(min_value=0.0, max_value=300.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=6).map(lambda k: k * CELL),
)


def brute_force(points: dict, pos: tuple, r: float) -> list[int]:
    """The specification: inclusive Euclidean filter, ascending ids,
    written with the exact same float expression the grid uses."""
    x, y = float(pos[0]), float(pos[1])
    r2 = r * r
    out = []
    for nid, (px, py) in points.items():
        dx = px - x
        dy = py - y
        if dx * dx + dy * dy <= r2:
            out.append(nid)
    out.sort()
    return out


def populated(points: list) -> tuple[SpatialGrid, dict]:
    grid = SpatialGrid(CELL)
    table = {}
    for i, pos in enumerate(points):
        grid.insert(i, pos)
        table[i] = grid.position(i)
    return grid, table


@settings(deadline=None)
@given(points=st.lists(position, max_size=40), query=position, r=radius)
def test_within_matches_brute_force(points, query, r):
    grid, table = populated(points)
    assert grid.within(query, r) == brute_force(table, query, r)


@settings(deadline=None)
@given(points=st.lists(position, min_size=1, max_size=25),
       moves=st.lists(st.tuples(st.integers(min_value=0, max_value=24),
                                position), max_size=25),
       query=position, r=radius)
def test_within_matches_brute_force_after_moves(points, moves, query, r):
    grid, table = populated(points)
    for raw, pos in moves:
        nid = raw % len(points)
        grid.move(nid, pos)
        table[nid] = grid.position(nid)
    assert grid.within(query, r) == brute_force(table, query, r)


@settings(deadline=None)
@given(points=st.lists(position, min_size=1, max_size=25),
       removals=st.lists(st.integers(min_value=0, max_value=24),
                         max_size=25),
       query=position, r=radius)
def test_within_matches_brute_force_after_removals(points, removals,
                                                   query, r):
    grid, table = populated(points)
    for raw in removals:
        nid = raw % len(points)
        if nid in grid:
            grid.remove(nid)
            del table[nid]
    assert len(grid) == len(table)
    assert grid.within(query, r) == brute_force(table, query, r)


#: Per-step displacements small relative to the cell size, so a
#: drifting node needs several steps to cross a bucket boundary — the
#: regime continuous mobility produces, and the one most likely to
#: expose a stale-bucket bug: most steps leave the bucket unchanged,
#: then one boundary crossing must rewrite it.
step = st.tuples(
    st.floats(min_value=-30.0, max_value=30.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=-30.0, max_value=30.0,
              allow_nan=False, allow_infinity=False),
)


@settings(deadline=None)
@given(points=st.lists(position, min_size=2, max_size=20),
       mover=st.integers(min_value=0, max_value=19),
       steps=st.lists(step, min_size=1, max_size=40),
       r=radius)
def test_drift_trajectory_stays_exact_at_every_step(points, mover, steps, r):
    """A continuous trajectory — many small moves, a few of which cross
    cell boundaries — keeps ``within`` exact after *every* step, queried
    from the moving node itself (exactly how the medium queries around a
    repositioned sender to find its affected neighbors)."""
    grid, table = populated(points)
    nid = mover % len(points)
    for dx, dy in steps:
        x, y = table[nid]
        grid.move(nid, (x + dx, y + dy))
        table[nid] = grid.position(nid)
        assert grid.within(table[nid], r) == \
            brute_force(table, table[nid], r)


@settings(deadline=None)
@given(points=st.lists(position, min_size=1, max_size=12),
       velocities=st.lists(step, min_size=1, max_size=12),
       n_steps=st.integers(min_value=1, max_value=25),
       query=position, r=radius)
def test_concurrent_drift_keeps_fixed_query_exact(points, velocities,
                                                  n_steps, query, r):
    """Every node drifting at once at its own constant velocity, so
    trajectories cross cell boundaries on different steps — a fixed
    observer query must stay exact after every tick (the guard ring may
    never lag a re-bucketed neighbor)."""
    grid, table = populated(points)
    for _ in range(n_steps):
        for nid in sorted(table):
            vx, vy = velocities[nid % len(velocities)]
            x, y = table[nid]
            grid.move(nid, (x + vx, y + vy))
            table[nid] = grid.position(nid)
        assert grid.within(query, r) == brute_force(table, query, r)


def test_boundary_riding_drift_is_exact():
    """A mover sliding exactly along a bucket edge (y == CELL) lands on
    a boundary lattice point every other step; the ring query around it
    must stay exact through each re-bucketing."""
    grid = SpatialGrid(CELL)
    table = {}
    lattice = [(i, (ix * CELL, iy * CELL))
               for i, (ix, iy) in enumerate(
                   (ix, iy) for ix in range(-1, 8) for iy in range(-1, 3))]
    for nid, pos in lattice:
        grid.insert(nid, pos)
        table[nid] = grid.position(nid)
    mover = len(lattice)
    grid.insert(mover, (0.0, CELL))
    table[mover] = grid.position(mover)
    for k in range(1, 13):  # six full cells, half a cell per step
        grid.move(mover, (k * CELL / 2.0, CELL))
        table[mover] = grid.position(mover)
        got = grid.within(table[mover], CELL)
        assert got == brute_force(table, table[mover], CELL)
        assert mover in got  # inclusive of itself at radius >= 0


def test_node_exactly_on_query_circle_is_included():
    grid = SpatialGrid(CELL)
    grid.insert(1, (CELL, 0.0))
    grid.insert(2, (CELL + 1e-9, 0.0))
    assert grid.within((0.0, 0.0), CELL) == [1]


def test_duplicate_insert_rejected():
    grid = SpatialGrid(CELL)
    grid.insert(1, (0.0, 0.0))
    with pytest.raises(ValueError):
        grid.insert(1, (10.0, 10.0))


def test_remove_and_membership():
    grid = SpatialGrid(CELL)
    grid.insert(7, (3.0, 4.0))
    assert 7 in grid and len(grid) == 1
    grid.remove(7)
    assert 7 not in grid and len(grid) == 0
    assert grid.within((3.0, 4.0), 10.0) == []
    with pytest.raises(KeyError):
        grid.remove(7)


def test_negative_radius_and_bad_cell_size():
    grid = SpatialGrid(CELL)
    grid.insert(1, (0.0, 0.0))
    assert grid.within((0.0, 0.0), -1.0) == []
    with pytest.raises(ValueError):
        SpatialGrid(0.0)
