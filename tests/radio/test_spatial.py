"""SpatialGrid held to *exact* equality with brute force.

The medium trusts :meth:`SpatialGrid.within` to return precisely the
inclusive in-range id set, sorted ascending — candidate enumeration
order feeds the RNG draw order, so an off-by-one at a bucket boundary
would silently change simulation bytes.  These property tests therefore
compare against a brute-force scan using the *same* float arithmetic,
with strategies biased toward nodes and queries sitting exactly on cell
boundaries, and re-check after ``move`` rewrites buckets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import SpatialGrid

CELL = 50.0

#: Arbitrary coordinates mixed with exact cell-size multiples, so points
#: precisely on a bucket edge are drawn often instead of almost never.
coordinate = st.one_of(
    st.floats(min_value=-400.0, max_value=400.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=-8, max_value=8).map(lambda k: k * CELL),
)
position = st.tuples(coordinate, coordinate)

#: Radii beyond the 3x3 neighborhood (> 2 cells) exercise the widened
#: scan; exact multiples of the cell size sit on the inclusive edge.
radius = st.one_of(
    st.floats(min_value=0.0, max_value=300.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=6).map(lambda k: k * CELL),
)


def brute_force(points: dict, pos: tuple, r: float) -> list[int]:
    """The specification: inclusive Euclidean filter, ascending ids,
    written with the exact same float expression the grid uses."""
    x, y = float(pos[0]), float(pos[1])
    r2 = r * r
    out = []
    for nid, (px, py) in points.items():
        dx = px - x
        dy = py - y
        if dx * dx + dy * dy <= r2:
            out.append(nid)
    out.sort()
    return out


def populated(points: list) -> tuple[SpatialGrid, dict]:
    grid = SpatialGrid(CELL)
    table = {}
    for i, pos in enumerate(points):
        grid.insert(i, pos)
        table[i] = grid.position(i)
    return grid, table


@settings(deadline=None)
@given(points=st.lists(position, max_size=40), query=position, r=radius)
def test_within_matches_brute_force(points, query, r):
    grid, table = populated(points)
    assert grid.within(query, r) == brute_force(table, query, r)


@settings(deadline=None)
@given(points=st.lists(position, min_size=1, max_size=25),
       moves=st.lists(st.tuples(st.integers(min_value=0, max_value=24),
                                position), max_size=25),
       query=position, r=radius)
def test_within_matches_brute_force_after_moves(points, moves, query, r):
    grid, table = populated(points)
    for raw, pos in moves:
        nid = raw % len(points)
        grid.move(nid, pos)
        table[nid] = grid.position(nid)
    assert grid.within(query, r) == brute_force(table, query, r)


@settings(deadline=None)
@given(points=st.lists(position, min_size=1, max_size=25),
       removals=st.lists(st.integers(min_value=0, max_value=24),
                         max_size=25),
       query=position, r=radius)
def test_within_matches_brute_force_after_removals(points, removals,
                                                   query, r):
    grid, table = populated(points)
    for raw in removals:
        nid = raw % len(points)
        if nid in grid:
            grid.remove(nid)
            del table[nid]
    assert len(grid) == len(table)
    assert grid.within(query, r) == brute_force(table, query, r)


def test_node_exactly_on_query_circle_is_included():
    grid = SpatialGrid(CELL)
    grid.insert(1, (CELL, 0.0))
    grid.insert(2, (CELL + 1e-9, 0.0))
    assert grid.within((0.0, 0.0), CELL) == [1]


def test_duplicate_insert_rejected():
    grid = SpatialGrid(CELL)
    grid.insert(1, (0.0, 0.0))
    with pytest.raises(ValueError):
        grid.insert(1, (10.0, 10.0))


def test_remove_and_membership():
    grid = SpatialGrid(CELL)
    grid.insert(7, (3.0, 4.0))
    assert 7 in grid and len(grid) == 1
    grid.remove(7)
    assert 7 not in grid and len(grid) == 0
    assert grid.within((3.0, 4.0), 10.0) == []
    with pytest.raises(KeyError):
        grid.remove(7)


def test_negative_radius_and_bad_cell_size():
    grid = SpatialGrid(CELL)
    grid.insert(1, (0.0, 0.0))
    assert grid.within((0.0, 0.0), -1.0) == []
    with pytest.raises(ValueError):
        SpatialGrid(0.0)
