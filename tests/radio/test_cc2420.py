"""Unit tests for the CC2420 chip model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidChannel, InvalidPowerLevel
from repro.radio import (
    MAX_POWER_LEVEL,
    MIN_POWER_LEVEL,
    NUM_CHANNELS,
    RadioConfig,
    channel_frequency_mhz,
    power_level_to_dbm,
)


def test_datasheet_anchor_points():
    assert power_level_to_dbm(31) == 0.0
    assert power_level_to_dbm(27) == -1.0
    assert power_level_to_dbm(23) == -3.0
    assert power_level_to_dbm(19) == -5.0
    assert power_level_to_dbm(15) == -7.0
    assert power_level_to_dbm(11) == -10.0
    assert power_level_to_dbm(7) == -15.0
    assert power_level_to_dbm(3) == -25.0


def test_paper_power_range():
    """The paper: 'programmed output power ranging from -25dBm to 0dBm'."""
    assert power_level_to_dbm(3) == -25.0
    assert power_level_to_dbm(MAX_POWER_LEVEL) == 0.0


@given(st.integers(MIN_POWER_LEVEL, MAX_POWER_LEVEL - 1))
def test_power_monotone_nondecreasing(level):
    assert power_level_to_dbm(level) <= power_level_to_dbm(level + 1)


@given(st.integers(MIN_POWER_LEVEL, MAX_POWER_LEVEL))
def test_power_within_physical_bounds(level):
    dbm = power_level_to_dbm(level)
    assert -30.0 <= dbm <= 0.0


def test_power_levels_used_in_paper_differ_visibly():
    """Figure 6 uses levels 10 and 25; they must differ by several dB."""
    assert power_level_to_dbm(25) - power_level_to_dbm(10) >= 5.0


@pytest.mark.parametrize("bad", [-1, 32, 100])
def test_power_level_out_of_range(bad):
    with pytest.raises(InvalidPowerLevel):
        power_level_to_dbm(bad)


def test_sixteen_channels():
    assert NUM_CHANNELS == 16


def test_channel_frequencies():
    assert channel_frequency_mhz(11) == 2405.0
    assert channel_frequency_mhz(17) == 2435.0
    assert channel_frequency_mhz(26) == 2480.0


@pytest.mark.parametrize("bad", [0, 10, 27])
def test_channel_out_of_range(bad):
    with pytest.raises(InvalidChannel):
        channel_frequency_mhz(bad)


def test_radio_config_defaults_match_paper_sample():
    """The sample output shows Power = 31, Channel = 17."""
    cfg = RadioConfig()
    assert cfg.power_level == 31
    assert cfg.channel == 17


def test_radio_config_set_power():
    cfg = RadioConfig()
    cfg.set_power_level(10)
    assert cfg.power_level == 10
    assert cfg.tx_power_dbm == power_level_to_dbm(10)


def test_radio_config_set_channel():
    cfg = RadioConfig()
    cfg.set_channel(26)
    assert cfg.channel == 26
    assert cfg.frequency_mhz == 2480.0


def test_radio_config_rejects_bad_values():
    cfg = RadioConfig()
    with pytest.raises(InvalidPowerLevel):
        cfg.set_power_level(99)
    with pytest.raises(InvalidChannel):
        cfg.set_channel(5)
    with pytest.raises(InvalidPowerLevel):
        cfg.set_power_level("31")  # type: ignore[arg-type]


def test_radio_config_validates_at_construction():
    with pytest.raises(InvalidChannel):
        RadioConfig(channel=7)
    with pytest.raises(InvalidPowerLevel):
        RadioConfig(power_level=-3)
