"""Unit tests for the RSSI and LQI observable models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio import (
    LQI_MAX,
    LQI_MIN,
    LqiModel,
    RssiModel,
    dbm_to_reading,
    lqi_from_sinr,
    reading_to_dbm,
)
from repro.sim import RngRegistry


def test_paper_calibration_point():
    """'a RSSI reading of -20 indicates ... approximately -65dBm'."""
    assert dbm_to_reading(-65.0) == -20
    assert reading_to_dbm(-20) == -65.0


@given(st.integers(-100, 50))
def test_rssi_roundtrip(reading):
    assert dbm_to_reading(reading_to_dbm(reading)) == reading


def test_rssi_reading_tracks_power():
    model = RssiModel(RngRegistry(1), noise_sigma_db=0.0)
    assert model.reading(-65.0) == -20
    assert model.reading(-55.0) == -10


def test_rssi_noise_produces_spread():
    model = RssiModel(RngRegistry(1), noise_sigma_db=2.0)
    readings = {model.reading(-65.0) for _ in range(50)}
    assert len(readings) > 1
    assert all(abs(r - (-20)) < 12 for r in readings)


def test_rssi_rejects_negative_sigma():
    with pytest.raises(ValueError):
        RssiModel(RngRegistry(1), noise_sigma_db=-1.0)


def test_lqi_saturates_high():
    assert lqi_from_sinr(30.0) == pytest.approx(LQI_MAX, abs=1.0)


def test_lqi_bottoms_out_low():
    assert lqi_from_sinr(-20.0) == pytest.approx(LQI_MIN, abs=1.0)


@given(st.floats(-30.0, 40.0), st.floats(-30.0, 40.0))
def test_lqi_monotone_in_sinr(a, b):
    lo, hi = sorted((a, b))
    assert lqi_from_sinr(lo) <= lqi_from_sinr(hi) + 1e-9


def test_lqi_model_bounds():
    model = LqiModel(RngRegistry(2), noise_sigma=5.0)
    for sinr in (-30.0, 0.0, 4.0, 10.0, 40.0):
        for _ in range(20):
            assert LQI_MIN <= model.reading(sinr) <= LQI_MAX


def test_good_links_report_lqi_near_paper_values():
    """The paper's sample outputs show LQI 103..108 on working links."""
    model = LqiModel(RngRegistry(3), noise_sigma=1.5)
    readings = [model.reading(15.0) for _ in range(20)]
    assert all(r >= 100 for r in readings)


def test_lqi_rejects_negative_sigma():
    with pytest.raises(ValueError):
        LqiModel(RngRegistry(1), noise_sigma=-0.1)
