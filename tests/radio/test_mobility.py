"""The mobility subsystem: specs, models, driver, and determinism.

Mirrors the fault-plan contracts (``tests/faults``): validation rejects
inconsistent specs, plans round-trip through canonical JSON, inert
plans install nothing and leave packet digests byte-identical, and the
same seed + plan reproduces the same trajectories bit-for-bit with all
randomness confined to the dedicated ``"mobility"`` stream.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.radio import (
    MOBILITY_KINDS,
    MobilityDriver,
    MobilityPlan,
    MobilitySpec,
    install_mobility,
)
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def make_chain(n=3, seed=7):
    return build_chain(n, spacing=60.0, seed=seed,
                       propagation_kwargs=QUIET_PROPAGATION)


def drift(node=2, at=1.0, duration=4.0, velocity=(5.0, 0.0), **kw):
    return MobilitySpec(kind="linear_drift", at=at, duration=duration,
                        nodes=(node,), velocity=velocity, **kw)


def install(tb, *specs, name="test"):
    return install_mobility(tb, MobilityPlan(name=name, specs=tuple(specs)))


# -- spec validation ---------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(kind="teleport", nodes=(1,)),
    dict(kind="linear_drift", nodes=()),                    # no scope
    dict(kind="linear_drift", nodes=(1,)),                  # no velocity
    dict(kind="linear_drift", nodes=(1,), velocity=(1, 0)),  # no duration
    dict(kind="linear_drift", nodes=(1,), velocity=(1, 0),
         duration=-2.0),
    dict(kind="linear_drift", nodes=(1,), velocity=(1, 0), duration=1.0,
         at=-1.0),
    dict(kind="linear_drift", nodes=(1,), velocity=(1, 0), duration=1.0,
         update_every=0.0),
    dict(kind="waypoint", nodes=(1,)),                      # no waypoints
    dict(kind="waypoint", nodes=(1,),
         waypoints=((2.0, 0, 0), (1.0, 5, 5))),             # not increasing
    dict(kind="waypoint", nodes=(1,), waypoints=((-1.0, 0, 0),)),
    dict(kind="random_waypoint", nodes=(1,), duration=5.0,
         speed=(1.0, 2.0)),                                 # no area
    dict(kind="random_waypoint", nodes=(1,), duration=5.0,
         area=(0, 0, 10, 0), speed=(1.0, 2.0)),             # degenerate
    dict(kind="random_waypoint", nodes=(1,), duration=5.0,
         area=(0, 0, 10, 10), speed=(2.0, 1.0)),            # vmin > vmax
    dict(kind="random_waypoint", nodes=(1,), duration=5.0,
         area=(0, 0, 10, 10), speed=(0.0, 1.0)),            # vmin == 0
    dict(kind="random_waypoint", nodes=(1,),
         area=(0, 0, 10, 10), speed=(1.0, 2.0)),            # no duration
    dict(kind="random_waypoint", nodes=(1,), duration=5.0,
         area=(0, 0, 10, 10), speed=(1.0, 2.0), pause_s=-1.0),
])
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        MobilitySpec(**kwargs)


def test_all_kinds_have_models():
    from repro.radio.mobility import MODELS
    assert set(MODELS) == set(MOBILITY_KINDS)


# -- serialisation -----------------------------------------------------------


def test_plan_round_trips_through_canonical_json():
    plan = MobilityPlan(name="tour", specs=(
        drift(),
        MobilitySpec(kind="waypoint", at=2.0, nodes=(1, 3),
                     waypoints=((1.0, 10.0, 0.0), (3.0, 10.0, 20.0))),
        MobilitySpec(kind="random_waypoint", at=0.0, duration=30.0,
                     nodes=(2,), area=(0.0, 0.0, 100.0, 100.0),
                     speed=(1.0, 3.0), pause_s=2.0),
    ))
    param = plan.to_param()
    assert MobilityPlan.from_param(param) == plan
    assert MobilityPlan.from_param(param).to_param() == param
    # Canonical: key order in the JSON is sorted, separators compact.
    assert json.loads(param) == plan.to_dict()
    assert " " not in param


def test_from_param_accepts_all_forms():
    plan = MobilityPlan(specs=(drift(),))
    assert MobilityPlan.from_param(plan) is plan
    assert MobilityPlan.from_param(plan.to_dict()) == plan
    assert not MobilityPlan.from_param(None).is_active
    assert not MobilityPlan.from_param("null").is_active
    assert not MobilityPlan().is_active
    assert not MobilityPlan(enabled=False, specs=(drift(),)).is_active


# -- models ------------------------------------------------------------------


def test_linear_drift_moves_at_velocity():
    tb = make_chain()
    start = tb.node(2).position
    driver = install(tb, drift(node=2, at=1.0, duration=4.0,
                               velocity=(5.0, -2.0)))
    assert isinstance(driver, MobilityDriver)
    tb.run(until=3.0)  # 2 s into the drift
    x, y = tb.node(2).position
    assert x == pytest.approx(start[0] + 5.0 * 2.0)
    assert y == pytest.approx(start[1] - 2.0 * 2.0)
    tb.run(until=10.0)  # drift over: parked at the endpoint
    x, y = tb.node(2).position
    assert x == pytest.approx(start[0] + 5.0 * 4.0)
    assert y == pytest.approx(start[1] - 2.0 * 4.0)
    assert driver.updates[2] == 4  # 1 s cadence over 4 s
    assert tb.monitor.counter("mobility.updates") == 4
    assert driver.activations == {"linear_drift": 1}


def test_waypoint_tour_hits_each_waypoint_exactly():
    tb = make_chain()
    install(tb, MobilitySpec(
        kind="waypoint", at=1.0, nodes=(2,), update_every=0.25,
        waypoints=((2.0, 100.0, 50.0), (5.0, 100.0, -10.0))))
    tb.run(until=3.0)  # first waypoint offset reached at t=3.0
    assert tb.node(2).position == pytest.approx((100.0, 50.0))
    tb.run(until=4.5)  # halfway through the second leg
    assert tb.node(2).position == pytest.approx((100.0, 20.0))
    tb.run(until=6.0)
    assert tb.node(2).position == pytest.approx((100.0, -10.0))


def test_random_waypoint_stays_in_area_and_moves():
    tb = make_chain()
    area = (0.0, 0.0, 200.0, 200.0)
    start = tb.node(2).position
    driver = install(tb, MobilitySpec(
        kind="random_waypoint", at=0.0, duration=20.0,
        nodes=(2,), area=area, speed=(5.0, 10.0)))

    trail = []
    apply = driver._apply

    def recording_apply(node_id, position):
        trail.append(position)
        apply(node_id, position)

    driver._apply = recording_apply
    tb.run(until=20.0)
    assert tb.node(2).position != start
    assert len(trail) >= 15  # ≥5 m/s for 20 s on a 1 s cadence
    assert all(-1e-9 <= x <= 200.0 + 1e-9
               and -1e-9 <= y <= 200.0 + 1e-9 for x, y in trail)


def test_random_waypoint_pause_reduces_updates():
    """A pause between legs spends itinerary time standing still."""
    def updates(pause_s):
        tb = make_chain()
        driver = install(tb, MobilitySpec(
            kind="random_waypoint", at=0.0, duration=30.0, nodes=(2,),
            area=(0.0, 0.0, 60.0, 60.0), speed=(10.0, 10.0),
            pause_s=pause_s))
        tb.run(until=30.0)
        return driver.updates.get(2, 0)

    assert updates(10.0) < updates(0.0)


def test_multi_node_spec_activates_each_node():
    tb = make_chain()
    driver = install(tb, MobilitySpec(
        kind="linear_drift", at=0.0, duration=3.0, nodes=(1, 2, 3),
        velocity=(0.0, 2.0)))
    tb.run(until=5.0)
    assert driver.activations == {"linear_drift": 3}
    assert set(driver.updates) == {1, 2, 3}


# -- determinism -------------------------------------------------------------


def _digest(seed, plan):
    tb = make_chain(seed=seed)
    install_mobility(tb, plan)
    tb.run(until=8.0)
    return tb.monitor.packet_digest()


def test_inert_plans_install_nothing():
    tb = make_chain()
    assert install_mobility(tb, None) is None
    assert install_mobility(tb, MobilityPlan()) is None
    assert install_mobility(tb, MobilityPlan(enabled=False,
                                             specs=(drift(),))) is None
    assert tb.monitor.counter("mobility.updates") == 0
    assert "mobility.updates" not in tb.monitor.counters


def test_inert_plan_is_byte_identical_to_no_plan():
    plan = MobilityPlan(enabled=False, specs=(drift(),))
    assert _digest(11, plan) == _digest(11, None)


def test_active_plan_changes_the_run_but_reproducibly():
    plan = MobilityPlan(specs=(
        drift(node=2, at=1.0, duration=6.0, velocity=(40.0, 0.0)),))
    assert _digest(11, plan) == _digest(11, plan)
    assert _digest(11, plan) != _digest(11, None)


_rwp = st.builds(
    MobilitySpec,
    kind=st.just("random_waypoint"),
    at=st.floats(0.0, 3.0, allow_nan=False),
    duration=st.floats(1.0, 6.0, allow_nan=False),
    nodes=st.lists(st.integers(1, 3), min_size=1, max_size=2,
                   unique=True).map(tuple),
    area=st.just((0.0, -50.0, 200.0, 50.0)),
    speed=st.just((2.0, 8.0)),
    pause_s=st.floats(0.0, 2.0, allow_nan=False),
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=_rwp, seed=st.integers(1, 1000))
def test_random_motion_same_seed_is_bit_identical(spec, seed):
    plan = MobilityPlan(name="prop", specs=(spec,))
    assert _digest(seed, plan) == _digest(seed, plan)
