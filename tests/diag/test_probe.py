"""The probe pipeline: wire plans, decode, and the executor's drive loop."""

import struct

import pytest

from repro.core.deploy import deploy_liteview
from repro.core.wire import MsgType, pack_signed
from repro.diag import (
    ChannelReading,
    ChannelScanProbe,
    LinkProbe,
    LinkReport,
    NeighborProbe,
    PathProbe,
    ProbeExecutor,
)
from repro.diag.probe import ping_window, scan_window, traceroute_window
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


# -- response-window arithmetic (must match the legacy budgets) ---------------

def test_window_formulas():
    assert ping_window(10) == 10 * 0.6 + 2.5
    assert traceroute_window(1) == 1 * 6.5 + 3.0
    assert scan_window(16, 4, 10) == 16 * 4 * 10 / 1000.0 + 2.5


# -- wire plans ---------------------------------------------------------------

def test_link_probe_request():
    request = LinkProbe(src=2, dst=3, rounds=6, length=16, port=0).request()
    assert request.node == 2
    assert request.msg_type == MsgType.RUN_PING
    assert request.body == struct.pack(">HBBB", 3, 6, 16, 0)
    assert request.window == ping_window(6)
    assert not request.wait_full_window


def test_path_probe_request():
    request = PathProbe(src=1, dst=8, rounds=2, length=32, port=10).request()
    assert request.node == 1
    assert request.msg_type == MsgType.RUN_TRACEROUTE
    assert request.body == struct.pack(">HBBB", 8, 2, 32, 10)
    assert request.window == traceroute_window(2)


def test_neighbor_probe_request_waits_full_window():
    request = NeighborProbe(node=4).request()
    assert request.node == 4
    assert request.msg_type == MsgType.NEIGHBOR_LIST
    assert request.body == b"\x01"
    assert request.window == 0.5
    assert request.wait_full_window


def test_scan_probe_decode_and_observe():
    probe = ChannelScanProbe(node=2, first=11, count=3)
    request = probe.request()
    assert request.msg_type == MsgType.SCAN_CHANNELS
    body = bytes([3, 11, pack_signed(-90), 12, pack_signed(-88),
                  20, pack_signed(-55)])
    decoded = probe.decode(body)
    assert decoded == [(11, -90), (12, -88), (20, -55)]
    observed = probe.observe(decoded)
    assert observed == [ChannelReading(2, 11, -90), ChannelReading(2, 12, -88),
                        ChannelReading(2, 20, -55)]


def test_link_probe_failure_observation_counts_budgeted_rounds():
    report = LinkProbe(src=2, dst=3, rounds=6).failure_observation()
    assert report == LinkReport.no_reply(2, 3, 6)
    assert report.has_data and report.loss_ratio == 1.0


def test_describe_labels():
    assert LinkProbe(src=2, dst=3).describe() == "link 2->3"
    assert PathProbe(src=1, dst=8).describe() == "path 1->8"
    assert NeighborProbe(node=4).describe() == "neighbors of 4"
    assert ChannelScanProbe(node=2).describe() == "scan on 2"


# -- the executor over a live deployment --------------------------------------

@pytest.fixture(scope="module")
def chain():
    testbed = build_chain(3, spacing=60.0, seed=5,
                          propagation_kwargs=QUIET_PROPAGATION)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    return testbed, deployment


def test_executor_runs_a_link_probe(chain):
    testbed, deployment = chain
    before = testbed.monitor.counter("diag.probes")
    outcome = ProbeExecutor(deployment).run(
        LinkProbe(src=1, dst=2, rounds=3, length=16))
    assert outcome.ok
    assert isinstance(outcome.value, LinkReport)
    assert outcome.value.src == 1 and outcome.value.dst == 2
    assert outcome.value.received > 0
    assert outcome.attempts == 1
    assert testbed.monitor.counter("diag.probes") == before + 1


def test_executor_accepts_a_bare_workstation(chain):
    _, deployment = chain
    outcome = ProbeExecutor(deployment.workstation).run(
        NeighborProbe(node=2))
    assert outcome.ok
    assert outcome.value  # node 2 sees both chain neighbors


def test_executor_classifies_a_dead_source_as_unreachable(chain):
    testbed, deployment = chain
    testbed.node(3).fail()
    try:
        before = testbed.monitor.counter("diag.probe_failures")
        outcome = ProbeExecutor(deployment).run(
            LinkProbe(src=3, dst=2, rounds=2, length=16))
        assert not outcome.ok
        assert outcome.failure == "unreachable"
        assert outcome.unreachable
        assert outcome.value is None
        assert testbed.monitor.counter("diag.probe_failures") == before + 1
    finally:
        testbed.node(3).recover()


def test_executor_retries_inside_the_attempts_budget(chain):
    testbed, deployment = chain
    testbed.node(3).fail()
    try:
        before = testbed.monitor.counter("diag.probes")
        outcome = ProbeExecutor(deployment, attempts=2).run(
            LinkProbe(src=3, dst=2, rounds=2, length=16))
        assert not outcome.ok and outcome.attempts == 2
        assert testbed.monitor.counter("diag.probes") == before + 2
    finally:
        testbed.node(3).recover()


def test_executor_rejects_a_zero_attempt_budget(chain):
    _, deployment = chain
    with pytest.raises(ValueError, match="attempts"):
        ProbeExecutor(deployment, attempts=0)


def test_run_all_preserves_probe_order(chain):
    _, deployment = chain
    probes = [LinkProbe(src=1, dst=2, rounds=1, length=16),
              NeighborProbe(node=2)]
    outcomes = ProbeExecutor(deployment).run_all(probes)
    assert [o.probe for o in outcomes] == probes
    assert all(o.ok for o in outcomes)
