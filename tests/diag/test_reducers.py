"""Pure reducers: synthetic observations in, the expected verdict out.

One test per finding kind, driven entirely by hand-built observations —
no simulator, no radio, no RNG.  This is the contract the engine's
reduction phase is held to.
"""

from repro.core.results import LinkObservation, TracerouteHop, TracerouteResult
from repro.diag import (
    ChannelReading,
    LinkReport,
    Thresholds,
    reduce_dead_node,
    reduce_hotspot_findings,
    reduce_interference_findings,
    reduce_link_finding,
)


def _link_report(sent=10, received=10, lqi=(100.0, 100.0),
                 rssi=(-60.0, -60.0)):
    return LinkReport(src=2, dst=3, sent=sent, received=received,
                      mean_rtt_ms=20.0, lqi_forward=lqi[0],
                      lqi_backward=lqi[1], rssi_forward=rssi[0],
                      rssi_backward=rssi[1])


# -- broken / lossy / asymmetric / healthy links ------------------------------

def test_broken_link_total_loss():
    finding = reduce_link_finding(_link_report(sent=10, received=0))
    assert finding.kind == "broken_link"
    assert finding.link == (2, 3)
    assert finding.confidence == 1.0
    assert finding.evidence["received"] == 0


def test_no_data_is_not_a_broken_link():
    """The sent == 0 edge: absence of evidence must yield no finding."""
    report = LinkReport.no_reply(2, 3, sent=0)
    assert not report.has_data
    assert report.loss_ratio == 1.0  # back-compat sentinel, not data
    assert reduce_link_finding(report) is None


def test_failed_command_with_probes_sent_is_data():
    """rounds were budgeted but nothing returned: that IS total loss."""
    report = LinkReport.no_reply(2, 3, sent=6)
    assert report.has_data
    assert reduce_link_finding(report).kind == "broken_link"


def test_asymmetric_link_by_lqi_delta():
    finding = reduce_link_finding(_link_report(lqi=(100.0, 80.0)))
    assert finding.kind == "asymmetric_link"
    assert finding.evidence["lqi_delta"] == 20.0
    # ratio = 20/12 ≈ 1.67 → confidence 0.5 * ratio ≈ 0.83
    assert 0.8 < finding.confidence < 0.9


def test_asymmetric_link_by_rssi_delta():
    finding = reduce_link_finding(_link_report(rssi=(-50.0, -62.0)))
    assert finding.kind == "asymmetric_link"
    assert finding.evidence["rssi_delta"] == 12.0


def test_lossy_link_partial_loss():
    finding = reduce_link_finding(_link_report(sent=10, received=7))
    assert finding.kind == "lossy_link"
    assert abs(finding.confidence - (0.3 / 0.9)) < 1e-9


def test_healthy_link_yields_no_finding():
    assert reduce_link_finding(_link_report()) is None


def test_link_thresholds_are_tunable():
    strict = Thresholds(lossy_loss=0.05)
    finding = reduce_link_finding(_link_report(sent=10, received=9), strict)
    assert finding.kind == "lossy_link"


# -- dead nodes ---------------------------------------------------------------

def test_dead_node_unreachable_is_near_certain():
    finding = reduce_dead_node(6, failure="unreachable", error="no ack")
    assert finding.kind == "dead_node"
    assert finding.node == 6
    assert finding.confidence == 0.95
    assert "no acknowledgment" in finding.summary


def test_dead_node_timeout_is_weaker_evidence():
    finding = reduce_dead_node(6, failure="timeout")
    assert finding.confidence == 0.6
    assert "never replied" in finding.summary


# -- hotspots -----------------------------------------------------------------

def _trace(hop_specs):
    """hop_specs: [(node, rtt_ms, queue), ...] → a TracerouteResult."""
    hops = [
        TracerouteHop(
            hop_index=i + 1, probed_node_id=node,
            probed_node_name=f"192.168.0.{node}", rtt_ms=rtt,
            link=LinkObservation(100, 100, -60, -60, queue, 0),
            arrival_ms=float(i * 100),
        )
        for i, (node, rtt, queue) in enumerate(hop_specs)
    ]
    return TracerouteResult(
        target_name="192.168.0.9", target_id=9, requested_rounds=1,
        probe_length=32, protocol_name="geographic", routing_port=10,
        hops=hops, sent=1,
    )


def test_hotspot_by_rtt_score():
    traces = [_trace([(2, 10.0, 0), (3, 40.0, 0), (4, 10.0, 0)])]
    findings = reduce_hotspot_findings(traces, baseline_rtt_ms=10.0)
    assert [f.node for f in findings] == [3]
    assert findings[0].kind == "hotspot"
    assert findings[0].evidence["score"] == 4.0


def test_hotspot_by_queue_depth():
    traces = [_trace([(2, 10.0, 0), (3, 10.0, 3)])]
    findings = reduce_hotspot_findings(traces, baseline_rtt_ms=10.0)
    assert [f.node for f in findings] == [3]
    assert findings[0].confidence >= 0.7
    assert "queue peaked at 3" in findings[0].summary


def test_hotspot_median_baseline_when_none_given():
    traces = [_trace([(2, 10.0, 0), (3, 30.0, 0), (4, 10.0, 0)])]
    findings = reduce_hotspot_findings(traces)
    assert [f.node for f in findings] == [3]  # 30 / median(10,30,10) = 3x


def test_hotspot_min_samples_filter():
    traces = [_trace([(2, 10.0, 0), (3, 40.0, 0)])]
    thresholds = Thresholds(min_samples=2)
    assert reduce_hotspot_findings(traces, thresholds,
                                   baseline_rtt_ms=10.0) == []


def test_no_traces_no_hotspots():
    assert reduce_hotspot_findings([]) == []


# -- interference -------------------------------------------------------------

def _readings(per_channel):
    return [ChannelReading(node=2, channel=ch, reading=r)
            for ch, r in per_channel]


def test_interference_names_channel_above_floor():
    readings = _readings([(11, -90), (12, -91), (13, -89), (20, -60)])
    findings = reduce_interference_findings(readings)
    assert len(findings) == 1
    assert findings[0].kind == "interference"
    assert findings[0].channel == 20
    assert findings[0].node == 2  # the observer
    assert findings[0].evidence["excess"] >= 12.0


def test_quiet_band_yields_no_interference():
    readings = _readings([(11, -90), (12, -88), (13, -91)])
    assert reduce_interference_findings(readings) == []


def test_interference_margin_is_tunable():
    readings = _readings([(11, -90), (12, -91), (13, -80)])
    assert reduce_interference_findings(readings) == []
    loose = Thresholds(interference_margin=5.0)
    findings = reduce_interference_findings(readings, loose)
    assert [f.channel for f in findings] == [13]
