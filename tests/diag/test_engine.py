"""The DiagnosisEngine over live deployments, and the diagnose command."""

import pytest

from repro.core.deploy import deploy_liteview
from repro.errors import ParameterError
from repro.diag import DiagnosisEngine, ProbePlan, Thresholds
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

ADJACENT = ((1, 2), (2, 3), (3, 4))


def _chain(seed=3, *, specs=(), warm_up=15.0):
    testbed = build_chain(4, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    if specs:
        install_faults(testbed, FaultPlan(name="engine-test", specs=specs))
    deployment = deploy_liteview(testbed, warm_up=warm_up)
    return testbed, deployment


def test_healthy_chain_yields_a_healthy_report():
    testbed, deployment = _chain()
    report = DiagnosisEngine(deployment).run(
        ProbePlan(links=ADJACENT, rounds=6, length=16))
    assert report.healthy
    assert report.probes_run == 3 and report.probes_failed == 0
    assert "No problems diagnosed" in report.explain()
    assert testbed.monitor.counter("diag.runs") == 1


def test_broken_link_is_named():
    _, deployment = _chain(specs=(
        FaultSpec(kind="link_degrade", at=16.0, link=(2, 3), loss_db=80.0),
    ), warm_up=17.0)
    report = DiagnosisEngine(deployment).run(
        ProbePlan(links=ADJACENT, rounds=6, length=16))
    assert [f.link for f in report.of_kind("broken_link")] == [(2, 3)]
    assert not report.of_kind("dead_node")


def test_dead_node_suppresses_its_link_symptoms():
    """A crashed node must be named once, not as N broken links."""
    testbed, deployment = _chain(specs=(
        FaultSpec(kind="node_crash", at=16.0, nodes=(3,)),
    ), warm_up=17.0)
    report = DiagnosisEngine(deployment).run(
        ProbePlan(links=ADJACENT, rounds=4, length=16))
    assert [f.node for f in report.of_kind("dead_node")] == [3]
    assert report.of_kind("dead_node")[0].confidence == 0.95
    # links (2,3) and (3,4) touch the corpse: no separate link verdicts
    assert not report.of_kind("broken_link")
    assert not report.of_kind("lossy_link")
    assert testbed.monitor.counter("diag.finding.dead_node") == 1


def test_findings_arrive_in_severity_order():
    _, deployment = _chain(specs=(
        FaultSpec(kind="node_crash", at=16.0, nodes=(4,)),
        FaultSpec(kind="link_degrade", at=16.0, link=(1, 2), loss_db=80.0),
    ), warm_up=17.0)
    # (4, 3) puts the crashed node in a probe *source* seat, which is
    # what lets the executor classify it unreachable.
    report = DiagnosisEngine(deployment).run(
        ProbePlan(links=ADJACENT + ((4, 3),), rounds=4, length=16))
    kinds = [f.kind for f in report.findings]
    assert kinds == sorted(
        kinds, key=["dead_node", "broken_link", "asymmetric_link",
                    "lossy_link", "hotspot", "interference"].index)
    assert kinds[0] == "dead_node"


def test_thresholds_are_injectable():
    _, deployment = _chain()
    # An absurdly strict lossy threshold flags even healthy links …
    strict = DiagnosisEngine(deployment,
                             thresholds=Thresholds(lossy_loss=0.0))
    report = strict.run(ProbePlan(links=((1, 2),), rounds=4, length=16))
    assert len(report.findings) == 1
    assert report.findings[0].kind == "lossy_link"


def test_diag_finding_trace_events_are_emitted():
    testbed, deployment = _chain(specs=(
        FaultSpec(kind="link_degrade", at=16.0, link=(2, 3), loss_db=80.0),
    ), warm_up=17.0)
    testbed.tracer.enable()
    DiagnosisEngine(deployment).run(
        ProbePlan(links=ADJACENT, rounds=4, length=16))
    kinds = {e.kind for e in testbed.tracer.events}
    assert "diag.probe" in kinds
    assert "diag.finding" in kinds


# -- the diagnose shell command ----------------------------------------------

def test_diagnose_command_tells_the_path_story():
    _, deployment = _chain()
    deployment.login("192.168.0.1")
    output = deployment.run("diagnose 192.168.0.4")
    assert "Path 1 -> 4:" in output
    assert "reached the target over 3 hop(s)" in output
    report = deployment.interpreter.last_report
    assert report is not None
    assert report.probes_run == 4  # one trace + three hop surveys
    assert not report.of_kind("dead_node")
    assert not report.of_kind("broken_link")


def test_diagnose_command_reports_an_unreachable_target():
    _, deployment = _chain(specs=(
        FaultSpec(kind="link_degrade", at=16.0, link=(2, 3), loss_db=80.0),
    ), warm_up=17.0)
    deployment.login("192.168.0.1")
    output = deployment.run("diagnose 192.168.0.4")
    assert "DID NOT reach the target" in output


def test_diagnose_command_requires_a_target():
    _, deployment = _chain()
    deployment.login("192.168.0.1")
    with pytest.raises(ParameterError, match="usage: diagnose"):
        deployment.run("diagnose")
