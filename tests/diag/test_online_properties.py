"""Property-based guarantees for the passive online detectors.

What hypothesis buys over the tables in ``test_online_detectors.py``:
the invariants hold for *arbitrary* inputs — hostile floats (NaN/inf),
any series length, any interleaving — not just the curated scenarios.

The contracts under test:

* confidences are always finite and in [0, 1], whatever is fed in;
* memory is O(1) per detector / O(links) per monitor for any series
  length (ring buffers never grow, sums never go non-finite);
* a stationary series whose noise stays inside the threshold never
  fires (no false alarms by construction);
* a level step beyond the threshold fires within a bounded number of
  samples, and the detection delay is monotone in the signal strength.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diag import (
    CusumDetector,
    EwmaDetector,
    OnlineMonitor,
    WindowStats,
)

K_ON, K_OFF, HYST, MIN_SAMPLES, FLOOR = 4.0, 2.0, 3, 8, 2.0


def make_ewma(direction="down"):
    return EwmaDetector(alpha=0.2, k_on=K_ON, k_off=K_OFF,
                        hysteresis=HYST, min_samples=MIN_SAMPLES,
                        sigma_floor=FLOOR, direction=direction)


any_floats = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    min_size=0, max_size=200)


@given(any_floats, st.sampled_from(["both", "up", "down"]))
@settings(max_examples=200, deadline=None)
def test_ewma_confidence_finite_on_hostile_input(values, direction):
    det = make_ewma(direction)
    for v in values:
        det.update(v)
        assert math.isfinite(det.confidence)
        assert 0.0 <= det.confidence <= 1.0
        assert math.isfinite(det.mean) and math.isfinite(det.dev)
        assert math.isfinite(det.shift)


@given(any_floats)
@settings(max_examples=200, deadline=None)
def test_cusum_confidence_finite_on_hostile_input(values):
    det = CusumDetector(target=0.0, slack=0.15, threshold=2.0)
    for v in values:
        det.update(v)
        assert math.isfinite(det.confidence)
        assert 0.0 <= det.confidence <= 1.0
        assert 0.0 <= det.statistic <= det.cap


@given(st.integers(min_value=1, max_value=32),
       st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=0, max_size=3000))
@settings(max_examples=100, deadline=None)
def test_windowstats_memory_bounded_and_consistent(capacity, values):
    ws = WindowStats(capacity)
    for v in values:
        ws.push(v)
        assert len(ws) <= capacity
        assert len(ws._buf) == capacity            # ring never grows
        assert math.isfinite(ws.mean)
        assert math.isfinite(ws.variance) and ws.variance >= 0.0
    tail = [float(v) for v in values[-capacity:]]
    assert ws.values() == tail
    if tail:
        assert ws.mean == sum(tail) / len(tail) or math.isclose(
            ws.mean, sum(tail) / len(tail), rel_tol=1e-6, abs_tol=1e-6)


@given(st.floats(min_value=-1e6, max_value=1e6),
       st.lists(st.floats(min_value=-1.0, max_value=1.0),
                min_size=1, max_size=400),
       st.sampled_from(["both", "up", "down"]))
@settings(max_examples=200, deadline=None)
def test_ewma_silent_on_noise_inside_threshold(base, noise, direction):
    """Noise of amplitude < k_on * sigma_floor / 2 around a fixed level
    can never fire: |sample - EWMA mean| <= 2 * amplitude < k_on *
    sigma_floor <= k_on * sigma, whatever the adaptive scale does."""
    amplitude = 0.49 * K_ON * FLOOR / 2.0
    det = make_ewma(direction)
    for d in noise:
        det.update(base + d * amplitude)
        assert not det.fired
        assert det.confidence == 0.0


@given(st.floats(min_value=-1e6, max_value=1e6),
       st.floats(min_value=1.01, max_value=100.0),
       st.floats(min_value=1.0, max_value=10.0))
@settings(max_examples=200, deadline=None)
def test_ewma_step_fires_within_hysteresis_and_delay_is_monotone(
        base, step_sigma, ratio):
    """On a noise-free baseline, a downward step of ``step_sigma`` >= 1
    k_on-multiples fires in exactly ``hysteresis`` samples — and a
    ``ratio``-times-larger step never fires later."""
    delays = []
    for mult in (step_sigma, step_sigma * ratio):
        det = make_ewma("down")
        for _ in range(MIN_SAMPLES + 5):
            det.update(base)
        dropped = base - mult * K_ON * FLOOR
        delay = None
        for i in range(1, HYST + 2):
            if det.update(dropped):
                delay = i
                break
        assert delay is not None and delay <= HYST
        delays.append(delay)
    assert delays[1] <= delays[0]


@given(st.floats(min_value=0.2, max_value=0.99),
       st.floats(min_value=1.01, max_value=4.0))
@settings(max_examples=200, deadline=None)
def test_cusum_delay_monotone_in_loss_rate(rate, boost):
    """Time-to-fire on a constant loss level shrinks (never grows) as
    the level rises, and matches ceil(threshold / (rate - slack))."""
    slack, threshold = 0.15, 2.0
    delays = []
    for level in (rate, min(1.0, rate * boost)):
        det = CusumDetector(target=0.0, slack=slack, threshold=threshold)
        delay = None
        for i in range(1, 200):
            if det.update(level):
                delay = i
                break
        assert delay == math.ceil(threshold / (level - slack))
        delays.append(delay)
    assert delays[1] <= delays[0]


beacon_events = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),       # origin
        st.integers(min_value=1, max_value=4),       # receiver
        st.integers(min_value=0, max_value=0xFFFF),  # seq
        st.floats(min_value=0.0, max_value=255.0),   # lqi
        st.floats(min_value=-120.0, max_value=0.0),  # rssi
        st.floats(min_value=0.0, max_value=1e5),     # time
    ),
    min_size=0, max_size=300)


@given(beacon_events)
@settings(max_examples=100, deadline=None)
def test_monitor_invariants_under_arbitrary_beacon_streams(events):
    """Any beacon stream — out-of-order seqs, wild timestamps — yields
    canonical findings with finite [0,1] confidences, and the monitor's
    memory stays bounded by the number of distinct directed links."""
    from repro.diag.findings import FINDING_KINDS

    mon = OnlineMonitor(nominal_interval=2.0)
    distinct = set()
    for origin, receiver, seq, lqi, rssi, time in events:
        mon.observe_beacon(receiver, origin, seq=seq, lqi=lqi,
                           rssi=rssi, channel=17, now=time)
        distinct.add((origin, receiver))
        assert mon.links_tracked == len(distinct)
    last = max((e[5] for e in events), default=0.0)
    for finding in mon.poll(now=last + 1.0):
        assert finding.kind in FINDING_KINDS
        assert math.isfinite(finding.confidence)
        assert 0.0 <= finding.confidence <= 1.0
        assert finding.to_json()  # canonical JSON never raises
