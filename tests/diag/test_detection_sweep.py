"""The detection_sweep scenario: active vs. passive vs. hybrid.

The head-to-head the source paper could not produce — its active probe
workflow graded against a listener that costs no airtime at all.  The
acceptance bar lives here: passive mode sends zero probe packets yet
reaches recall >= 0.8 on the canonical link_degrade and
interference_burst faults, and every one of the seven fault kinds
yields per-mode precision / recall / time-to-detect.
"""

import pytest

from repro.campaign.scenarios import resolve_scenario
from repro.faults import FAULT_KINDS

SEED = 7
MODES = ("active", "passive", "hybrid")


def sweep(fault_kind, **kw):
    _, values = resolve_scenario("detection_sweep")(
        SEED, fault_kind=fault_kind, **kw)
    return values


@pytest.mark.parametrize("fault_kind", ["link_degrade",
                                        "interference_burst"])
def test_passive_meets_the_acceptance_bar(fault_kind):
    """Zero probe packets, recall >= 0.8, and a real detection time."""
    values = sweep(fault_kind)
    assert values["passive_probe_packets"] == 0
    assert values["passive_recall"] >= 0.8
    assert values["passive_ttd"] >= 0.0  # -1.0 would mean never detected


def test_active_cannot_probe_through_a_cca_lockout():
    """The paper-relevant result: a channel-wide interference burst jams
    carrier sense fleet-wide, so active diagnosis cannot get one probe on
    the air — while the listener, which needs no airtime, names the
    channel immediately."""
    values = sweep("interference_burst")
    assert values["active_probe_packets"] == 0  # CCA never cleared
    assert values["active_recall"] == 0.0
    assert values["passive_recall"] == 1.0
    assert values["hybrid_recall"] == 1.0  # the merge rescues hybrid


def test_passive_listens_ahead_of_the_assessment_cadence():
    """Passive detects on its poll cadence; active waits for the next
    scheduled assessment, so passive's time-to-detect is never worse."""
    values = sweep("link_degrade")
    assert 0.0 <= values["passive_ttd"] <= values["active_ttd"]
    assert values["active_probe_packets"] > 0


def test_every_fault_kind_reports_per_mode_metrics():
    """The full seven-kind matrix: each mode reports its quartet for
    every fault kind, passive never transmits, and the scenario stays
    honest about misses (ttd == -1.0 instead of a fabricated score)."""
    for fault_kind in FAULT_KINDS:
        values = sweep(fault_kind)
        assert values["fault_kind"] == fault_kind
        for mode in MODES:
            for metric in ("precision", "recall", "ttd", "probe_packets"):
                assert f"{mode}_{metric}" in values, (fault_kind, mode)
            assert 0.0 <= values[f"{mode}_precision"] <= 1.0
            assert 0.0 <= values[f"{mode}_recall"] <= 1.0
            ttd = values[f"{mode}_ttd"]
            assert ttd == -1.0 or ttd >= 0.0
        assert values["passive_probe_packets"] == 0, fault_kind


def test_sweep_is_deterministic_per_seed():
    assert sweep("link_degrade") == sweep("link_degrade")
