"""Traffic-light and recommendation rendering of diagnosis reports."""

import json

import pytest

from repro.diag.findings import FINDING_KINDS, DiagnosisReport, Finding
from repro.diag.render import (
    GREEN,
    RED,
    YELLOW,
    health_view,
    recommendation,
    traffic_light,
    worst_light,
)


def make(kind, **kw):
    defaults = {
        "dead_node": {"node": 4},
        "broken_link": {"link": (2, 3)},
        "asymmetric_link": {"link": (5, 6)},
        "lossy_link": {"link": (1, 2)},
        "hotspot": {"node": 3},
        "interference": {"channel": 17, "node": 2},
    }[kind]
    return Finding(kind=kind, **{**defaults, **kw})


# -- traffic lights -----------------------------------------------------------

@pytest.mark.parametrize("kind, light", [
    ("dead_node", RED),
    ("broken_link", RED),
    ("asymmetric_link", YELLOW),
    ("lossy_link", YELLOW),
    ("hotspot", YELLOW),
    ("interference", YELLOW),
])
def test_kind_to_light(kind, light):
    assert traffic_light(make(kind, confidence=0.95)) == light


def test_low_confidence_red_demotes_to_yellow():
    assert traffic_light(make("broken_link", confidence=0.3)) == YELLOW
    assert traffic_light(make("dead_node", confidence=0.49)) == YELLOW
    assert traffic_light(make("dead_node", confidence=0.5)) == RED


def test_worst_light():
    assert worst_light([]) == GREEN
    assert worst_light([GREEN, YELLOW]) == YELLOW
    assert worst_light([YELLOW, RED, GREEN]) == RED


# -- recommendations ----------------------------------------------------------

@pytest.mark.parametrize("kind", FINDING_KINDS)
def test_every_kind_has_a_recommendation(kind):
    text = recommendation(make(kind))
    assert isinstance(text, str) and len(text) > 20
    # A recommendation is imperative prose, not a raw verdict dump.
    assert "_" not in text


def test_recommendation_names_the_subject():
    assert "node 4" in recommendation(make("dead_node"))
    assert "nodes 2 and 3" in recommendation(make("broken_link"))
    assert "channel 17" in recommendation(make("interference"))


def test_lossy_recommendation_quotes_loss_rate():
    finding = make("lossy_link", evidence={"loss_ratio": 0.4})
    assert "40% probe loss" in recommendation(finding)


# -- the health view ----------------------------------------------------------

def test_healthy_report_is_all_green():
    view = health_view(DiagnosisReport(), nodes=[1, 2], links=[(1, 2)])
    assert view["status"] == GREEN
    assert view["healthy"] is True
    assert view["nodes"] == {"1": {"status": GREEN}, "2": {"status": GREEN}}
    assert view["links"] == {"1->2": {"status": GREEN}}
    assert view["findings"] == [] and view["recommendations"] == []


def test_findings_paint_their_subjects():
    report = DiagnosisReport(findings=sorted([
        make("broken_link", confidence=0.97,
             summary="10/10 probes lost"),
        make("hotspot", confidence=0.8),
    ], key=Finding.sort_key))
    view = health_view(report, nodes=[1, 2, 3], links=[(1, 2), (2, 3)])
    assert view["status"] == RED
    link = view["links"]["2->3"]
    assert link["status"] == RED and link["kind"] == "broken_link"
    assert "recommendation" in link and "relay" in link["recommendation"]
    assert view["nodes"]["3"]["status"] == YELLOW
    assert view["nodes"]["1"] == {"status": GREEN}
    assert view["counts"] == {"broken_link": 1, "hotspot": 1}


def test_unwatched_subjects_still_reported():
    report = DiagnosisReport(findings=[make("dead_node", confidence=0.95)])
    view = health_view(report)  # nothing watched
    assert view["nodes"]["4"]["status"] == RED


def test_interference_lands_in_channels_group():
    report = DiagnosisReport(findings=[make("interference")])
    view = health_view(report)
    assert view["channels"]["17"]["status"] == YELLOW
    assert "channels" not in health_view(DiagnosisReport())


def test_multiple_findings_on_one_subject_keep_worst_light():
    # Severity order puts broken_link before lossy_link on the same link.
    report = DiagnosisReport(findings=sorted([
        make("lossy_link", link=(2, 3), confidence=0.6),
        make("broken_link", link=(2, 3), confidence=0.95),
    ], key=Finding.sort_key))
    view = health_view(report)
    assert view["links"]["2->3"]["status"] == RED
    assert view["links"]["2->3"]["kind"] == "broken_link"


def test_view_is_json_ready_and_carries_times():
    report = DiagnosisReport(findings=[make("lossy_link")], probes_run=5)
    view = health_view(report, sim_time=12.5, assessed_at=10.0,
                       extra={"fleet": "field"})
    round_tripped = json.loads(json.dumps(view))
    assert round_tripped["sim_time"] == 12.5
    assert round_tripped["assessed_at"] == 10.0
    assert round_tripped["fleet"] == "field"
    assert round_tripped["probes_run"] == 5
