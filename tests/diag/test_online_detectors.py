"""Table-driven synthetic-series tests for the passive detectors.

Every case feeds a hand-built series (step, ramp, burst-and-recovery,
flapping) or a synthetic beacon sequence into the detectors and asserts
the expected firing behaviour and finding vocabulary — no simulator, no
randomness, each scenario readable at a glance.  These tables pin the
``OnlineThresholds`` defaults: retuning a knob is expected to show up
here as a deliberate diff.
"""

import pytest

from repro.diag import (
    CusumDetector,
    EwmaDetector,
    OnlineMonitor,
    OnlineThresholds,
    WindowStats,
    merge_findings,
)
from repro.diag.findings import Finding

BASE = 100.0  # healthy LQI-like level for EWMA series


def series(*segments):
    """Build a flat series from (value, repeats) segments."""
    out = []
    for value, repeats in segments:
        out.extend([float(value)] * repeats)
    return out


# -- EwmaDetector: (name, series, expect_fired_at_end) -----------------------
# Detector config mirrors the LQI detector: direction="down",
# sigma_floor=2.0, k_on=4, k_off=2, hysteresis=3, min_samples=8.
EWMA_CASES = [
    # A clean level: never fires.
    ("stationary", series((BASE, 40)), False),
    # A hard step down (collapse): fires and stays fired.
    ("step_down", series((BASE, 20), (BASE - 50, 10)), True),
    # A step *up* is the wrong direction for a "down" detector.
    ("step_up", series((BASE, 20), (BASE + 50, 10)), False),
    # A burst shorter than the hysteresis never fires.
    ("blip", series((BASE, 20), (BASE - 50, 2), (BASE, 10)), False),
    # Burst then recovery: fires during, recovers after (k_off + hyst).
    ("burst_recovery",
     series((BASE, 20), (BASE - 50, 10), (BASE, 10)), False),
    # A gentle ramp is absorbed by the adaptive baseline.
    ("gentle_ramp",
     series((BASE, 20)) + [BASE - 0.2 * i for i in range(40)], False),
    # A cliff-steep ramp outruns the baseline and fires.
    ("steep_ramp",
     series((BASE, 20)) + [BASE - 25.0 * i for i in range(1, 9)], True),
    # Flapping between two levels never yields `hysteresis` consecutive
    # outliers once the deviation adapts: no finding churn.
    ("flapping", series((BASE, 20)) + [BASE - (50 if i % 2 else 0)
                                       for i in range(30)], False),
]


@pytest.mark.parametrize("name,values,expect", EWMA_CASES,
                         ids=[c[0] for c in EWMA_CASES])
def test_ewma_series_table(name, values, expect):
    det = EwmaDetector(alpha=0.2, k_on=4.0, k_off=2.0, hysteresis=3,
                       min_samples=8, sigma_floor=2.0, direction="down")
    for v in values:
        det.update(v)
    assert det.fired is expect
    if expect:
        assert 0.5 <= det.confidence <= 1.0
        assert det.shift >= det.k_on
    else:
        assert det.confidence == 0.0
        assert det.shift == 0.0


def test_ewma_fires_mid_burst_and_recovers_after():
    """The burst_recovery case, with the timing pinned: fired exactly
    from the `hysteresis`-th outlier until `hysteresis` in-band samples
    after the level returns."""
    det = EwmaDetector(alpha=0.2, k_on=4.0, k_off=2.0, hysteresis=3,
                       min_samples=8, sigma_floor=2.0, direction="down")
    for v in series((BASE, 20)):
        det.update(v)
    assert not det.update(BASE - 50)
    assert not det.update(BASE - 50)
    assert det.update(BASE - 50)          # 3rd consecutive outlier: on
    assert det.update(BASE - 50)
    assert det.update(BASE)
    assert det.update(BASE)
    assert not det.update(BASE)           # 3rd in-band sample: off


# -- CusumDetector: (name, series, expect_fired_at_end) ----------------------
# Config mirrors the loss detector: slack=0.15, threshold=2.0, cap=4.0.
CUSUM_CASES = [
    ("no_loss", series((0.0, 40)), False),
    # Ambient loss below the slack never accumulates.
    ("ambient_loss", series((0.0, 9), (1.0, 1)) * 8, False),
    # A hard outage fires within ceil(threshold / (1 - slack)) samples.
    ("outage", series((0.0, 10), (1.0, 3)), True),
    # Outage then recovery: the cap bounds the drain-out time.
    ("outage_recovery", series((0.0, 10), (1.0, 20), (0.0, 14)), False),
    # Sub-threshold burst, fully drained before the next one: no fire.
    ("spaced_bursts",
     series((0.0, 10), (1.0, 2), (0.0, 12)) * 3, False),
]


@pytest.mark.parametrize("name,values,expect", CUSUM_CASES,
                         ids=[c[0] for c in CUSUM_CASES])
def test_cusum_series_table(name, values, expect):
    det = CusumDetector(target=0.0, slack=0.15, threshold=2.0, cap=4.0)
    for v in values:
        det.update(v)
    assert det.fired is expect
    assert 0.0 <= det.statistic <= det.cap


def test_cusum_recovery_is_bounded_by_cap():
    """However long the outage, (cap - threshold) / slack clean samples
    de-assert the detector — the regression the cap exists for."""
    det = CusumDetector(target=0.0, slack=0.15, threshold=2.0, cap=4.0)
    for _ in range(500):                  # arbitrarily long outage
        det.update(1.0)
    assert det.fired and det.statistic == det.cap
    need = int((det.cap - det.threshold) / det.slack) + 1
    for _ in range(need):
        det.update(0.0)
    assert not det.fired


def test_windowstats_matches_rescan_and_evicts():
    ws = WindowStats(8)
    import math
    data = [float((i * 37) % 11) - 3.0 for i in range(50)]
    for i, v in enumerate(data):
        ws.push(v)
        live = data[max(0, i + 1 - 8):i + 1]
        assert ws.values() == live
        assert ws.mean == pytest.approx(sum(live) / len(live))
        mu = sum(live) / len(live)
        var = sum((x - mu) ** 2 for x in live) / len(live)
        assert ws.variance == pytest.approx(var, abs=1e-9)
        assert ws.std == pytest.approx(math.sqrt(var), abs=1e-9)
    assert ws.full and len(ws) == 8


# -- Synthetic beacon sequences through a detached OnlineMonitor -------------

INTERVAL = 2.0


def feed_link(mon, origin, receiver, *, n, t0=0.0, seq0=0,
              interval=INTERVAL, lqi=100.0, rssi=-60.0, channel=17,
              lost=()):
    """Feed ``n`` beacon slots on one directed link; slots whose index
    is in ``lost`` are skipped (a seq gap, exactly as the air would
    show it).  Returns the time after the last slot."""
    t = t0
    for i in range(n):
        t = t0 + (i + 1) * interval
        if i in lost:
            continue
        mon.observe_beacon(receiver, origin, seq=(seq0 + i + 1) & 0xFFFF,
                           lqi=lqi, rssi=rssi, channel=channel, now=t)
    return t


def healthy_mesh(mon, *, n=20, links=((1, 2), (2, 1), (2, 3), (3, 2))):
    """A few healthy directed links, enough beacons to clear warm-up."""
    t = 0.0
    for a, b in links:
        t = feed_link(mon, a, b, n=n)
    return t


def test_healthy_links_yield_no_findings():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    assert mon.poll(now=t) == []


def test_silence_on_all_links_names_a_dead_node():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    # Node 2 keeps hearing 1 and 3, but nobody hears 2 any more.
    feed_link(mon, 1, 2, n=10, t0=t, seq0=20)
    t2 = feed_link(mon, 3, 2, n=10, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [f.kind for f in findings] == ["dead_node"]
    assert findings[0].node == 2
    assert 0.5 <= findings[0].confidence <= 0.95


def test_partial_silence_is_a_broken_link_not_a_death():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    # Node 3 still hears 2; only the 2->1 direction went quiet.
    feed_link(mon, 2, 3, n=10, t0=t, seq0=20)
    feed_link(mon, 1, 2, n=10, t0=t, seq0=20)
    t2 = feed_link(mon, 3, 2, n=10, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [(f.kind, f.link) for f in findings] == [("broken_link", (2, 1))]


def test_seq_gaps_name_a_lossy_link():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    # Half the beacons on 2->3 vanish; the reverse stays clean.
    lost = tuple(range(0, 20, 2))
    feed_link(mon, 2, 3, n=20, t0=t, seq0=20, lost=lost)
    feed_link(mon, 3, 2, n=20, t0=t, seq0=20)
    feed_link(mon, 1, 2, n=20, t0=t, seq0=20)
    t2 = feed_link(mon, 2, 1, n=20, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [(f.kind, f.link) for f in findings] == [("lossy_link", (2, 3))]
    # 10 losses in the 32-slot ring (the rest pre-date the fault).
    assert findings[0].evidence["recent_loss"] == pytest.approx(10 / 32)


def test_lqi_collapse_names_a_lossy_link():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    feed_link(mon, 2, 3, n=15, t0=t, seq0=20, lqi=30.0)
    feed_link(mon, 3, 2, n=15, t0=t, seq0=20)
    feed_link(mon, 1, 2, n=15, t0=t, seq0=20)
    t2 = feed_link(mon, 2, 1, n=15, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [(f.kind, f.link) for f in findings] == [("lossy_link", (2, 3))]
    assert findings[0].evidence["metric"] == "lqi"


def test_both_directions_degraded_collapse_to_one_finding():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    lost = tuple(range(0, 20, 2))
    feed_link(mon, 2, 3, n=20, t0=t, seq0=20, lost=lost)
    feed_link(mon, 3, 2, n=20, t0=t, seq0=20, lost=lost)
    feed_link(mon, 1, 2, n=20, t0=t, seq0=20)
    t2 = feed_link(mon, 2, 1, n=20, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [(f.kind, f.link) for f in findings] == [("lossy_link", (2, 3))]


def test_sequence_restart_is_a_reboot_not_phantom_loss():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    # Node 2 reboots: its seq restarts near 0.  A naive gap computation
    # would charge ~65k lost beacons; the monitor must re-anchor.
    feed_link(mon, 2, 3, n=15, t0=t, seq0=0)
    feed_link(mon, 2, 1, n=15, t0=t, seq0=0)
    feed_link(mon, 3, 2, n=15, t0=t, seq0=20)
    t2 = feed_link(mon, 1, 2, n=15, t0=t, seq0=20)
    assert mon.poll(now=t2) == []


def test_simultaneous_multi_link_loss_names_interference():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    links = ((1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1))
    t = healthy_mesh(mon, links=links)
    # Every link on channel 17 starts dropping half its beacons at once
    # - spanning 3 origins and 3 receivers, no common endpoint.
    lost = tuple(range(0, 20, 2))
    for a, b in links:
        t2 = feed_link(mon, a, b, n=20, t0=t, seq0=20, lost=lost)
    findings = mon.poll(now=t2)
    assert [f.kind for f in findings] == ["interference"]
    assert findings[0].channel == 17
    assert findings[0].evidence["links_degraded"] == len(links)


def test_clock_drift_names_a_hotspot():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    # Node 2's oscillator runs 8% fast: everything it sends arrives
    # on a proportionally shorter cadence, at both receivers.
    drifted = INTERVAL / 1.08
    feed_link(mon, 2, 3, n=40, t0=t, seq0=20, interval=drifted)
    feed_link(mon, 2, 1, n=40, t0=t, seq0=20, interval=drifted)
    feed_link(mon, 3, 2, n=40, t0=t, seq0=20)
    t2 = feed_link(mon, 1, 2, n=40, t0=t, seq0=20)
    findings = mon.poll(now=t2)
    assert [(f.kind, f.node) for f in findings] == [("hotspot", 2)]
    assert findings[0].evidence["interval_shift"] == pytest.approx(
        1 / 1.08 - 1, abs=0.01)
    assert findings[0].evidence["links_agreeing"] == 2


def test_loss_recovery_clears_the_finding():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    t = healthy_mesh(mon)
    lost = tuple(range(0, 20, 2))
    feed_link(mon, 2, 3, n=20, t0=t, seq0=20, lost=lost)
    for a, b in ((2, 1), (1, 2), (3, 2)):      # bystanders stay alive
        t2 = feed_link(mon, a, b, n=20, t0=t, seq0=20)
    assert any(f.kind == "lossy_link" for f in mon.poll(now=t2))
    # Clean beacons both drain the CUSUM and dilute the loss window.
    for a, b in ((2, 3), (2, 1), (1, 2), (3, 2)):
        t3 = feed_link(mon, a, b, n=40, t0=t2, seq0=40)
    assert mon.poll(now=t3) == []


def test_poll_detached_requires_explicit_now():
    mon = OnlineMonitor(nominal_interval=INTERVAL)
    with pytest.raises(ValueError):
        mon.poll()
    with pytest.raises(ValueError):
        OnlineMonitor().attach()


def test_thresholds_are_overridable():
    # A silence_factor of 2 halves the time-to-silence: node 3 goes
    # quiet at t, and the tighter threshold calls it dead in half the
    # missed intervals the default needs.
    cases = ((None, 3.0, 5.5),
             (OnlineThresholds(silence_factor=2.0), 1.5, 3.0))
    for thresholds, quiet_ivals, fired_ivals in cases:
        mon = OnlineMonitor(thresholds=thresholds,
                            nominal_interval=INTERVAL)
        t = healthy_mesh(mon)
        for a, b in ((1, 2), (2, 1), (2, 3)):  # bystanders stay alive
            feed_link(mon, a, b, n=12, t0=t, seq0=20)
        assert mon.poll(now=t + quiet_ivals * INTERVAL) == []
        kinds = [f.kind for f in mon.poll(now=t + fired_ivals * INTERVAL)]
        assert kinds == ["dead_node"], (thresholds, kinds)


# -- merge_findings -----------------------------------------------------------

def _f(kind, **kw):
    return Finding(kind=kind, confidence=0.8, summary="t", **kw)


def test_merge_dedups_by_subject_and_folds_link_kinds():
    active = [_f("lossy_link", link=(2, 3))]
    passive = [_f("broken_link", link=(3, 2)),   # same pair, other dir
               _f("dead_node", node=5)]
    merged = merge_findings(active, passive)
    assert [(f.kind, f.link, f.node) for f in merged] == [
        ("dead_node", None, 5), ("lossy_link", (2, 3), None)]


def test_merge_primary_wins_on_conflicts():
    active = [_f("dead_node", node=4)]
    passive = [_f("dead_node", node=4)]
    merged = merge_findings(active, passive)
    assert len(merged) == 1 and merged[0] is active[0]


def test_merge_interference_explains_dead_nodes():
    # While a channel is jammed, CSMA silences every transmitter: an
    # active probe's "dead node" claim is unprovable and is dropped.
    active = [_f("dead_node", node=n) for n in range(1, 8)]
    passive = [_f("interference", node=1, channel=17)]
    merged = merge_findings(active, passive)
    assert [f.kind for f in merged] == ["interference"]
