"""Golden determinism of canonical Finding JSON under a fixed seed.

``tests/golden/diag_findings_golden.json`` pins the byte-exact
canonical JSON a seeded diagnosis run emits — findings and the scored
matches.  If a future change legitimately alters diagnosis output
(new evidence keys, retuned thresholds), recapture the fixture
deliberately with ``tests/diag/test_golden_findings.py --capture``
(see ``capture()`` below); never loosen the asserts.
"""

import json
import pathlib

from repro.campaign.scenarios import resolve_scenario
from repro.core.deploy import deploy_liteview
from repro.diag import DiagnosisEngine, ProbePlan
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

GOLDEN_PATH = (pathlib.Path(__file__).parent.parent
               / "golden" / "diag_findings_golden.json")

PLAN = FaultPlan(name="golden-diag", specs=(
    FaultSpec(kind="link_degrade", at=20.0, link=(2, 3), loss_db=80.0),
    FaultSpec(kind="node_crash", at=20.0, nodes=(6,)),
))


def run_sweep() -> dict:
    """The fixture generator: one seeded diagnosis_sweep, serialized."""
    scenario = resolve_scenario("diagnosis_sweep")
    _, values = scenario(7, nodes=8, fault_plan=PLAN.to_param())
    return {
        "finding_json": [
            json.dumps(f, sort_keys=True, separators=(",", ":"))
            for f in values["findings"]
        ],
        "precision": values["precision"],
        "recall": values["recall"],
    }


def run_engine_report() -> dict:
    """A direct engine run (no campaign): report-level canonical JSON."""
    testbed = build_chain(8, spacing=60.0, seed=7,
                          propagation_kwargs=QUIET_PROPAGATION)
    install_faults(testbed, PLAN)
    deployment = deploy_liteview(testbed, warm_up=15.0)
    testbed.warm_up(25.0 - testbed.env.now)
    report = DiagnosisEngine(deployment).run(ProbePlan(
        links=tuple((i, i + 1) for i in range(1, 8)), rounds=6, length=16))
    return {"report_json": report.to_json()}


def capture() -> dict:
    return {"sweep_seed7": run_sweep(),
            "engine_report_seed7": run_engine_report()}


GOLDEN = (json.loads(GOLDEN_PATH.read_text())
          if GOLDEN_PATH.exists() else {})  # empty only mid-recapture


def test_sweep_findings_match_golden_bytes():
    assert run_sweep() == GOLDEN["sweep_seed7"]


def test_engine_report_matches_golden_bytes():
    assert run_engine_report() == GOLDEN["engine_report_seed7"]


def test_same_seed_twice_is_identical():
    assert run_engine_report() == run_engine_report()


if __name__ == "__main__":  # fixture recapture entry point
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"captured {GOLDEN_PATH}")
