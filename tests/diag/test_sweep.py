"""The diagnosis_sweep campaign scenario: the closed diagnosis loop.

Inject a known fault plan, run the engine, score against ground truth —
and do it identically whether the campaign runs serial or sharded over
a spawn pool (findings and scores ride the deterministic-seeding
contract the campaign runner already guarantees for counters).
"""

import pytest

from repro.campaign import Campaign, run_campaign
from repro.campaign.scenarios import resolve_scenario
from repro.faults import FaultPlan, FaultSpec

#: One standing broken link plus one dead node, both landed by t=20.
ACCEPTANCE_PLAN = FaultPlan(name="acceptance", specs=(
    FaultSpec(kind="link_degrade", at=20.0, link=(2, 3), loss_db=80.0),
    FaultSpec(kind="node_crash", at=20.0, nodes=(6,)),
))


def test_sweep_recalls_the_injected_faults():
    scenario = resolve_scenario("diagnosis_sweep")
    _, values = scenario(7, nodes=8, fault_plan=ACCEPTANCE_PLAN.to_param())
    assert values["recall"] == 1.0
    assert values["precision"] == 1.0
    assert values["tp"] == 2 and values["fp"] == 0 and values["fn"] == 0
    assert values["n_faults"] == 2
    named = {(f["kind"], f.get("node"), tuple(f.get("link", ())))
             for f in values["findings"]}
    assert ("dead_node", 6, ()) in named
    assert ("broken_link", None, (2, 3)) in named


def test_sweep_with_no_plan_is_a_healthy_control():
    scenario = resolve_scenario("diagnosis_sweep")
    _, values = scenario(7, nodes=4, fault_plan=None)
    assert values["n_faults"] == 0
    assert values["recall"] == 1.0  # vacuous: nothing to find
    assert values["n_findings"] == 0


SWEEP_CAMPAIGN = Campaign(
    name="diag-acceptance", scenario="diagnosis_sweep", seed=7,
    base_params={"fault_plan": ACCEPTANCE_PLAN.to_param(), "nodes": 8},
    repeats=1,
)


def test_campaign_run_scores_diagnosis_quality():
    out = run_campaign(SWEEP_CAMPAIGN, workers=1)
    assert out.failures == []
    (run,) = out.runs
    assert run.values["recall"] == 1.0
    assert run.values["precision"] == 1.0


@pytest.mark.slow
def test_sharded_sweep_is_bit_for_bit_serial():
    """Findings, scores and packet digests are worker-count invariant."""
    serial = run_campaign(SWEEP_CAMPAIGN, workers=1)
    sharded = run_campaign(SWEEP_CAMPAIGN, workers=2, mp_context="spawn")
    assert sharded.failures == []
    assert sharded.digest() == serial.digest()
    assert [r.values for r in sharded.runs] == [r.values for r in serial.runs]
    assert [r.packet_sha256 for r in sharded.runs] == \
        [r.packet_sha256 for r in serial.runs]
