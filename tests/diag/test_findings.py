"""The Finding schema: validation, canonical JSON, report rendering."""

import json

import pytest

from repro.diag import FINDING_KINDS, DiagnosisReport, Finding


def test_kind_vocabulary_is_closed():
    with pytest.raises(ValueError, match="unknown finding kind"):
        Finding(kind="flaky_link")


def test_severity_order_worst_first():
    assert FINDING_KINDS[0] == "dead_node"
    assert FINDING_KINDS.index("broken_link") < FINDING_KINDS.index("hotspot")


def test_subject_names_the_right_thing():
    assert Finding(kind="broken_link", link=(2, 3)).subject == "link 2->3"
    assert Finding(kind="dead_node", node=6).subject == "node 6"
    assert Finding(kind="interference", channel=20).subject == "channel 20"
    assert Finding(kind="interference", channel=20, node=4).subject \
        == "channel 20 at node 4"


def test_link_coerced_to_tuple():
    finding = Finding(kind="lossy_link", link=[4, 5])
    assert finding.link == (4, 5)


def test_to_dict_omits_unset_subjects():
    data = Finding(kind="dead_node", node=6, confidence=0.95).to_dict()
    assert data == {"kind": "dead_node", "confidence": 0.95, "node": 6}
    assert "link" not in data and "channel" not in data


def test_to_json_is_canonical():
    finding = Finding(kind="broken_link", link=(2, 3), confidence=1.0,
                      summary="0/6 probes returned",
                      evidence={"sent": 6, "received": 0,
                                "loss_ratio": 1.0000000001})
    text = finding.to_json()
    # Sorted keys, no whitespace, floats rounded: byte-stable output.
    assert text == ('{"confidence":1.0,"evidence":{"loss_ratio":1.0,'
                    '"received":0,"sent":6},"kind":"broken_link",'
                    '"link":[2,3],"summary":"0/6 probes returned"}')
    assert json.loads(text) == finding.to_dict()


def test_evidence_floats_round_only_at_serialization():
    finding = Finding(kind="hotspot", node=3,
                      evidence={"score": 1.23456789,
                                "nested": {"rtt": [1.00049, 2.0]}})
    # The raw evidence keeps full precision (wrappers rebuild from it) …
    assert finding.evidence["score"] == 1.23456789
    # … and the serialized form rounds recursively to 3 decimals.
    data = finding.to_dict()["evidence"]
    assert data["score"] == 1.235
    assert data["nested"]["rtt"] == [1.0, 2.0]


def test_from_dict_round_trip():
    original = Finding(kind="asymmetric_link", link=(1, 2), confidence=0.75,
                       summary="forward/backward differs",
                       evidence={"lqi_delta": 20.0})
    assert Finding.from_dict(original.to_dict()) == original


def test_sort_key_orders_by_severity_then_subject():
    findings = [
        Finding(kind="hotspot", node=3),
        Finding(kind="broken_link", link=(4, 5)),
        Finding(kind="broken_link", link=(2, 3)),
        Finding(kind="dead_node", node=6),
    ]
    ordered = sorted(findings, key=Finding.sort_key)
    assert [f.kind for f in ordered] == [
        "dead_node", "broken_link", "broken_link", "hotspot"]
    assert ordered[1].link == (2, 3)


def test_render_one_line_verdict():
    finding = Finding(kind="broken_link", link=(2, 3), confidence=0.97,
                      summary="all probes lost")
    assert finding.render() == "[broken_link] link 2->3 (0.97): all probes lost"


# -- DiagnosisReport ----------------------------------------------------------

def _report():
    return DiagnosisReport(
        findings=[Finding(kind="dead_node", node=6, confidence=0.95,
                          evidence={"failure": "unreachable"}),
                  Finding(kind="broken_link", link=(2, 3),
                          summary="0/6 probes returned")],
        started_at=25.0, finished_at=67.5, probes_run=7, probes_failed=1,
        path_stories=["Path 1 -> 8: DID NOT reach the target over 1 hop(s)."],
    )


def test_report_of_kind_and_len():
    report = _report()
    assert len(report) == 2
    assert [f.node for f in report.of_kind("dead_node")] == [6]
    assert not report.of_kind("hotspot")
    with pytest.raises(ValueError, match="unknown finding kind"):
        report.of_kind("bogus")


def test_report_healthy_only_without_findings():
    assert DiagnosisReport().healthy
    assert not _report().healthy


def test_report_explain_tells_the_whole_story():
    text = _report().explain()
    assert "Diagnosed 2 problem(s):" in text
    assert "[dead_node] node 6 (0.95)" in text
    assert "failure = unreachable" in text          # evidence lines
    assert "Ran 7 probe(s), 1 failed, over 42.5 s" in text
    assert "Path 1 -> 8" in text                     # path narrative
    healthy = DiagnosisReport(probes_run=3).explain()
    assert "No problems diagnosed" in healthy


def test_report_to_json_is_canonical():
    text = _report().to_json()
    assert text == json.dumps(_report().to_dict(), sort_keys=True,
                              separators=(",", ":"))
    assert '": ' not in text  # no padding after separators
