"""Golden determinism of canonical passive-finding JSON.

``tests/golden/online_findings_golden.json`` pins the byte-exact
canonical JSON a seeded *passive* run emits — the zero-probe twin of
``tests/diag/test_golden_findings.py``.  If a future change
legitimately alters passive output (new evidence keys, retuned
``OnlineThresholds``), recapture deliberately with
``PYTHONPATH=src python tests/diag/test_online_golden.py``;
never loosen the asserts.
"""

import json
import pathlib

from repro.core.deploy import deploy_liteview
from repro.diag import OnlineMonitor, score_findings
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

GOLDEN_PATH = (pathlib.Path(__file__).parent.parent
               / "golden" / "online_findings_golden.json")

# The same injuries the active golden diagnoses, listened to instead.
PLAN = FaultPlan(name="golden-online", specs=(
    FaultSpec(kind="link_degrade", at=20.0, link=(2, 3), loss_db=80.0),
    FaultSpec(kind="node_crash", at=20.0, nodes=(6,)),
))


def run_passive() -> dict:
    """The fixture generator: a seeded passive listen, serialized."""
    testbed = build_chain(8, spacing=60.0, seed=7,
                          propagation_kwargs=QUIET_PROPAGATION)
    install_faults(testbed, PLAN)
    online = OnlineMonitor(testbed).attach()
    deploy_liteview(testbed, warm_up=15.0)
    testbed.run(until=60.0)
    report = online.report()
    score = score_findings(report.findings, PLAN, at=60.0)
    return {
        "finding_json": [f.to_json() for f in report.findings],
        "report_json": report.to_json(),
        "precision": score["precision"],
        "recall": score["recall"],
        "probes_run": report.probes_run,
        "beacons_seen": online.beacons_seen,
    }


GOLDEN = (json.loads(GOLDEN_PATH.read_text())
          if GOLDEN_PATH.exists() else {})  # empty only mid-recapture


def test_passive_findings_match_golden_bytes():
    assert run_passive() == GOLDEN["passive_seed7"]


def test_passive_run_names_both_faults():
    got = run_passive()
    assert got["recall"] == 1.0
    assert got["probes_run"] == 0


def test_same_seed_twice_is_identical():
    assert run_passive() == run_passive()


if __name__ == "__main__":  # fixture recapture entry point
    GOLDEN_PATH.write_text(
        json.dumps({"passive_seed7": run_passive()}, indent=2) + "\n")
    print(f"captured {GOLDEN_PATH}")
