"""Ground-truth scoring: match rules, active windows, precision/recall."""

from repro.diag import Finding, active_specs, score_findings, spec_matches_finding
from repro.faults import FaultPlan, FaultSpec


def _dead(node):
    return Finding(kind="dead_node", node=node)


def _link(kind, link):
    return Finding(kind=kind, link=link)


# -- per-kind match rules -----------------------------------------------------

def test_node_crash_matches_dead_node():
    spec = FaultSpec(kind="node_crash", at=10.0, nodes=(6,))
    assert spec_matches_finding(spec, _dead(6))
    assert not spec_matches_finding(spec, _dead(5))
    assert not spec_matches_finding(spec, _link("broken_link", (5, 6)))


def test_node_reboot_matches_dead_node_in_window():
    spec = FaultSpec(kind="node_reboot", at=10.0, duration=5.0, nodes=(3,))
    assert spec_matches_finding(spec, _dead(3))


def test_link_degrade_matches_either_direction_unless_directed():
    spec = FaultSpec(kind="link_degrade", at=10.0, link=(2, 3), loss_db=40.0)
    assert spec_matches_finding(spec, _link("broken_link", (2, 3)))
    assert spec_matches_finding(spec, _link("lossy_link", (3, 2)))
    assert spec_matches_finding(spec, _link("asymmetric_link", (2, 3)))
    assert not spec_matches_finding(spec, _link("broken_link", (3, 4)))
    directed = FaultSpec(kind="link_degrade", at=10.0, link=(2, 3),
                         loss_db=40.0, directed=True)
    assert spec_matches_finding(directed, _link("broken_link", (2, 3)))
    assert not spec_matches_finding(directed, _link("broken_link", (3, 2)))


def test_interference_matches_on_channel():
    spec = FaultSpec(kind="interference_burst", at=10.0, duration=2.0,
                     channel=20, loss_db=30.0)
    assert spec_matches_finding(spec, Finding(kind="interference", channel=20))
    assert not spec_matches_finding(
        spec, Finding(kind="interference", channel=21))


def test_packet_corrupt_matches_loss_touching_scoped_node():
    spec = FaultSpec(kind="packet_corrupt", at=10.0, probability=0.4,
                     nodes=(3,))
    assert spec_matches_finding(spec, _link("lossy_link", (2, 3)))
    assert spec_matches_finding(spec, _link("broken_link", (3, 4)))
    assert not spec_matches_finding(spec, _link("lossy_link", (1, 2)))
    unscoped = FaultSpec(kind="packet_corrupt", at=10.0, probability=0.4)
    assert spec_matches_finding(unscoped, _link("lossy_link", (1, 2)))


def test_queue_saturate_matches_hotspot_or_adjacent_loss():
    spec = FaultSpec(kind="queue_saturate", at=10.0, nodes=(3,), capacity=1)
    assert spec_matches_finding(spec, Finding(kind="hotspot", node=3))
    assert spec_matches_finding(spec, _link("lossy_link", (2, 3)))
    assert not spec_matches_finding(spec, Finding(kind="hotspot", node=2))
    assert not spec_matches_finding(spec, _link("lossy_link", (1, 2)))


def test_clock_drift_matches_any_hotspot():
    spec = FaultSpec(kind="clock_drift", at=10.0, nodes=(2,), drift=1.0)
    assert spec_matches_finding(spec, Finding(kind="hotspot", node=3))
    assert not spec_matches_finding(spec, _dead(2))


# -- active windows -----------------------------------------------------------

def _plan(*specs, **kw):
    return FaultPlan(name="test", specs=specs, **kw)


def test_active_specs_filters_by_time():
    open_ended = FaultSpec(kind="node_crash", at=20.0, nodes=(6,))
    transient = FaultSpec(kind="interference_burst", at=10.0, duration=5.0,
                          channel=20, loss_db=30.0)
    plan = _plan(open_ended, transient)
    assert active_specs(plan, at=5.0) == []          # nothing started
    assert active_specs(plan, at=12.0) == [transient]
    assert active_specs(plan, at=30.0) == [open_ended]  # burst expired
    assert active_specs(plan, at=None) == [open_ended, transient]


def test_reboot_downtime_defines_its_active_window():
    reboot = FaultSpec(kind="node_reboot", at=10.0, duration=5.0, nodes=(3,))
    plan = _plan(reboot)
    assert active_specs(plan, at=12.0) == [reboot]
    assert active_specs(plan, at=16.0) == []  # back up again


def test_disabled_plan_has_no_ground_truth():
    spec = FaultSpec(kind="node_crash", at=10.0, nodes=(6,))
    assert active_specs(_plan(spec, enabled=False), at=20.0) == []


# -- precision / recall -------------------------------------------------------

def test_perfect_diagnosis_scores_one():
    plan = _plan(FaultSpec(kind="node_crash", at=10.0, nodes=(6,)),
                 FaultSpec(kind="link_degrade", at=10.0, link=(2, 3),
                           loss_db=40.0))
    score = score_findings([_dead(6), _link("broken_link", (2, 3))],
                           plan, at=20.0)
    assert score["tp"] == 2 and score["fp"] == 0 and score["fn"] == 0
    assert score["precision"] == 1.0 and score["recall"] == 1.0
    assert [m["fault"] for m in score["matches"]] == \
        ["node_crash", "link_degrade"]


def test_matching_is_greedy_one_to_one():
    # Two crashes cannot both claim the single dead_node finding.
    plan = _plan(FaultSpec(kind="node_crash", at=10.0, nodes=(5, 6)),
                 FaultSpec(kind="node_crash", at=10.0, nodes=(5, 6)))
    score = score_findings([_dead(5)], plan, at=20.0)
    assert score["tp"] == 1 and score["fn"] == 1 and score["fp"] == 0
    assert score["recall"] == 0.5


def test_unclaimed_findings_are_false_positives():
    plan = _plan(FaultSpec(kind="node_crash", at=10.0, nodes=(6,)))
    score = score_findings([_dead(6), _link("lossy_link", (1, 2))],
                           plan, at=20.0)
    assert score["fp"] == 1
    assert score["precision"] == 0.5


def test_empty_world_scores_perfect():
    score = score_findings([], _plan(), at=20.0)
    assert score["precision"] == 1.0 and score["recall"] == 1.0
    assert score["n_findings"] == 0 and score["n_faults"] == 0
