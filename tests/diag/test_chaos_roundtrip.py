"""Chaos round-trip: every FaultSpec kind → the engine names the injury.

One test per fault kind in the PR-4 vocabulary.  Each injects a single
fault, runs a probe plan an operator plausibly would, and asserts the
:func:`~repro.diag.score.score_findings` recall against the plan is 1.0
— i.e. the engine produced a finding that *names* the injected fault's
footprint (the link, the node, the channel), not merely "something".
"""

import statistics

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import probe_path
from repro.diag import DiagnosisEngine, ProbePlan, score_findings
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import Flow, TrafficGenerator, build_chain, corridor_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def _quiet_chain(spec, *, nodes=4, seed=3, warm_up=17.0):
    testbed = build_chain(nodes, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    plan = FaultPlan(name=f"chaos-{spec.kind}", specs=(spec,))
    install_faults(testbed, plan)
    deployment = deploy_liteview(testbed, warm_up=warm_up)
    return testbed, deployment, plan


def _diagnose(testbed, deployment, plan, probe_plan):
    at = testbed.env.now
    report = DiagnosisEngine(deployment).run(probe_plan)
    return report, score_findings(report.findings, plan, at=at)


def test_node_crash_named_as_dead_node():
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="node_crash", at=16.0, nodes=(3,)))
    report, score = _diagnose(
        testbed, deployment, plan,
        ProbePlan(links=((1, 2), (2, 3), (3, 4)), rounds=4, length=16))
    assert score["recall"] == 1.0
    assert [f.node for f in report.of_kind("dead_node")] == [3]


def test_node_reboot_caught_during_its_downtime():
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="node_reboot", at=16.0, duration=10.0, nodes=(3,)))
    # warm_up=17 lands the survey inside the 16..26 s outage window.
    report, score = _diagnose(
        testbed, deployment, plan,
        ProbePlan(links=((3, 4), (2, 3)), rounds=4, length=16))
    assert score["recall"] == 1.0 and score["precision"] == 1.0
    assert [f.node for f in report.of_kind("dead_node")] == [3]


def test_link_degrade_named_as_broken_link():
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="link_degrade", at=16.0, link=(2, 3), loss_db=80.0))
    report, score = _diagnose(
        testbed, deployment, plan,
        ProbePlan(links=((1, 2), (2, 3), (3, 4)), rounds=6, length=16))
    assert score["recall"] == 1.0 and score["precision"] == 1.0
    assert [f.link for f in report.of_kind("broken_link")] == [(2, 3)]


def test_interference_burst_named_on_its_channel():
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="interference_burst", at=16.0, duration=120.0,
                  channel=20, loss_db=30.0),
        warm_up=18.0)
    report, score = _diagnose(testbed, deployment, plan,
                              ProbePlan(scans=(2,)))
    assert score["recall"] == 1.0
    assert [f.channel for f in report.of_kind("interference")] == [20]


def test_packet_corrupt_surfaces_as_lossy_links_at_the_node():
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="packet_corrupt", at=16.0, probability=0.45,
                  nodes=(3,)))
    report, score = _diagnose(
        testbed, deployment, plan,
        ProbePlan(links=((1, 2), (2, 3), (3, 4)), rounds=10, length=16))
    assert score["recall"] == 1.0
    lossy = (report.of_kind("lossy_link") + report.of_kind("broken_link"))
    assert any(3 in f.link for f in lossy)


def test_queue_saturate_surfaces_as_loss_through_the_node():
    testbed = corridor_chain(5, seed=12)
    plan = FaultPlan(name="chaos-queue", specs=(
        FaultSpec(kind="queue_saturate", at=16.0, nodes=(3,), capacity=1),))
    install_faults(testbed, plan)
    deployment = deploy_liteview(testbed, warm_up=16.5)
    # Crossing flows keep the clamped relay's one queue slot contended.
    generator = TrafficGenerator(testbed, [
        Flow(src=2, dst=5, interval=0.03, payload_bytes=48),
        Flow(src=4, dst=1, interval=0.03, payload_bytes=48),
    ])
    generator.start()
    testbed.warm_up(2.0)
    try:
        report, score = _diagnose(
            testbed, deployment, plan,
            ProbePlan(links=((2, 3), (3, 4)), rounds=8, length=16))
    finally:
        generator.stop()
    assert score["recall"] == 1.0
    lossy = (report.of_kind("lossy_link") + report.of_kind("broken_link"))
    assert any(3 in f.link for f in lossy)


def test_clock_drift_surfaces_as_a_spurious_hotspot():
    # A clock running 3x fast on the probing node triples every RTT it
    # measures; against the pre-drift baseline that reads as congestion.
    testbed, deployment, plan = _quiet_chain(
        FaultSpec(kind="clock_drift", at=20.0, nodes=(2,), drift=2.0),
        warm_up=15.0)
    quiet = probe_path(deployment, 2, 4, rounds=3)
    baseline = statistics.fmean(h.rtt_ms for h in quiet.hops)
    testbed.warm_up(max(0.0, 25.0 - testbed.env.now))
    report, score = _diagnose(
        testbed, deployment, plan,
        ProbePlan(paths=((2, 4),), path_rounds=3, baseline_rtt_ms=baseline))
    assert score["recall"] == 1.0
    assert report.of_kind("hotspot")
    assert report.of_kind("hotspot")[0].evidence["score"] >= 1.5
