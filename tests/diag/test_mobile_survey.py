"""The mobile_city_survey scenario: churn-vs-fault discrimination.

The motivating failure mode (PAPERS.md, home-WLAN probing): transient,
geometry-driven link churn from a moving node looks like a degraded
link to a naive diagnoser.  The survey cell probes *static* links while
surveyors patrol through the districts and scores against an empty
fault plan — so any link-kind finding is a mobility-induced false
positive, and the recorded precision baseline must stay clean.
"""

from repro.campaign.scenarios import resolve_scenario

#: Small city so the suite stays fast; the CI smoke runs the default.
SMALL = dict(districts_x=2, districts_y=2, per_district=6,
             patrols=2, seconds=40.0)


def test_churn_is_not_reported_as_link_degrade():
    scenario = resolve_scenario("mobile_city_survey")
    _, values = scenario(7, **SMALL)
    # The surveyors really moved through the city...
    assert values["moved_nodes"] == 2
    assert values["mobility_updates"] > 30
    assert values["repositions"] >= values["mobility_updates"]
    # ...and the engine did not mistake the churn for link faults.
    assert values["link_findings"] == 0
    assert values["false_positives"] == 0
    assert values["findings"] == []
    # Motion kept the spatial index effective (no dense-regime collapse).
    assert values["pruned_fraction"] > 0.5


def test_survey_is_seed_deterministic():
    scenario = resolve_scenario("mobile_city_survey")
    tb_a, values_a = scenario(11, **SMALL)
    tb_b, values_b = scenario(11, **SMALL)
    assert values_a == values_b
    assert tb_a.monitor.packet_digest() == tb_b.monitor.packet_digest()


def test_explicit_mobility_plan_is_a_campaign_parameter():
    """A plan passed as canonical JSON overrides the default patrol —
    the same first-class-parameter contract fault plans have."""
    from repro.radio import MobilityPlan, MobilitySpec

    plan = MobilityPlan(name="short-hop", specs=(
        MobilitySpec(kind="linear_drift", at=16.0, duration=10.0,
                     nodes=(2,), velocity=(3.0, 0.0)),))
    scenario = resolve_scenario("mobile_city_survey")
    _, values = scenario(7, mobility_plan=plan.to_param(), **SMALL)
    assert values["moved_nodes"] == 1
    assert values["mobility_updates"] == 10
