"""Shared fixtures: small radio worlds for substrate-level tests."""

import pytest

from repro.radio import LogDistancePropagation, RadioMedium
from repro.sim import Environment, Monitor, RngRegistry


class World:
    """A bare radio world (no kernel): env + medium + bookkeeping."""

    def __init__(self, seed=42, **prop_kw):
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.monitor = Monitor()
        self.propagation = LogDistancePropagation(self.rng, **prop_kw)
        self.medium = RadioMedium(
            self.env, self.rng, self.monitor, self.propagation
        )


@pytest.fixture
def world():
    """Default world: moderate shadowing, light fading."""
    return World()


@pytest.fixture
def quiet_world():
    """World with no shadowing/fading: fully deterministic propagation."""
    return World(shadowing_sigma_db=0.0, fading_sigma_db=0.0)


@pytest.fixture
def make_world():
    """Factory for worlds with custom seeds/propagation parameters."""
    return World
