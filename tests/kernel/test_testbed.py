"""Unit tests for testbed/node wiring."""

import pytest

from repro.errors import KernelError, NoSuchNode, PortInUse
from repro.kernel import Testbed
from repro.net import FloodingProtocol, GeographicForwarding


def test_add_and_lookup_by_name_id_path():
    tb = Testbed(seed=1)
    node = tb.add_node("192.168.0.1", (0.0, 0.0))
    assert tb.node("192.168.0.1") is node
    assert tb.node(node.id) is node
    assert tb.node("/sn01/192.168.0.1") is node


def test_auto_ids_are_sequential():
    tb = Testbed(seed=1)
    ids = [tb.add_node(f"n{i}", (i, 0)).id for i in range(3)]
    assert ids == [1, 2, 3]


def test_explicit_node_id():
    tb = Testbed(seed=1)
    node = tb.add_node("n", (0, 0), node_id=42)
    assert node.id == 42
    assert tb.node(42) is node


def test_unknown_lookup_raises():
    tb = Testbed(seed=1)
    with pytest.raises(NoSuchNode):
        tb.node("missing")


def test_contains_and_len():
    tb = Testbed(seed=1)
    tb.add_node("a", (0, 0))
    assert "a" in tb and len(tb) == 1


def test_node_radio_settings_applied():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0), power_level=10, channel=26)
    assert node.radio.power_level == 10
    assert node.radio.channel == 26


def test_position_property_and_move():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (1.0, 2.0))
    assert node.position == (1.0, 2.0)
    node.position = (5.0, 6.0)
    assert tb.position_of(node.id) == (5.0, 6.0)


def test_install_protocol_and_port_registry():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    proto = node.install_protocol(GeographicForwarding)
    assert node.protocol_on(10) is proto
    with pytest.raises(KernelError):
        node.protocol_on(99)


def test_port_conflict_on_double_install():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.install_protocol(GeographicForwarding)
    with pytest.raises(PortInUse):
        node.install_protocol(GeographicForwarding)


def test_uninstall_frees_port():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.install_protocol(FloodingProtocol)
    node.uninstall_protocol(12)
    node.install_protocol(FloodingProtocol)  # port is free again


def test_install_protocol_everywhere():
    tb = Testbed(seed=1)
    for i in range(3):
        tb.add_node(f"n{i}", (i * 10.0, 0))
    protos = tb.install_protocol_everywhere(GeographicForwarding)
    assert len(protos) == 3
    assert all(tb.node(i + 1).protocol_on(10) for i in range(3))


def test_kernel_memory_preinstalled():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    assert node.memory.lookup("kernel") is not None


def test_same_seed_same_world():
    def build():
        tb = Testbed(seed=77)
        tb.add_node("a", (0, 0))
        tb.add_node("b", (40.0, 0))
        tb.warm_up(10.0)
        entry = tb.node("a").neighbors.lookup(2)
        return (entry.lqi, entry.rssi, entry.beacons_received)

    assert build() == build()


def test_different_seeds_differ():
    def build(seed):
        tb = Testbed(seed=seed)
        tb.add_node("a", (0, 0))
        tb.add_node("b", (40.0, 0))
        tb.warm_up(10.0)
        entry = tb.node("a").neighbors.lookup(2)
        return (entry.lqi, entry.rssi)

    assert build(1) != build(2)
