"""Unit tests for the kernel event log."""

import pytest

from repro.kernel import EventLog, Testbed


def test_log_and_recent_order():
    log = EventLog(capacity=8)
    log.log(1.0, "a", "first")
    log.log(2.0, "b", "second")
    events = log.recent()
    assert [e.code for e in events] == ["a", "b"]
    assert events[0].time == 1.0


def test_ring_wraps_and_counts_drops():
    log = EventLog(capacity=3)
    for i in range(5):
        log.log(float(i), f"e{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert log.logged == 5
    assert [e.code for e in log.recent()] == ["e2", "e3", "e4"]


def test_recent_limit():
    log = EventLog(capacity=8)
    for i in range(5):
        log.log(float(i), f"e{i}")
    assert [e.code for e in log.recent(2)] == ["e3", "e4"]


def test_clear_keeps_totals():
    log = EventLog(capacity=4)
    log.log(0.0, "x")
    log.clear()
    assert len(log) == 0
    assert log.logged == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_render():
    log = EventLog()
    log.log(12.5, "radio.power", "31 -> 10")
    assert "radio.power: 31 -> 10" in log.recent()[0].render()


def test_kernel_services_log_events():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.syscalls.invoke("radio_set_power", 10)
    node.neighbors.blacklist(7)
    node.neighbors.set_beacon_interval(1.0)
    codes = [e.code for e in node.events.recent()]
    assert "radio.power" in codes
    assert "neighbor.blacklist" in codes
    assert "neighbor.beacon_interval" in codes


def test_event_log_syscall():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.syscalls.invoke("radio_set_channel", 20)
    events = node.syscalls.invoke("event_log", 5)
    assert events and events[-1].code == "radio.channel"
