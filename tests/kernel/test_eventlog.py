"""Unit tests for the kernel event log."""

import pytest

from repro.kernel import EventLog, Testbed


def test_log_and_recent_order():
    log = EventLog(capacity=8)
    log.log(1.0, "a", "first")
    log.log(2.0, "b", "second")
    events = log.recent()
    assert [e.code for e in events] == ["a", "b"]
    assert events[0].time == 1.0


def test_ring_wraps_and_counts_drops():
    log = EventLog(capacity=3)
    for i in range(5):
        log.log(float(i), f"e{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert log.logged == 5
    assert [e.code for e in log.recent()] == ["e2", "e3", "e4"]


def test_recent_limit():
    log = EventLog(capacity=8)
    for i in range(5):
        log.log(float(i), f"e{i}")
    assert [e.code for e in log.recent(2)] == ["e3", "e4"]


def test_recent_limit_zero_is_empty():
    """Regression: ``events[-0:]`` is the whole list, so limit=0 used to
    return the entire ring instead of nothing."""
    log = EventLog(capacity=8)
    for i in range(5):
        log.log(float(i), f"e{i}")
    assert log.recent(0) == []


def test_recent_negative_limit_raises():
    log = EventLog(capacity=8)
    log.log(0.0, "x")
    with pytest.raises(ValueError):
        log.recent(-1)


def test_recent_limit_beyond_length_returns_all():
    log = EventLog(capacity=8)
    log.log(0.0, "x")
    assert [e.code for e in log.recent(100)] == ["x"]


def test_clear_keeps_totals():
    log = EventLog(capacity=4)
    log.log(0.0, "x")
    log.clear()
    assert len(log) == 0
    assert log.logged == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_render():
    log = EventLog()
    log.log(12.5, "radio.power", "31 -> 10")
    assert "radio.power: 31 -> 10" in log.recent()[0].render()


def test_kernel_services_log_events():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.syscalls.invoke("radio_set_power", 10)
    node.neighbors.blacklist(7)
    node.neighbors.set_beacon_interval(1.0)
    codes = [e.code for e in node.events.recent()]
    assert "radio.power" in codes
    assert "neighbor.blacklist" in codes
    assert "neighbor.beacon_interval" in codes


def test_kernel_events_route_to_tracer_when_enabled():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.syscalls.invoke("radio_set_power", 10)  # before enable: not traced
    tb.tracer.enable()
    node.syscalls.invoke("radio_set_channel", 20)
    node.neighbors.blacklist(7)
    kinds = [(e.kind, e.node) for e in tb.tracer.events
             if e.kind.startswith("kernel.")]
    assert ("kernel.radio.channel", node.id) in kinds
    assert ("kernel.neighbor.blacklist", node.id) in kinds
    assert all(kind != "kernel.radio.power" for kind, _ in kinds)
    # The ring itself still has everything.
    assert "radio.power" in [e.code for e in node.events.recent()]


def test_event_log_syscall():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    node.syscalls.invoke("radio_set_channel", 20)
    events = node.syscalls.invoke("event_log", 5)
    assert events and events[-1].code == "radio.channel"
