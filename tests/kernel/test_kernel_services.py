"""Unit tests for threads, syscalls, parameter buffer, memory, namespace."""

import pytest

from repro.errors import (
    KernelError,
    MemoryBudgetExceeded,
    NoSuchNode,
    NoSuchSyscall,
)
from repro.kernel import (
    MemoryModel,
    Namespace,
    ParameterBuffer,
    SyscallTable,
    Testbed,
)
from repro.kernel.threads import ThreadTable
from repro.sim import Environment


# -- thread table -----------------------------------------------------------

def idle(env, duration=1.0):
    def gen():
        yield env.timeout(duration)
    return gen()


def test_spawn_and_list():
    env = Environment()
    table = ThreadTable(env, node_id=1)
    info = table.spawn("worker", idle(env))
    assert info.alive
    assert [t.name for t in table.alive()] == ["worker"]
    env.run()
    assert table.alive() == []


def test_thread_limit_enforced():
    env = Environment()
    table = ThreadTable(env, node_id=1, max_threads=2)
    table.spawn("a", idle(env))
    table.spawn("b", idle(env))
    with pytest.raises(KernelError):
        table.spawn("c", idle(env))


def test_finished_threads_free_slots():
    env = Environment()
    table = ThreadTable(env, node_id=1, max_threads=1)
    table.spawn("a", idle(env, 1.0))
    env.run()
    table.spawn("b", idle(env, 1.0))  # must not raise
    env.run()


def test_kill_interrupts():
    env = Environment()
    table = ThreadTable(env, node_id=1)

    def stubborn():
        from repro.errors import ProcessInterrupt
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt:
            return "stopped"

    info = table.spawn("stubborn", stubborn())
    assert table.kill(info.tid)
    env.run()
    assert info.process.value == "stopped"


def test_kill_unknown_tid_returns_false():
    env = Environment()
    table = ThreadTable(env, node_id=1)
    assert not table.kill(99)


def test_find_by_name():
    env = Environment()
    table = ThreadTable(env, node_id=1)
    info = table.spawn("ping", idle(env))
    assert table.find("ping") is info
    assert table.find("missing") is None


# -- syscalls --------------------------------------------------------------------

def test_syscall_registration_and_invoke():
    sc = SyscallTable()
    sc.register("add", lambda a, b: a + b)
    assert sc.invoke("add", 2, 3) == 5
    assert sc.names() == ["add"]


def test_unknown_syscall_raises():
    sc = SyscallTable()
    with pytest.raises(NoSuchSyscall):
        sc.invoke("nope")


def test_default_node_syscalls():
    tb = Testbed(seed=1)
    node = tb.add_node("n1", (0, 0))
    assert node.syscalls.invoke("radio_get") == {
        "power_level": 31, "channel": 17,
    }
    node.syscalls.invoke("radio_set_power", 10)
    assert node.radio.power_level == 10
    assert node.syscalls.invoke("queue_occupancy") == 0
    assert node.syscalls.invoke("neighbor_table") == []


# -- parameter buffer -----------------------------------------------------------

def test_empty_buffer_starts_with_nul():
    """Paper: 'If no parameter is supplied, the buffer will start with a
    \\0'."""
    buf = ParameterBuffer()
    assert buf.read().startswith("\0")
    assert buf.argv() == []


def test_stage_and_parse_space_separated():
    buf = ParameterBuffer()
    buf.stage("192.168.0.2 round=1 length=32")
    assert buf.argv() == ["192.168.0.2", "round=1", "length=32"]


def test_clear_resets():
    buf = ParameterBuffer()
    buf.stage("x")
    buf.clear()
    assert buf.argv() == []


def test_capacity_enforced():
    buf = ParameterBuffer(capacity=8)
    with pytest.raises(ValueError):
        buf.stage("a" * 9)


def test_empty_string_stage_is_empty():
    buf = ParameterBuffer()
    buf.stage("")
    assert buf.argv() == []


# -- memory ledger ---------------------------------------------------------------

def test_install_and_account():
    mm = MemoryModel()
    mm.install("ping", 2148, 278)
    assert mm.flash_used == 2148
    assert mm.ram_used == 278
    assert mm.lookup("ping").flash_bytes == 2148


def test_paper_footprints_fit_on_a_mote():
    """Both commands install alongside the kernel within MicaZ budgets."""
    from repro.kernel.memory import (
        KERNEL_FLASH_BYTES,
        KERNEL_RAM_BYTES,
        PAPER_FOOTPRINTS,
    )
    mm = MemoryModel()
    mm.install("kernel", KERNEL_FLASH_BYTES, KERNEL_RAM_BYTES)
    for name, (flash, ram) in PAPER_FOOTPRINTS.items():
        mm.install(name, flash, ram)
    assert mm.flash_free > 0 and mm.ram_free > 0


def test_flash_budget_enforced():
    mm = MemoryModel(flash_budget=1000, ram_budget=1000)
    with pytest.raises(MemoryBudgetExceeded):
        mm.install("big", 1001, 0)


def test_ram_budget_enforced():
    mm = MemoryModel(flash_budget=10_000, ram_budget=100)
    with pytest.raises(MemoryBudgetExceeded):
        mm.install("hungry", 10, 200)


def test_duplicate_install_rejected():
    mm = MemoryModel()
    mm.install("x", 1, 1)
    with pytest.raises(KernelError):
        mm.install("x", 1, 1)


def test_uninstall_frees():
    mm = MemoryModel()
    mm.install("x", 100, 10)
    mm.uninstall("x")
    assert mm.flash_used == 0
    with pytest.raises(KernelError):
        mm.uninstall("x")


def test_negative_footprint_rejected():
    mm = MemoryModel()
    with pytest.raises(ValueError):
        mm.install("neg", -1, 0)


# -- namespace --------------------------------------------------------------------

def test_register_resolve_roundtrip():
    ns = Namespace()
    ns.register(1, "192.168.0.1")
    assert ns.resolve("192.168.0.1") == 1
    assert ns.resolve(1) == 1
    assert ns.name_of(1) == "192.168.0.1"


def test_paths_match_paper_format():
    ns = Namespace()
    ns.register(1, "192.168.0.1")
    assert ns.path_of(1) == "/sn01/192.168.0.1"
    assert ns.resolve("/sn01/192.168.0.1") == 1


def test_unknown_references_raise():
    ns = Namespace()
    with pytest.raises(NoSuchNode):
        ns.resolve("ghost")
    with pytest.raises(NoSuchNode):
        ns.resolve(7)
    with pytest.raises(NoSuchNode):
        ns.name_of(7)


def test_duplicate_registrations_rejected():
    ns = Namespace()
    ns.register(1, "a")
    with pytest.raises(ValueError):
        ns.register(2, "a")
    with pytest.raises(ValueError):
        ns.register(1, "b")


def test_invalid_names_rejected():
    ns = Namespace()
    for bad in ("", "with space", "with/slash"):
        with pytest.raises(ValueError):
            ns.register(1, bad)


def test_contains_and_len():
    ns = Namespace()
    ns.register(1, "a")
    assert "a" in ns and 1 in ns and "b" not in ns
    assert len(ns) == 1
