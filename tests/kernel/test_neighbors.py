"""Unit tests for the kernel neighbor table and beaconing."""

import pytest

from repro.kernel import Testbed

QUIET = {"shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0}


def small_testbed(n=3, spacing=30.0, seed=9, **node_kw):
    tb = Testbed(seed=seed, propagation_kwargs=QUIET)
    for i in range(n):
        tb.add_node(f"192.168.0.{i + 1}", (i * spacing, 0.0), **node_kw)
    return tb


def test_beacons_populate_tables():
    tb = small_testbed(3)
    tb.warm_up(10.0)
    entries = tb.node(1).neighbors.entries()
    assert [e.node_id for e in entries] == [2, 3]


def test_entries_carry_names_and_positions():
    tb = small_testbed(2)
    tb.warm_up(10.0)
    [entry] = tb.node(1).neighbors.entries()
    assert entry.name == "192.168.0.2"
    assert entry.position == pytest.approx((30.0, 0.0))


def test_link_quality_estimates_reasonable():
    tb = small_testbed(2)
    tb.warm_up(20.0)
    [entry] = tb.node(1).neighbors.entries()
    assert 90 <= entry.lqi <= 110       # clean 30 m link
    assert -80 <= entry.rssi <= 0       # register-reading range
    assert entry.prr_estimate > 0.8


def test_far_node_never_appears():
    tb = Testbed(seed=9, propagation_kwargs=QUIET)
    tb.add_node("a", (0.0, 0.0))
    tb.add_node("b", (1000.0, 0.0))
    tb.warm_up(20.0)
    assert tb.node("a").neighbors.entries() == []


def test_silent_neighbor_expires():
    tb = small_testbed(2)
    tb.warm_up(10.0)
    assert tb.node(1).neighbors.lookup(2) is not None
    tb.node(2).xcvr.enabled = False
    tb.warm_up(30.0)
    assert tb.node(1).neighbors.lookup(2) is None
    assert tb.monitor.counter("neighbors.expired") >= 1


def test_blacklist_flag_and_usable_filter():
    tb = small_testbed(3)
    tb.warm_up(10.0)
    table = tb.node(1).neighbors
    table.blacklist(2)
    assert table.is_blacklisted(2)
    assert 2 not in table.usable_ids()
    assert 2 in [e.node_id for e in table.entries()]  # still listed
    entry = table.lookup(2)
    assert entry is not None and not entry.enabled


def test_unblacklist_restores():
    tb = small_testbed(2)
    tb.warm_up(10.0)
    table = tb.node(1).neighbors
    table.blacklist(2)
    table.unblacklist(2)
    assert not table.is_blacklisted(2)
    assert 2 in table.usable_ids()
    assert table.lookup(2).enabled


def test_blacklist_survives_entry_churn():
    """A blacklist set before the neighbor is ever heard still applies."""
    tb = small_testbed(2)
    tb.node(1).neighbors.blacklist(2)
    tb.warm_up(10.0)
    entry = tb.node(1).neighbors.lookup(2)
    assert entry is not None
    assert not entry.enabled


def test_beacon_interval_update_changes_rate():
    tb = small_testbed(2)
    tb.warm_up(20.0)
    slow_before = tb.monitor.counter("neighbors.beacons_sent")
    for node in tb.nodes():
        node.neighbors.set_beacon_interval(0.5)
    tb.warm_up(20.0)
    fast_count = tb.monitor.counter("neighbors.beacons_sent") - slow_before
    # 2 nodes, 20 s at ~0.5 s → ~80 beacons vs ~20 at the 2 s default.
    assert fast_count > 2 * slow_before


def test_beacon_interval_validation():
    tb = small_testbed(1)
    with pytest.raises(ValueError):
        tb.node(1).neighbors.set_beacon_interval(0.0)


def test_capacity_evicts_oldest():
    tb = Testbed(seed=9, propagation_kwargs=QUIET)
    center = tb.add_node("center", (0.0, 0.0),
                         neighbor_kwargs={"capacity": 3})
    for i in range(5):
        tb.add_node(f"n{i}", (10.0 + i, 0.0))
    tb.warm_up(15.0)
    entries = center.neighbors.entries()
    assert len(entries) <= 3
    assert tb.monitor.counter("neighbors.evicted") >= 1


def test_table_constructor_validation():
    tb = small_testbed(1)
    from repro.kernel.neighbors import NeighborTable
    with pytest.raises(ValueError):
        NeighborTable(tb.node(1), capacity=0)


def test_prr_estimate_tracks_gap_losses():
    """On a marginal link the PRR estimate must sit strictly inside
    (0, 1) — the gray region the diagnosis tools exist to find."""
    tb = Testbed(seed=12, propagation_kwargs=QUIET)
    tb.add_node("a", (0.0, 0.0))
    tb.add_node("b", (92.0, 0.0))
    tb.warm_up(120.0)
    entry = tb.node("a").neighbors.lookup(2)
    assert entry is not None
    assert 0.05 < entry.prr_estimate < 0.995
